//! Property-based tests for the transformer: structural invariants that
//! must hold for arbitrary (small) architectures and inputs.

use photon_nn::{Activations, Gpt, ModelConfig};
use photon_tensor::SeedStream;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ModelConfig> {
    (1usize..3, 1usize..3, 1usize..3, 4usize..20, 2usize..8).prop_map(
        |(n_layers, heads_pow, exp_ratio, vocab, seq)| {
            let n_heads = heads_pow; // 1 or 2
            ModelConfig {
                n_layers,
                d_model: n_heads * 8,
                n_heads,
                exp_ratio,
                vocab_size: vocab,
                seq_len: seq,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The loss is finite and near ln(V) at init for any architecture.
    #[test]
    fn init_loss_is_finite_and_near_uniform(cfg in arb_config(), seed in any::<u64>()) {
        let mut rng = SeedStream::new(seed);
        let model = Gpt::new(cfg, &mut rng);
        let (b, t) = (2usize, cfg.seq_len);
        let mut acts = Activations::new(&cfg, b, t);
        let tokens: Vec<u32> = (0..b * t).map(|i| (i % cfg.vocab_size) as u32).collect();
        let targets: Vec<u32> = (0..b * t).map(|i| ((i + 1) % cfg.vocab_size) as u32).collect();
        let loss = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
        prop_assert!(loss.is_finite());
        let uniform = (cfg.vocab_size as f32).ln();
        prop_assert!((loss - uniform).abs() < 2.0, "loss {loss} vs ln(V) {uniform}");
    }

    /// Causality: logits at position p depend only on tokens <= p.
    #[test]
    fn causal_masking_holds(cfg in arb_config(), seed in any::<u64>()) {
        prop_assume!(cfg.seq_len >= 3);
        let mut rng = SeedStream::new(seed);
        let model = Gpt::new(cfg, &mut rng);
        let t = cfg.seq_len;
        let mut acts = Activations::new(&cfg, 1, t);
        let mut tokens: Vec<u32> = (0..t).map(|i| (i % cfg.vocab_size) as u32).collect();
        model.forward(&tokens, None, &mut acts);
        let cut = t / 2;
        let before = acts.logits()[..(cut + 1) * cfg.vocab_size].to_vec();
        // Change every token after `cut`.
        for x in tokens.iter_mut().skip(cut + 1) {
            *x = (*x + 1) % cfg.vocab_size as u32;
        }
        model.forward(&tokens, None, &mut acts);
        let after = &acts.logits()[..(cut + 1) * cfg.vocab_size];
        prop_assert_eq!(&before[..], after);
    }

    /// Gradients are linear in the loss: two backward passes accumulate to
    /// exactly twice one pass.
    #[test]
    fn backward_is_additive(cfg in arb_config(), seed in any::<u64>()) {
        let mut rng = SeedStream::new(seed);
        let model = Gpt::new(cfg, &mut rng);
        let (b, t) = (1usize, cfg.seq_len);
        let mut acts = Activations::new(&cfg, b, t);
        let tokens: Vec<u32> = (0..t).map(|i| ((i * 3) % cfg.vocab_size) as u32).collect();
        let targets: Vec<u32> = (0..t).map(|i| ((i * 3 + 1) % cfg.vocab_size) as u32).collect();
        let mut g1 = model.grad_buffer();
        model.forward(&tokens, Some(&targets), &mut acts);
        model.backward(&tokens, &targets, &mut acts, &mut g1);
        let mut g2 = g1.clone();
        model.forward(&tokens, Some(&targets), &mut acts);
        model.backward(&tokens, &targets, &mut acts, &mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            prop_assert!((2.0 * a - b).abs() < 1e-4 + 1e-3 * a.abs());
        }
    }

    /// Probabilities from the loss head are a valid distribution per row.
    #[test]
    fn probabilities_are_normalized(cfg in arb_config(), seed in any::<u64>()) {
        let mut rng = SeedStream::new(seed);
        let model = Gpt::new(cfg, &mut rng);
        let t = cfg.seq_len;
        let mut acts = Activations::new(&cfg, 1, t);
        let tokens: Vec<u32> = (0..t).map(|i| (i % cfg.vocab_size) as u32).collect();
        let targets = tokens.clone();
        model.forward(&tokens, Some(&targets), &mut acts);
        for row in acts.probs().chunks(cfg.vocab_size) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sums to {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    /// Parameter round trip through `into_params`/`from_params` preserves
    /// behaviour exactly.
    #[test]
    fn param_roundtrip_preserves_logits(cfg in arb_config(), seed in any::<u64>()) {
        let mut rng = SeedStream::new(seed);
        let model = Gpt::new(cfg, &mut rng);
        let t = cfg.seq_len;
        let mut acts = Activations::new(&cfg, 1, t);
        let tokens: Vec<u32> = (0..t).map(|i| (i % cfg.vocab_size) as u32).collect();
        model.forward(&tokens, None, &mut acts);
        let want = acts.logits().to_vec();
        let rebuilt = Gpt::from_params(cfg, model.params().to_vec());
        rebuilt.forward(&tokens, None, &mut acts);
        prop_assert_eq!(acts.logits(), &want[..]);
    }
}
