use crate::kernels as k;
use crate::{ModelConfig, ParamLayout, ParamRange, PosEncoding};
use photon_tensor::SeedStream;

/// Pre-allocated forward and backward activation buffers for a fixed
/// `(batch, seq)` geometry.
///
/// Allocated once per training pipeline and reused every step; the only
/// per-step work is overwriting buffer contents.
#[derive(Debug, Clone)]
pub struct Activations {
    batch: usize,
    seq: usize,
    encoded: Vec<f32>,
    layers: Vec<LayerActs>,
    lnf: Vec<f32>,
    lnf_mean: Vec<f32>,
    lnf_rstd: Vec<f32>,
    logits: Vec<f32>,
    probs: Vec<f32>,
    losses: Vec<f32>,
    // Gradient mirrors.
    g_encoded: Vec<f32>,
    g_lnf: Vec<f32>,
    g_logits: Vec<f32>,
}

#[derive(Debug, Clone)]
struct LayerActs {
    ln1: Vec<f32>,
    ln1_mean: Vec<f32>,
    ln1_rstd: Vec<f32>,
    qkv: Vec<f32>,
    atty: Vec<f32>,
    preatt: Vec<f32>,
    att: Vec<f32>,
    attproj: Vec<f32>,
    residual2: Vec<f32>,
    ln2: Vec<f32>,
    ln2_mean: Vec<f32>,
    ln2_rstd: Vec<f32>,
    fch: Vec<f32>,
    fch_gelu: Vec<f32>,
    fcproj: Vec<f32>,
    residual3: Vec<f32>,
    // Gradient mirrors.
    g_ln1: Vec<f32>,
    g_qkv: Vec<f32>,
    g_atty: Vec<f32>,
    g_preatt: Vec<f32>,
    g_att: Vec<f32>,
    g_attproj: Vec<f32>,
    g_residual2: Vec<f32>,
    g_ln2: Vec<f32>,
    g_fch: Vec<f32>,
    g_fch_gelu: Vec<f32>,
    g_fcproj: Vec<f32>,
    g_residual3: Vec<f32>,
}

impl Activations {
    /// Allocates buffers for `batch` sequences of `seq` tokens.
    ///
    /// # Panics
    /// Panics if `batch` or `seq` is zero.
    pub fn new(config: &ModelConfig, batch: usize, seq: usize) -> Self {
        assert!(batch > 0 && seq > 0, "batch and seq must be positive");
        let bt = batch * seq;
        let c = config.d_model;
        let rc = config.mlp_dim();
        let v = config.vocab_size;
        let att_size = batch * config.n_heads * seq * seq;
        let layers = (0..config.n_layers)
            .map(|_| LayerActs {
                ln1: vec![0.0; bt * c],
                ln1_mean: vec![0.0; bt],
                ln1_rstd: vec![0.0; bt],
                qkv: vec![0.0; bt * 3 * c],
                atty: vec![0.0; bt * c],
                preatt: vec![0.0; att_size],
                att: vec![0.0; att_size],
                attproj: vec![0.0; bt * c],
                residual2: vec![0.0; bt * c],
                ln2: vec![0.0; bt * c],
                ln2_mean: vec![0.0; bt],
                ln2_rstd: vec![0.0; bt],
                fch: vec![0.0; bt * rc],
                fch_gelu: vec![0.0; bt * rc],
                fcproj: vec![0.0; bt * c],
                residual3: vec![0.0; bt * c],
                g_ln1: vec![0.0; bt * c],
                g_qkv: vec![0.0; bt * 3 * c],
                g_atty: vec![0.0; bt * c],
                g_preatt: vec![0.0; att_size],
                g_att: vec![0.0; att_size],
                g_attproj: vec![0.0; bt * c],
                g_residual2: vec![0.0; bt * c],
                g_ln2: vec![0.0; bt * c],
                g_fch: vec![0.0; bt * rc],
                g_fch_gelu: vec![0.0; bt * rc],
                g_fcproj: vec![0.0; bt * c],
                g_residual3: vec![0.0; bt * c],
            })
            .collect();
        Activations {
            batch,
            seq,
            encoded: vec![0.0; bt * c],
            layers,
            lnf: vec![0.0; bt * c],
            lnf_mean: vec![0.0; bt],
            lnf_rstd: vec![0.0; bt],
            logits: vec![0.0; bt * v],
            probs: vec![0.0; bt * v],
            losses: vec![0.0; bt],
            g_encoded: vec![0.0; bt * c],
            g_lnf: vec![0.0; bt * c],
            g_logits: vec![0.0; bt * v],
        }
    }

    /// Batch size these buffers were allocated for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Sequence length these buffers were allocated for.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Post-softmax probabilities `(batch * seq, vocab)` from the last
    /// forward pass with targets.
    pub fn probs(&self) -> &[f32] {
        &self.probs
    }

    /// Raw logits `(batch * seq, vocab)` from the last forward pass.
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// Per-position losses from the last forward pass with targets.
    pub fn losses(&self) -> &[f32] {
        &self.losses
    }

    fn zero_grads(&mut self) {
        self.g_encoded.iter_mut().for_each(|v| *v = 0.0);
        self.g_lnf.iter_mut().for_each(|v| *v = 0.0);
        self.g_logits.iter_mut().for_each(|v| *v = 0.0);
        for l in &mut self.layers {
            for buf in [
                &mut l.g_ln1,
                &mut l.g_qkv,
                &mut l.g_atty,
                &mut l.g_attproj,
                &mut l.g_residual2,
                &mut l.g_ln2,
                &mut l.g_fch,
                &mut l.g_fch_gelu,
                &mut l.g_fcproj,
                &mut l.g_residual3,
            ] {
                buf.iter_mut().for_each(|v| *v = 0.0);
            }
        }
    }
}

/// A decoder-only transformer with ALiBi attention and tied embeddings.
///
/// All parameters live in one flat `f32` buffer addressed through a
/// [`ParamLayout`]; gradients use an identically laid-out buffer supplied by
/// the caller (see [`Gpt::grad_buffer`]).
#[derive(Debug, Clone)]
pub struct Gpt {
    config: ModelConfig,
    layout: ParamLayout,
    params: Vec<f32>,
    pos: PosEncoding,
}

impl Gpt {
    /// Creates a model with GPT-2-style initialization: truncated-normal
    /// embeddings (std 0.02), normal projections (std 0.02, residual
    /// projections scaled by `1/sqrt(2 L)`), unit layernorm weights.
    pub fn new(config: ModelConfig, rng: &mut SeedStream) -> Self {
        Gpt::with_positions(config, PosEncoding::Alibi, rng)
    }

    /// Creates a model with an explicit positional scheme
    /// ([`PosEncoding::Learned`] adds a trained `(seq, d)` embedding table
    /// and disables the ALiBi attention bias).
    pub fn with_positions(config: ModelConfig, pos: PosEncoding, rng: &mut SeedStream) -> Self {
        config.validate();
        let layout = ParamLayout::with_positions(config, pos);
        let mut params = vec![0.0f32; layout.total()];
        let std = 0.02f32;
        let resid_std = std / ((2 * config.n_layers) as f32).sqrt();

        let wte = layout.wte;
        photon_tensor::trunc_normal_fill(&mut params[wte.start..wte.end()], 0.0, std, rng);
        for l in 0..config.n_layers {
            let b = *layout.block(l);
            fill_range(&mut params, b.ln1w, 1.0);
            fill_range(&mut params, b.ln2w, 1.0);
            photon_tensor::normal_fill(&mut params[b.qkvw.start..b.qkvw.end()], 0.0, std, rng);
            photon_tensor::normal_fill(
                &mut params[b.attprojw.start..b.attprojw.end()],
                0.0,
                resid_std,
                rng,
            );
            photon_tensor::normal_fill(&mut params[b.fcw.start..b.fcw.end()], 0.0, std, rng);
            photon_tensor::normal_fill(
                &mut params[b.fcprojw.start..b.fcprojw.end()],
                0.0,
                resid_std,
                rng,
            );
        }
        fill_range(&mut params, layout.lnfw, 1.0);
        if let Some(wpe) = layout.wpe {
            photon_tensor::trunc_normal_fill(&mut params[wpe.start..wpe.end()], 0.0, 0.02, rng);
        }
        Gpt {
            config,
            layout,
            params,
            pos,
        }
    }

    /// Reconstructs a model from a flat parameter vector (e.g. received
    /// from the aggregator). The positional scheme is inferred from the
    /// vector length (learned positions add a `(seq, d)` block).
    ///
    /// # Panics
    /// Panics if `params.len()` matches neither scheme's layout.
    pub fn from_params(config: ModelConfig, params: Vec<f32>) -> Self {
        let alibi = ParamLayout::new(config);
        let layout = if params.len() == alibi.total() {
            alibi
        } else {
            let learned = ParamLayout::with_positions(config, PosEncoding::Learned);
            assert_eq!(
                params.len(),
                learned.total(),
                "parameter vector length mismatch"
            );
            learned
        };
        let pos = if layout.wpe.is_some() {
            PosEncoding::Learned
        } else {
            PosEncoding::Alibi
        };
        Gpt {
            config,
            layout,
            params,
            pos,
        }
    }

    /// The positional scheme this model was built with.
    pub fn pos_encoding(&self) -> PosEncoding {
        self.pos
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The parameter layout.
    pub fn layout(&self) -> &ParamLayout {
        &self.layout
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Flat parameter buffer.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable flat parameter buffer (used by optimizers).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Overwrites all parameters from a slice.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn set_params(&mut self, new: &[f32]) {
        assert_eq!(new.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(new);
    }

    /// Allocates a zeroed gradient buffer matching the parameter layout.
    pub fn grad_buffer(&self) -> Vec<f32> {
        vec![0.0; self.params.len()]
    }

    /// Consumes the model, returning the flat parameter buffer.
    pub fn into_params(self) -> Vec<f32> {
        self.params
    }

    /// Runs the forward pass over `tokens` `(batch * seq)`.
    ///
    /// With `targets`, fills probabilities/losses and returns the mean
    /// cross-entropy; without, computes logits only and returns `None`.
    ///
    /// # Panics
    /// Panics if buffer geometry disagrees with `acts`.
    pub fn forward(
        &self,
        tokens: &[u32],
        targets: Option<&[u32]>,
        acts: &mut Activations,
    ) -> Option<f32> {
        let (b, t) = (acts.batch, acts.seq);
        let bt = b * t;
        assert_eq!(tokens.len(), bt, "token buffer geometry mismatch");
        let c = self.config.d_model;
        let rc = self.config.mlp_dim();
        let v = self.config.vocab_size;
        let nh = self.config.n_heads;
        let p = &self.params;
        let wte = &p[self.layout.wte.start..self.layout.wte.end()];

        k::encoder_forward(&mut acts.encoded, tokens, wte, bt, c, v);
        if let Some(wpe_r) = self.layout.wpe {
            // Learned absolute positions: encoded[b, t, :] += wpe[t, :].
            let wpe = &p[wpe_r.start..wpe_r.end()];
            for bi in 0..b {
                for ti in 0..t {
                    let row = &mut acts.encoded[(bi * t + ti) * c..(bi * t + ti + 1) * c];
                    for (e, &w) in row.iter_mut().zip(&wpe[ti * c..(ti + 1) * c]) {
                        *e += w;
                    }
                }
            }
        }

        for l in 0..self.config.n_layers {
            let blk = *self.layout.block(l);
            let (prev, cur) = acts.layers.split_at_mut(l);
            let res_in: &[f32] = if l == 0 {
                &acts.encoded
            } else {
                &prev[l - 1].residual3
            };
            let layer = &mut cur[0];

            k::layernorm_forward(
                &mut layer.ln1,
                &mut layer.ln1_mean,
                &mut layer.ln1_rstd,
                res_in,
                range(p, blk.ln1w),
                range(p, blk.ln1b),
                bt,
                c,
            );
            k::matmul_forward(
                &mut layer.qkv,
                &layer.ln1,
                range(p, blk.qkvw),
                range(p, blk.qkvb),
                bt,
                c,
                3 * c,
            );
            k::attention_forward(
                &mut layer.atty,
                &mut layer.preatt,
                &mut layer.att,
                &layer.qkv,
                b,
                t,
                c,
                nh,
                self.pos == PosEncoding::Alibi,
            );
            k::matmul_forward(
                &mut layer.attproj,
                &layer.atty,
                range(p, blk.attprojw),
                range(p, blk.attprojb),
                bt,
                c,
                c,
            );
            k::residual_forward(&mut layer.residual2, res_in, &layer.attproj);
            k::layernorm_forward(
                &mut layer.ln2,
                &mut layer.ln2_mean,
                &mut layer.ln2_rstd,
                &layer.residual2,
                range(p, blk.ln2w),
                range(p, blk.ln2b),
                bt,
                c,
            );
            k::matmul_forward(
                &mut layer.fch,
                &layer.ln2,
                range(p, blk.fcw),
                range(p, blk.fcb),
                bt,
                c,
                rc,
            );
            k::gelu_forward(&mut layer.fch_gelu, &layer.fch);
            k::matmul_forward(
                &mut layer.fcproj,
                &layer.fch_gelu,
                range(p, blk.fcprojw),
                range(p, blk.fcprojb),
                bt,
                rc,
                c,
            );
            k::residual_forward(&mut layer.residual3, &layer.residual2, &layer.fcproj);
        }

        let final_res: &[f32] = if self.config.n_layers == 0 {
            &acts.encoded
        } else {
            &acts.layers[self.config.n_layers - 1].residual3
        };
        k::layernorm_forward(
            &mut acts.lnf,
            &mut acts.lnf_mean,
            &mut acts.lnf_rstd,
            final_res,
            range(p, self.layout.lnfw),
            range(p, self.layout.lnfb),
            bt,
            c,
        );
        k::matmul_forward(&mut acts.logits, &acts.lnf, wte, &[], bt, c, v);

        targets.map(|tg| {
            assert_eq!(tg.len(), bt, "target buffer geometry mismatch");
            k::cross_entropy_forward(&mut acts.probs, &mut acts.losses, &acts.logits, tg, bt, v)
        })
    }

    /// Runs the backward pass, accumulating parameter gradients into
    /// `grads`. Must follow a [`Gpt::forward`] call with targets on the same
    /// `acts`.
    ///
    /// # Panics
    /// Panics if buffer geometry disagrees.
    pub fn backward(
        &self,
        tokens: &[u32],
        targets: &[u32],
        acts: &mut Activations,
        grads: &mut [f32],
    ) {
        let (b, t) = (acts.batch, acts.seq);
        let bt = b * t;
        assert_eq!(tokens.len(), bt, "token buffer geometry mismatch");
        assert_eq!(targets.len(), bt, "target buffer geometry mismatch");
        assert_eq!(grads.len(), self.params.len(), "grad buffer mismatch");
        let c = self.config.d_model;
        let rc = self.config.mlp_dim();
        let v = self.config.vocab_size;
        let nh = self.config.n_heads;
        let p = &self.params;

        acts.zero_grads();
        k::cross_entropy_backward(&mut acts.g_logits, &acts.probs, targets, bt, v);

        // Tied LM head: gradient flows into g_lnf and dwte.
        {
            let wte_r = self.layout.wte;
            let dwte = &mut grads[wte_r.start..wte_r.end()];
            let wte = &p[wte_r.start..wte_r.end()];
            k::matmul_backward(
                &mut acts.g_lnf,
                dwte,
                &mut [],
                &acts.g_logits,
                &acts.lnf,
                wte,
                bt,
                c,
                v,
            );
        }

        // Final layernorm.
        {
            let n_layers = self.config.n_layers;
            let (dw, db) = wb_mut(grads, self.layout.lnfw, self.layout.lnfb);
            let (final_res, dinp): (&[f32], &mut [f32]) = if n_layers == 0 {
                (&acts.encoded, &mut acts.g_encoded)
            } else {
                let LayerActs {
                    residual3,
                    g_residual3,
                    ..
                } = &mut acts.layers[n_layers - 1];
                (residual3, g_residual3)
            };
            k::layernorm_backward(
                dinp,
                dw,
                db,
                &acts.g_lnf,
                final_res,
                range(p, self.layout.lnfw),
                &acts.lnf_mean,
                &acts.lnf_rstd,
                bt,
                c,
            );
        }

        for l in (0..self.config.n_layers).rev() {
            let blk = *self.layout.block(l);
            let (prev, cur) = acts.layers.split_at_mut(l);
            let layer = &mut cur[0];
            let (res_in, g_res_in): (&[f32], &mut [f32]) = if l == 0 {
                (&acts.encoded, &mut acts.g_encoded)
            } else {
                let pl = &mut prev[l - 1];
                (&pl.residual3, &mut pl.g_residual3)
            };

            // residual3 = residual2 + fcproj
            k::residual_backward(
                &mut layer.g_residual2,
                &mut layer.g_fcproj,
                &layer.g_residual3,
            );
            {
                let (dw, db) = wb_mut(grads, blk.fcprojw, blk.fcprojb);
                k::matmul_backward(
                    &mut layer.g_fch_gelu,
                    dw,
                    db,
                    &layer.g_fcproj,
                    &layer.fch_gelu,
                    range(p, blk.fcprojw),
                    bt,
                    rc,
                    c,
                );
            }
            k::gelu_backward(&mut layer.g_fch, &layer.fch, &layer.g_fch_gelu);
            {
                let (dw, db) = wb_mut(grads, blk.fcw, blk.fcb);
                k::matmul_backward(
                    &mut layer.g_ln2,
                    dw,
                    db,
                    &layer.g_fch,
                    &layer.ln2,
                    range(p, blk.fcw),
                    bt,
                    c,
                    rc,
                );
            }
            {
                let (dw, db) = wb_mut(grads, blk.ln2w, blk.ln2b);
                k::layernorm_backward(
                    &mut layer.g_residual2,
                    dw,
                    db,
                    &layer.g_ln2,
                    &layer.residual2,
                    range(p, blk.ln2w),
                    &layer.ln2_mean,
                    &layer.ln2_rstd,
                    bt,
                    c,
                );
            }
            // residual2 = res_in + attproj
            k::residual_backward(g_res_in, &mut layer.g_attproj, &layer.g_residual2);
            {
                let (dw, db) = wb_mut(grads, blk.attprojw, blk.attprojb);
                k::matmul_backward(
                    &mut layer.g_atty,
                    dw,
                    db,
                    &layer.g_attproj,
                    &layer.atty,
                    range(p, blk.attprojw),
                    bt,
                    c,
                    c,
                );
            }
            k::attention_backward(
                &mut layer.g_qkv,
                &mut layer.g_preatt,
                &mut layer.g_att,
                &layer.g_atty,
                &layer.qkv,
                &layer.att,
                b,
                t,
                c,
                nh,
            );
            {
                let (dw, db) = wb_mut(grads, blk.qkvw, blk.qkvb);
                k::matmul_backward(
                    &mut layer.g_ln1,
                    dw,
                    db,
                    &layer.g_qkv,
                    &layer.ln1,
                    range(p, blk.qkvw),
                    bt,
                    c,
                    3 * c,
                );
            }
            {
                let (dw, db) = wb_mut(grads, blk.ln1w, blk.ln1b);
                k::layernorm_backward(
                    g_res_in,
                    dw,
                    db,
                    &layer.g_ln1,
                    res_in,
                    range(p, blk.ln1w),
                    &layer.ln1_mean,
                    &layer.ln1_rstd,
                    bt,
                    c,
                );
            }
        }

        if let Some(wpe_r) = self.layout.wpe {
            // dwpe[t, :] += sum over batch of g_encoded[b, t, :].
            let dwpe = &mut grads[wpe_r.start..wpe_r.end()];
            for bi in 0..b {
                for ti in 0..t {
                    let g = &acts.g_encoded[(bi * t + ti) * c..(bi * t + ti + 1) * c];
                    for (d, &gv) in dwpe[ti * c..(ti + 1) * c].iter_mut().zip(g) {
                        *d += gv;
                    }
                }
            }
        }
        let wte_r = self.layout.wte;
        k::encoder_backward(
            &mut grads[wte_r.start..wte_r.end()],
            &acts.g_encoded,
            tokens,
            bt,
            c,
        );
    }
}

fn range(p: &[f32], r: ParamRange) -> &[f32] {
    &p[r.start..r.end()]
}

fn fill_range(p: &mut [f32], r: ParamRange, value: f32) {
    p[r.start..r.end()].iter_mut().for_each(|v| *v = value);
}

/// Splits mutable weight and bias gradient slices out of the flat gradient
/// buffer. Relies on the layout placing each bias immediately after its
/// weight.
fn wb_mut(grads: &mut [f32], w: ParamRange, b: ParamRange) -> (&mut [f32], &mut [f32]) {
    debug_assert_eq!(w.end(), b.start, "bias must follow weight in layout");
    let s = &mut grads[w.start..b.end()];
    s.split_at_mut(w.len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Gpt, Activations, Vec<u32>, Vec<u32>) {
        let cfg = ModelConfig {
            n_layers: 2,
            d_model: 8,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 11,
            seq_len: 6,
        };
        let mut rng = SeedStream::new(42);
        let model = Gpt::new(cfg, &mut rng);
        let acts = Activations::new(&cfg, 2, 6);
        let tokens: Vec<u32> = (0..12).map(|i| (i * 3 % 11) as u32).collect();
        let targets: Vec<u32> = (0..12).map(|i| ((i * 3 + 1) % 11) as u32).collect();
        (model, acts, tokens, targets)
    }

    #[test]
    fn forward_produces_finite_loss_near_uniform_at_init() {
        let (model, mut acts, tokens, targets) = tiny();
        let loss = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
        assert!(loss.is_finite());
        // Random init => loss near ln(V).
        let uniform = (model.config().vocab_size as f32).ln();
        assert!(
            (loss - uniform).abs() < 1.0,
            "loss={loss} uniform={uniform}"
        );
    }

    #[test]
    fn forward_without_targets_returns_none() {
        let (model, mut acts, tokens, _) = tiny();
        assert!(model.forward(&tokens, None, &mut acts).is_none());
        assert!(acts.logits().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn full_model_gradient_check() {
        let (mut model, mut acts, tokens, targets) = tiny();
        let mut grads = model.grad_buffer();
        model.forward(&tokens, Some(&targets), &mut acts);
        model.backward(&tokens, &targets, &mut acts, &mut grads);

        // Check a spread of parameters with central differences.
        let n = model.param_count();
        let check_idx: Vec<usize> = vec![
            0,
            7,
            n / 5,
            2 * n / 5,
            n / 2,
            3 * n / 5,
            4 * n / 5,
            n - 3,
            n - 1,
        ];
        let h = 1e-2f32;
        for &i in &check_idx {
            let orig = model.params()[i];
            model.params_mut()[i] = orig + h;
            let up = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
            model.params_mut()[i] = orig - h;
            let down = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
            model.params_mut()[i] = orig;
            let fd = (up - down) / (2.0 * h);
            let an = grads[i];
            assert!(
                (fd - an).abs() < 5e-3 + 0.15 * fd.abs().max(an.abs()),
                "param {i}: fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn backward_accumulates() {
        let (model, mut acts, tokens, targets) = tiny();
        let mut g1 = model.grad_buffer();
        model.forward(&tokens, Some(&targets), &mut acts);
        model.backward(&tokens, &targets, &mut acts, &mut g1);
        let mut g2 = g1.clone();
        model.forward(&tokens, Some(&targets), &mut acts);
        model.backward(&tokens, &targets, &mut acts, &mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((2.0 * a - b).abs() < 1e-4 + 1e-3 * a.abs(), "{a} {b}");
        }
    }

    #[test]
    fn sgd_steps_reduce_loss() {
        let (mut model, mut acts, tokens, targets) = tiny();
        let mut grads = model.grad_buffer();
        let first = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
        let mut last = first;
        for _ in 0..30 {
            grads.iter_mut().for_each(|g| *g = 0.0);
            model.forward(&tokens, Some(&targets), &mut acts);
            model.backward(&tokens, &targets, &mut acts, &mut grads);
            let params = model.params_mut();
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= 0.1 * g;
            }
            last = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
        }
        assert!(
            last < first * 0.8,
            "training did not reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn learned_positions_gradient_check() {
        let cfg = ModelConfig {
            n_layers: 1,
            d_model: 8,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 11,
            seq_len: 6,
        };
        let mut rng = SeedStream::new(9);
        let mut model = Gpt::with_positions(cfg, PosEncoding::Learned, &mut rng);
        assert_eq!(model.pos_encoding(), PosEncoding::Learned);
        let mut acts = Activations::new(&cfg, 2, 6);
        let tokens: Vec<u32> = (0..12).map(|i| (i * 3 % 11) as u32).collect();
        let targets: Vec<u32> = (0..12).map(|i| ((i * 3 + 1) % 11) as u32).collect();
        let mut grads = model.grad_buffer();
        model.forward(&tokens, Some(&targets), &mut acts);
        model.backward(&tokens, &targets, &mut acts, &mut grads);

        // Finite differences, including indices inside the wpe block.
        let n = model.param_count();
        let wpe_start = n - cfg.seq_len * cfg.d_model;
        let h = 1e-2f32;
        for &i in &[0usize, n / 3, wpe_start, wpe_start + 5, n - 1] {
            let orig = model.params()[i];
            model.params_mut()[i] = orig + h;
            let up = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
            model.params_mut()[i] = orig - h;
            let down = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
            model.params_mut()[i] = orig;
            let fd = (up - down) / (2.0 * h);
            let an = grads[i];
            assert!(
                (fd - an).abs() < 5e-3 + 0.15 * fd.abs().max(an.abs()),
                "param {i}: fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn from_params_infers_positional_scheme() {
        let cfg = ModelConfig::proxy_tiny();
        let mut rng = SeedStream::new(1);
        let alibi = Gpt::new(cfg, &mut rng);
        let learned = Gpt::with_positions(cfg, PosEncoding::Learned, &mut rng);
        assert!(learned.param_count() > alibi.param_count());
        let a = Gpt::from_params(cfg, alibi.params().to_vec());
        let l = Gpt::from_params(cfg, learned.params().to_vec());
        assert_eq!(a.pos_encoding(), PosEncoding::Alibi);
        assert_eq!(l.pos_encoding(), PosEncoding::Learned);
    }

    #[test]
    fn learned_positions_train() {
        let cfg = ModelConfig {
            n_layers: 1,
            d_model: 16,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 17,
            seq_len: 8,
        };
        let mut rng = SeedStream::new(3);
        let mut model = Gpt::with_positions(cfg, PosEncoding::Learned, &mut rng);
        let mut acts = Activations::new(&cfg, 2, 8);
        let tokens: Vec<u32> = (0..16).map(|i| (i % 17) as u32).collect();
        let targets: Vec<u32> = (0..16).map(|i| ((i + 1) % 17) as u32).collect();
        let mut grads = model.grad_buffer();
        let first = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
        for _ in 0..30 {
            grads.iter_mut().for_each(|g| *g = 0.0);
            model.forward(&tokens, Some(&targets), &mut acts);
            model.backward(&tokens, &targets, &mut acts, &mut grads);
            for (p, g) in model.params_mut().iter_mut().zip(&grads) {
                *p -= 0.1 * g;
            }
        }
        let last = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
        assert!(last < first * 0.8, "{first} -> {last}");
    }

    #[test]
    fn from_params_roundtrip_and_determinism() {
        let (model, mut acts, tokens, targets) = tiny();
        let clone = Gpt::from_params(*model.config(), model.params().to_vec());
        let l1 = model.forward(&tokens, Some(&targets), &mut acts).unwrap();
        let l2 = clone.forward(&tokens, Some(&targets), &mut acts).unwrap();
        assert_eq!(l1, l2);
    }

    #[test]
    #[should_panic(expected = "parameter vector length mismatch")]
    fn from_params_validates_length() {
        let cfg = ModelConfig::proxy_tiny();
        Gpt::from_params(cfg, vec![0.0; 10]);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn forward_validates_geometry() {
        let (model, mut acts, _, _) = tiny();
        model.forward(&[0, 1, 2], None, &mut acts);
    }
}
