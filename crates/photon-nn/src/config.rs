use serde::{Deserialize, Serialize};

/// Positional-information scheme for the transformer.
///
/// The paper's MPT models use ALiBi; the system "could train any LLM
/// architecture" (§5.1), which this crate demonstrates with a GPT-2-style
/// learned absolute position embedding variant. The scheme is a property
/// of the *weights* (learned positions add a `(seq, d)` parameter block),
/// so it lives on [`crate::Gpt`] rather than [`ModelConfig`], and
/// [`crate::Gpt::from_params`] infers it from the parameter count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PosEncoding {
    /// ALiBi attention biases (MPT default; no positional parameters).
    #[default]
    Alibi,
    /// GPT-2-style learned absolute position embeddings.
    Learned,
}

/// Architecture configuration for a decoder-only transformer.
///
/// Mirrors the paper's Table 4 columns: number of blocks, hidden dimension
/// `d`, attention heads, MLP expansion ratio, vocabulary size and sequence
/// length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Hidden dimension `d`.
    pub d_model: usize,
    /// Number of attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// MLP expansion ratio (Table 4 uses 4 throughout).
    pub exp_ratio: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Training sequence length `l`.
    pub seq_len: usize,
}

impl ModelConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics if `d_model` is not divisible by `n_heads` or any field is 0.
    pub fn validate(&self) {
        assert!(self.n_layers > 0, "n_layers must be positive");
        assert!(self.n_heads > 0, "n_heads must be positive");
        assert!(
            self.d_model.is_multiple_of(self.n_heads),
            "d_model {} not divisible by n_heads {}",
            self.d_model,
            self.n_heads
        );
        assert!(self.exp_ratio > 0, "exp_ratio must be positive");
        assert!(self.vocab_size > 1, "vocab_size must exceed 1");
        assert!(self.seq_len > 0, "seq_len must be positive");
    }

    /// Dimension of one attention head.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Hidden dimension of the MLP.
    pub fn mlp_dim(&self) -> usize {
        self.exp_ratio * self.d_model
    }

    /// Exact trainable parameter count (embeddings tied with the LM head).
    pub fn param_count(&self) -> usize {
        let c = self.d_model;
        let per_block = 2 * (2 * c)                      // ln1, ln2 (w + b)
            + (3 * c) * c + 3 * c                         // qkv
            + c * c + c                                   // attention projection
            + self.mlp_dim() * c + self.mlp_dim()         // fc
            + c * self.mlp_dim() + c; // fc projection
        self.vocab_size * c                               // tied wte / lm head
            + self.n_layers * per_block
            + 2 * c // final layernorm
    }

    /// Approximate training FLOPs per token: `6 N + 12 L d T`
    /// (PaLM-style accounting: 6 FLOPs per parameter per token plus the
    /// quadratic attention term).
    pub fn flops_per_token(&self) -> f64 {
        6.0 * self.param_count() as f64
            + 12.0 * (self.n_layers * self.d_model * self.seq_len) as f64
    }

    /// Parameter bytes at a given precision (2 for bf16, 4 for f32).
    pub fn param_bytes(&self, bytes_per_param: usize) -> usize {
        self.param_count() * bytes_per_param
    }

    // ----- Paper presets (Table 4; analytic use) -----

    /// 75M model (the DiLoCo comparison size).
    pub fn paper_75m() -> Self {
        ModelConfig {
            n_layers: 3,
            d_model: 896,
            n_heads: 16,
            exp_ratio: 4,
            vocab_size: 50_368,
            seq_len: 1024,
        }
    }

    /// 125M model.
    pub fn paper_125m() -> Self {
        ModelConfig {
            n_layers: 12,
            d_model: 768,
            n_heads: 12,
            exp_ratio: 4,
            vocab_size: 50_368,
            seq_len: 2048,
        }
    }

    /// 350M model.
    pub fn paper_350m() -> Self {
        ModelConfig {
            n_layers: 24,
            d_model: 1024,
            n_heads: 16,
            exp_ratio: 4,
            vocab_size: 50_368,
            seq_len: 2048,
        }
    }

    /// 1.3B model.
    pub fn paper_1_3b() -> Self {
        ModelConfig {
            n_layers: 24,
            d_model: 2048,
            n_heads: 16,
            exp_ratio: 4,
            vocab_size: 50_368,
            seq_len: 2048,
        }
    }

    /// 3B model.
    pub fn paper_3b() -> Self {
        ModelConfig {
            n_layers: 32,
            d_model: 2560,
            n_heads: 20,
            exp_ratio: 4,
            vocab_size: 50_368,
            seq_len: 2048,
        }
    }

    /// 7B model.
    pub fn paper_7b() -> Self {
        ModelConfig {
            n_layers: 32,
            d_model: 4096,
            n_heads: 32,
            exp_ratio: 4,
            vocab_size: 50_368,
            seq_len: 2048,
        }
    }

    // ----- Proxy presets (CPU-trainable; convergence experiments) -----
    //
    // The proxy family preserves the paper's *relative* capacity ordering
    // (tiny < small < medium < large) so cross-size comparisons keep their
    // shape; EXPERIMENTS.md records which proxy stands in for which paper
    // size in each experiment.

    /// Smallest trainable proxy (~42k params) — unit tests, quick demos.
    pub fn proxy_tiny() -> Self {
        ModelConfig {
            n_layers: 2,
            d_model: 32,
            n_heads: 2,
            exp_ratio: 4,
            vocab_size: 257,
            seq_len: 32,
        }
    }

    /// Small proxy (~0.2M params) — stands in for the 125M model.
    pub fn proxy_small() -> Self {
        ModelConfig {
            n_layers: 4,
            d_model: 64,
            n_heads: 4,
            exp_ratio: 4,
            vocab_size: 257,
            seq_len: 64,
        }
    }

    /// Medium proxy (~0.6M params) — stands in for the 1.3B model.
    pub fn proxy_medium() -> Self {
        ModelConfig {
            n_layers: 6,
            d_model: 96,
            n_heads: 6,
            exp_ratio: 4,
            vocab_size: 257,
            seq_len: 64,
        }
    }

    /// Large proxy (~1.4M params) — stands in for the 3B/7B models.
    pub fn proxy_large() -> Self {
        ModelConfig {
            n_layers: 8,
            d_model: 128,
            n_heads: 8,
            exp_ratio: 4,
            vocab_size: 257,
            seq_len: 64,
        }
    }
}

impl std::fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gpt(L={}, d={}, H={}, R={}, V={}, T={})",
            self.n_layers,
            self.d_model,
            self.n_heads,
            self.exp_ratio,
            self.vocab_size,
            self.seq_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_param_counts_are_in_the_advertised_ballpark() {
        // Tied-embedding counts come out slightly below the nominal labels
        // (which include untied heads / buffers); accept a 0.7x–1.3x band.
        let cases = [
            (ModelConfig::paper_125m(), 125e6),
            (ModelConfig::paper_350m(), 350e6),
            (ModelConfig::paper_1_3b(), 1.3e9),
            (ModelConfig::paper_3b(), 3e9),
            (ModelConfig::paper_7b(), 7e9),
        ];
        for (cfg, nominal) in cases {
            cfg.validate();
            let n = cfg.param_count() as f64;
            assert!(
                n > 0.65 * nominal && n < 1.35 * nominal,
                "{cfg}: {n:.2e} vs nominal {nominal:.2e}"
            );
        }
    }

    #[test]
    fn proxy_ordering_is_monotone() {
        let sizes = [
            ModelConfig::proxy_tiny().param_count(),
            ModelConfig::proxy_small().param_count(),
            ModelConfig::proxy_medium().param_count(),
            ModelConfig::proxy_large().param_count(),
        ];
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    }

    #[test]
    fn flops_accounting() {
        let cfg = ModelConfig::proxy_tiny();
        let expect = 6.0 * cfg.param_count() as f64 + 12.0 * (2 * 32 * 32) as f64;
        assert_eq!(cfg.flops_per_token(), expect);
        assert_eq!(cfg.param_bytes(2), cfg.param_count() * 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn invalid_heads_panics() {
        ModelConfig {
            n_layers: 1,
            d_model: 30,
            n_heads: 4,
            exp_ratio: 4,
            vocab_size: 10,
            seq_len: 8,
        }
        .validate();
    }

    #[test]
    fn display_format() {
        let s = ModelConfig::proxy_tiny().to_string();
        assert!(s.contains("L=2") && s.contains("d=32"));
    }
}
