//! # photon-nn
//!
//! A from-scratch decoder-only transformer for Photon-RS, in the spirit of
//! the MPT family the paper trains (ALiBi attention, LayerNorm, GELU MLP,
//! tied embeddings).
//!
//! Like llm.c, every layer has an explicit, hand-written forward and
//! backward pass over pre-allocated activation buffers — no autograd tape,
//! no per-step allocation. All parameters (and gradients) live in a single
//! flat `f32` buffer with a typed offset table ([`ParamLayout`]), which makes
//! federated aggregation, serialization and optimizer updates trivially
//! vectorizable.
//!
//! Model configurations come in two families:
//! * **paper presets** ([`ModelConfig::paper_125m`] … [`ModelConfig::paper_7b`]):
//!   the exact Table 4 architectures, used analytically (parameter counts,
//!   FLOPs, VRAM, wall-time modelling);
//! * **proxy presets** ([`ModelConfig::proxy_tiny`] …): CPU-trainable
//!   scaled-down models used to reproduce the paper's convergence
//!   experiments in seconds.
//!
//! ```
//! use photon_nn::{Gpt, ModelConfig};
//! use photon_tensor::SeedStream;
//!
//! let config = ModelConfig::proxy_tiny();
//! let model = Gpt::new(config, &mut SeedStream::new(0));
//! assert!(model.param_count() > 0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod config;
mod eval;
mod generate;
pub mod kernels;
mod layout;
mod model;

pub use config::{ModelConfig, PosEncoding};
pub use eval::{evaluate_perplexity, score_continuation, EvalReport};
pub use generate::{generate, SampleConfig};
pub use layout::{ParamLayout, ParamRange};
pub use model::{Activations, Gpt};
