use crate::{ModelConfig, PosEncoding};

/// The byte-free view of one named parameter tensor within the flat buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamRange {
    /// Offset of the first element.
    pub start: usize,
    /// Number of elements.
    pub len: usize,
}

impl ParamRange {
    /// End offset (exclusive).
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Offsets of every parameter tensor inside the model's single flat buffer.
///
/// Layout order (llm.c convention, embeddings first):
/// `wte`, then per block `[ln1w, ln1b, qkvw, qkvb, attprojw, attprojb,
/// ln2w, ln2b, fcw, fcb, fcprojw, fcprojb]`, then `lnfw, lnfb`.
/// The LM head is tied to `wte`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamLayout {
    config: ModelConfig,
    /// wte: `(vocab, d)`.
    pub wte: ParamRange,
    blocks: Vec<BlockLayout>,
    /// Final layernorm weight `(d,)`.
    pub lnfw: ParamRange,
    /// Final layernorm bias `(d,)`.
    pub lnfb: ParamRange,
    /// Learned position embeddings `(seq, d)`, present only for
    /// [`PosEncoding::Learned`]. Placed after every other tensor so the
    /// ALiBi layout's offsets are a strict prefix.
    pub wpe: Option<ParamRange>,
    total: usize,
}

/// Per-block parameter ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLayout {
    /// Pre-attention layernorm weight `(d,)`.
    pub ln1w: ParamRange,
    /// Pre-attention layernorm bias `(d,)`.
    pub ln1b: ParamRange,
    /// Fused QKV projection weight `(3d, d)` (out-features major).
    pub qkvw: ParamRange,
    /// Fused QKV projection bias `(3d,)`.
    pub qkvb: ParamRange,
    /// Attention output projection weight `(d, d)`.
    pub attprojw: ParamRange,
    /// Attention output projection bias `(d,)`.
    pub attprojb: ParamRange,
    /// Pre-MLP layernorm weight `(d,)`.
    pub ln2w: ParamRange,
    /// Pre-MLP layernorm bias `(d,)`.
    pub ln2b: ParamRange,
    /// MLP up-projection weight `(rd, d)`.
    pub fcw: ParamRange,
    /// MLP up-projection bias `(rd,)`.
    pub fcb: ParamRange,
    /// MLP down-projection weight `(d, rd)`.
    pub fcprojw: ParamRange,
    /// MLP down-projection bias `(d,)`.
    pub fcprojb: ParamRange,
}

impl ParamLayout {
    /// Computes the ALiBi layout for a configuration.
    pub fn new(config: ModelConfig) -> Self {
        ParamLayout::with_positions(config, PosEncoding::Alibi)
    }

    /// Computes the layout for a configuration and positional scheme.
    pub fn with_positions(config: ModelConfig, pos: PosEncoding) -> Self {
        config.validate();
        let c = config.d_model;
        let rc = config.mlp_dim();
        let v = config.vocab_size;
        let mut cursor = 0usize;
        let mut range = |len: usize| {
            let r = ParamRange { start: cursor, len };
            cursor += len;
            r
        };

        let wte = range(v * c);
        let blocks = (0..config.n_layers)
            .map(|_| BlockLayout {
                ln1w: range(c),
                ln1b: range(c),
                qkvw: range(3 * c * c),
                qkvb: range(3 * c),
                attprojw: range(c * c),
                attprojb: range(c),
                ln2w: range(c),
                ln2b: range(c),
                fcw: range(rc * c),
                fcb: range(rc),
                fcprojw: range(c * rc),
                fcprojb: range(c),
            })
            .collect();
        let lnfw = range(c);
        let lnfb = range(c);
        let wpe = match pos {
            PosEncoding::Alibi => None,
            PosEncoding::Learned => Some(range(config.seq_len * c)),
        };
        ParamLayout {
            config,
            wte,
            blocks,
            lnfw,
            lnfb,
            wpe,
            total: cursor,
        }
    }

    /// Total number of parameters.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Ranges for block `l`.
    ///
    /// # Panics
    /// Panics if `l >= n_layers`.
    pub fn block(&self, l: usize) -> &BlockLayout {
        &self.blocks[l]
    }

    /// The configuration this layout was derived from.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_total_matches_config_count() {
        for cfg in [
            ModelConfig::proxy_tiny(),
            ModelConfig::proxy_small(),
            ModelConfig::paper_125m(),
            ModelConfig::paper_7b(),
        ] {
            let layout = ParamLayout::new(cfg);
            assert_eq!(layout.total(), cfg.param_count(), "{cfg}");
        }
    }

    #[test]
    fn ranges_are_contiguous_and_disjoint() {
        let cfg = ModelConfig::proxy_tiny();
        let layout = ParamLayout::new(cfg);
        let mut cursor = 0usize;
        let mut check = |r: ParamRange| {
            assert_eq!(r.start, cursor, "gap before range");
            cursor = r.end();
        };
        check(layout.wte);
        for l in 0..cfg.n_layers {
            let b = *layout.block(l);
            for r in [
                b.ln1w, b.ln1b, b.qkvw, b.qkvb, b.attprojw, b.attprojb, b.ln2w, b.ln2b, b.fcw,
                b.fcb, b.fcprojw, b.fcprojb,
            ] {
                check(r);
            }
        }
        check(layout.lnfw);
        check(layout.lnfb);
        assert_eq!(cursor, layout.total());
    }

    #[test]
    fn learned_positions_extend_the_layout() {
        let cfg = ModelConfig::proxy_tiny();
        let alibi = ParamLayout::new(cfg);
        let learned = ParamLayout::with_positions(cfg, PosEncoding::Learned);
        assert!(alibi.wpe.is_none());
        let wpe = learned.wpe.expect("learned layout has wpe");
        assert_eq!(wpe.len, cfg.seq_len * cfg.d_model);
        assert_eq!(learned.total(), alibi.total() + wpe.len);
        // The ALiBi layout is a strict prefix.
        assert_eq!(wpe.start, alibi.total());
    }
}
