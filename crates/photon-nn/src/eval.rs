use crate::{Activations, Gpt};
use photon_data::EvalStream;

/// Result of a validation-set evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Mean token-level cross-entropy (nats).
    pub cross_entropy: f64,
    /// Perplexity, `exp(cross_entropy)`.
    pub perplexity: f64,
    /// Number of tokens scored.
    pub tokens: usize,
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ce={:.4} ppl={:.2} over {} tokens",
            self.cross_entropy, self.perplexity, self.tokens
        )
    }
}

/// Evaluates perplexity on a validation stream using sequential
/// non-overlapping windows, exactly as the paper evaluates on "the full C4
/// validation set" (§5.1). `max_windows` caps work for quick evaluations
/// (`usize::MAX` scores everything).
pub fn evaluate_perplexity(model: &Gpt, stream: &mut EvalStream, max_windows: usize) -> EvalReport {
    let seq = model.config().seq_len.clamp(8, 64);
    let mut acts = Activations::new(model.config(), 1, seq);
    stream.reset();
    let mut total_ce = 0.0f64;
    let mut total_tokens = 0usize;
    let mut windows = 0usize;
    // The eval stream's window length must match our activation geometry;
    // EvalStream is constructed with the same `seq` by callers. When it is
    // not, fall back to scoring with the stream's own geometry.
    while windows < max_windows {
        let Some((inputs, targets)) = stream.next_window() else {
            break;
        };
        if inputs.len() != seq {
            // Geometry mismatch: rebuild activations once to match.
            acts = Activations::new(model.config(), 1, inputs.len());
        }
        let loss = model
            .forward(inputs, Some(targets), &mut acts)
            .expect("targets provided");
        total_ce += loss as f64 * inputs.len() as f64;
        total_tokens += inputs.len();
        windows += 1;
    }
    let ce = if total_tokens == 0 {
        f64::INFINITY
    } else {
        total_ce / total_tokens as f64
    };
    EvalReport {
        cross_entropy: ce,
        perplexity: ce.exp(),
        tokens: total_tokens,
    }
}

/// Log-probability of `continuation` given `prompt` under the model —
/// the scoring primitive behind the synthetic in-context-learning
/// evaluations (paper Tables 7–8 substitute).
///
/// # Panics
/// Panics if the combined length exceeds the model's sequence length or the
/// continuation is empty.
pub fn score_continuation(model: &Gpt, prompt: &[u32], continuation: &[u32]) -> f64 {
    assert!(!continuation.is_empty(), "continuation must be non-empty");
    let total = prompt.len() + continuation.len();
    assert!(
        total <= model.config().seq_len + 1,
        "sequence too long for model"
    );
    // Score positions prompt.len()-1 .. total-2 predicting the continuation.
    let ctx_len = total - 1;
    let mut acts = Activations::new(model.config(), 1, ctx_len);
    let mut tokens = Vec::with_capacity(ctx_len);
    tokens.extend_from_slice(prompt);
    tokens.extend_from_slice(&continuation[..continuation.len() - 1]);
    model.forward(&tokens, None, &mut acts);

    let v = model.config().vocab_size;
    let logits = acts.logits();
    let mut logprob = 0.0f64;
    for (i, &target) in continuation.iter().enumerate() {
        let pos = prompt.len() - 1 + i;
        let row = &logits[pos * v..(pos + 1) * v];
        // log-softmax of the target entry.
        let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let logsum: f64 = row
            .iter()
            .map(|&x| ((x - maxv) as f64).exp())
            .sum::<f64>()
            .ln()
            + maxv as f64;
        logprob += row[target as usize] as f64 - logsum;
    }
    logprob
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;
    use photon_data::TokenCorpus;
    use photon_tensor::SeedStream;

    fn tiny_model() -> Gpt {
        let cfg = ModelConfig {
            n_layers: 1,
            d_model: 16,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 17,
            seq_len: 16,
        };
        Gpt::new(cfg, &mut SeedStream::new(0))
    }

    #[test]
    fn random_model_scores_near_uniform() {
        let model = tiny_model();
        let corpus = TokenCorpus::new("v", (0..200u32).map(|i| i % 17).collect());
        let mut stream = EvalStream::new(&corpus, 16);
        let report = evaluate_perplexity(&model, &mut stream, usize::MAX);
        let uniform = 17.0f64;
        assert!(report.perplexity > uniform * 0.5 && report.perplexity < uniform * 2.0);
        assert!(report.tokens > 0);
        assert!(report.to_string().contains("ppl="));
    }

    #[test]
    fn max_windows_caps_work() {
        let model = tiny_model();
        let corpus = TokenCorpus::new("v", (0..200u32).map(|i| i % 17).collect());
        let mut stream = EvalStream::new(&corpus, 16);
        let r = evaluate_perplexity(&model, &mut stream, 2);
        assert_eq!(r.tokens, 32);
    }

    #[test]
    fn continuation_scores_are_valid_logprobs() {
        let model = tiny_model();
        let lp = score_continuation(&model, &[1, 2, 3], &[4, 5]);
        assert!(lp < 0.0);
        // Roughly 2 * -ln(17) for a random model.
        assert!(lp > 4.0 * -(17.0f64.ln()));
    }

    #[test]
    fn continuation_score_sums_per_token() {
        let model = tiny_model();
        let both = score_continuation(&model, &[1, 2], &[3, 4]);
        let first = score_continuation(&model, &[1, 2], &[3]);
        let second = score_continuation(&model, &[1, 2, 3], &[4]);
        assert!((both - (first + second)).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "sequence too long")]
    fn oversized_scoring_panics() {
        let model = tiny_model();
        let prompt: Vec<u32> = (0..16).collect();
        score_continuation(&model, &prompt, &[1, 2, 3]);
    }
}
