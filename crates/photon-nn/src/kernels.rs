//! Hand-written forward and backward kernels for every transformer layer.
//!
//! Conventions (llm.c style):
//! * batch `B`, sequence `T`, channels `C`, heads `NH`, vocab `V`;
//! * all buffers are dense row-major `f32` slices;
//! * backward kernels **accumulate** (`+=`) into gradient buffers, so a
//!   single zeroing at the start of a step supports gradient accumulation.
//!
//! Every kernel with enough work fans out over the persistent worker pool
//! in [`photon_tensor::ops::pool`]: matmuls route through
//! [`gemm_auto`], attention splits over `(batch, head)` / output rows, and
//! the row-wise kernels (layernorm, gelu, residual, cross-entropy) split
//! their rows into disjoint chunks. Chunking depends only on
//! [`pool::effective_parallelism`], never on scheduling, so results are
//! reproducible for a fixed thread budget. Kernels that reduce across rows
//! (layernorm/matmul weight and bias gradients) accumulate into per-chunk
//! partial buffers and reduce them in deterministic chunk order.

use photon_tensor::backend;
use photon_tensor::ops::{add_bias_rows, gemm_auto, pool, Gemm};
use std::ops::Range;

/// Splits `rows` into at most [`pool::effective_parallelism`] contiguous
/// ranges of at least `grain` rows each (single full range when the work is
/// too small to be worth the pool barrier).
fn row_chunks(rows: usize, grain: usize) -> Vec<Range<usize>> {
    let parts = pool::effective_parallelism()
        .min(rows.div_ceil(grain.max(1)))
        .max(1);
    pool::chunk_ranges(rows, parts)
}

/// Row grain that keeps each chunk at roughly `target` elements.
fn grain_for(row_len: usize, target: usize) -> usize {
    (target / row_len.max(1)).max(1)
}

/// Embedding lookup: `out[b,t,:] = wte[token[b,t],:]`. Row-parallel.
///
/// # Panics
/// Panics if a token id is out of vocabulary range or buffers are too short.
pub fn encoder_forward(
    out: &mut [f32],
    tokens: &[u32],
    wte: &[f32],
    bt: usize,
    c: usize,
    v: usize,
) {
    assert!(tokens.len() >= bt && out.len() >= bt * c && wte.len() >= v * c);
    let ranges = row_chunks(bt, grain_for(c, 4096));
    let chunks = pool::split_rows(&mut out[..bt * c], c, &ranges);
    let tasks: Vec<pool::Task> = chunks
        .into_iter()
        .zip(&ranges)
        .map(|(chunk, r)| {
            let toks = &tokens[r.start..r.end];
            Box::new(move || {
                for (row, &tok) in chunk.chunks_exact_mut(c).zip(toks) {
                    let tok = tok as usize;
                    assert!(tok < v, "token {tok} out of vocab {v}");
                    row.copy_from_slice(&wte[tok * c..(tok + 1) * c]);
                }
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

/// Backward of [`encoder_forward`]: `dwte[token,:] += dout[b,t,:]`.
///
/// Serial: the scatter destination depends on token values, so positions
/// cannot be partitioned into write-disjoint chunks.
pub fn encoder_backward(dwte: &mut [f32], dout: &[f32], tokens: &[u32], bt: usize, c: usize) {
    for (i, &tok) in tokens[..bt].iter().enumerate() {
        let tok = tok as usize;
        let grad = &dout[i * c..(i + 1) * c];
        let dst = &mut dwte[tok * c..(tok + 1) * c];
        for (d, g) in dst.iter_mut().zip(grad) {
            *d += g;
        }
    }
}

fn layernorm_rows(
    out: &mut [f32],
    mean: &mut [f32],
    rstd: &mut [f32],
    inp_rows: &[f32],
    weight: &[f32],
    bias: &[f32],
    c: usize,
) {
    let bk = backend::active();
    for (i, (x, o)) in inp_rows
        .chunks_exact(c)
        .zip(out.chunks_exact_mut(c))
        .enumerate()
    {
        let (m, rs) = bk.layernorm_row(o, x, weight, bias);
        mean[i] = m;
        rstd[i] = rs;
    }
}

/// LayerNorm forward over the last dimension. Row-parallel.
///
/// Caches per-position `mean` and reciprocal std `rstd` for the backward
/// pass. `eps = 1e-5`.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_forward(
    out: &mut [f32],
    mean: &mut [f32],
    rstd: &mut [f32],
    inp: &[f32],
    weight: &[f32],
    bias: &[f32],
    bt: usize,
    c: usize,
) {
    let _kernel = photon_trace::span(photon_trace::Phase::KernelLayerNorm)
        .arg("bt", bt as u64)
        .arg("c", c as u64)
        .arg("backend", backend::active_kind().id());
    let ranges = row_chunks(bt, grain_for(c, 2048));
    let out_chunks = pool::split_rows(&mut out[..bt * c], c, &ranges);
    let mean_chunks = pool::split_rows(&mut mean[..bt], 1, &ranges);
    let rstd_chunks = pool::split_rows(&mut rstd[..bt], 1, &ranges);
    let tasks: Vec<pool::Task> = out_chunks
        .into_iter()
        .zip(mean_chunks)
        .zip(rstd_chunks)
        .zip(&ranges)
        .map(|(((o, m), rs), r)| {
            let x = &inp[r.start * c..r.end * c];
            Box::new(move || layernorm_rows(o, m, rs, x, weight, bias, c)) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

#[allow(clippy::too_many_arguments)]
fn layernorm_backward_rows(
    dinp: &mut [f32],
    dweight: &mut [f32],
    dbias: &mut [f32],
    dout: &[f32],
    inp: &[f32],
    weight: &[f32],
    mean: &[f32],
    rstd: &[f32],
    rows: usize,
    c: usize,
) {
    let bk = backend::active();
    for i in 0..rows {
        let x = &inp[i * c..(i + 1) * c];
        let dy = &dout[i * c..(i + 1) * c];
        let di = &mut dinp[i * c..(i + 1) * c];
        bk.layernorm_grad_row(di, dweight, dbias, dy, x, weight, mean[i], rstd[i]);
    }
}

/// Backward of [`layernorm_forward`]. Accumulates into `dinp`, `dweight`,
/// `dbias`.
///
/// Row-parallel: `dinp` rows are write-disjoint; the `dweight`/`dbias`
/// reductions go through per-chunk partial buffers merged in chunk order.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_backward(
    dinp: &mut [f32],
    dweight: &mut [f32],
    dbias: &mut [f32],
    dout: &[f32],
    inp: &[f32],
    weight: &[f32],
    mean: &[f32],
    rstd: &[f32],
    bt: usize,
    c: usize,
) {
    let _kernel = photon_trace::span(photon_trace::Phase::KernelLayerNorm)
        .arg("bt", bt as u64)
        .arg("c", c as u64)
        .arg("backend", backend::active_kind().id());
    let ranges = row_chunks(bt, grain_for(c, 2048));
    if ranges.len() <= 1 {
        layernorm_backward_rows(dinp, dweight, dbias, dout, inp, weight, mean, rstd, bt, c);
        return;
    }
    let dinp_chunks = pool::split_rows(&mut dinp[..bt * c], c, &ranges);
    let mut partials: Vec<(Vec<f32>, Vec<f32>)> = ranges
        .iter()
        .map(|_| (vec![0.0f32; c], vec![0.0f32; c]))
        .collect();
    let tasks: Vec<pool::Task> = dinp_chunks
        .into_iter()
        .zip(partials.iter_mut())
        .zip(&ranges)
        .map(|((di, (dw, db)), r)| {
            let r = r.clone();
            Box::new(move || {
                layernorm_backward_rows(
                    di,
                    dw,
                    db,
                    &dout[r.start * c..r.end * c],
                    &inp[r.start * c..r.end * c],
                    weight,
                    &mean[r.start..r.end],
                    &rstd[r.start..r.end],
                    r.len(),
                    c,
                )
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
    for (dw, db) in &partials {
        for j in 0..c {
            dweight[j] += dw[j];
            dbias[j] += db[j];
        }
    }
}

/// Linear layer forward: `out[bt, oc] = inp[bt, ic] @ weight[oc, ic]^T + bias`.
///
/// `weight` is out-features-major (PyTorch convention), and `bias` may be
/// empty for bias-free layers. The matmul and the bias add both fan out
/// over the worker pool.
pub fn matmul_forward(
    out: &mut [f32],
    inp: &[f32],
    weight: &[f32],
    bias: &[f32],
    bt: usize,
    ic: usize,
    oc: usize,
) {
    gemm_auto(Gemm::new(bt, ic, oc).transpose_b(), inp, weight, out);
    if !bias.is_empty() {
        let ranges = row_chunks(bt, grain_for(oc, 8192));
        let chunks = pool::split_rows(&mut out[..bt * oc], oc, &ranges);
        let tasks: Vec<pool::Task> = chunks
            .into_iter()
            .zip(&ranges)
            .map(|(chunk, r)| {
                let rows = r.len();
                Box::new(move || add_bias_rows(chunk, bias, rows, oc)) as pool::Task
            })
            .collect();
        pool::run_tasks(tasks);
    }
}

/// Backward of [`matmul_forward`]. Accumulates into `dinp`, `dweight`,
/// `dbias` (pass an empty `dbias` for bias-free layers).
///
/// Fully parallel: `dinp` row-splits, `dweight` uses the split-k
/// `trans_a` GEMM path (per-worker accumulators, deterministic reduce), and
/// `dbias` reduces per-chunk partials in chunk order.
#[allow(clippy::too_many_arguments)]
pub fn matmul_backward(
    dinp: &mut [f32],
    dweight: &mut [f32],
    dbias: &mut [f32],
    dout: &[f32],
    inp: &[f32],
    weight: &[f32],
    bt: usize,
    ic: usize,
    oc: usize,
) {
    // dinp[bt, ic] += dout[bt, oc] @ weight[oc, ic]
    gemm_auto(Gemm::new(bt, oc, ic).beta(1.0), dout, weight, dinp);
    // dweight[oc, ic] += dout^T[oc, bt] @ inp[bt, ic]
    gemm_auto(
        Gemm::new(oc, bt, ic).transpose_a().beta(1.0),
        dout,
        inp,
        dweight,
    );
    if !dbias.is_empty() {
        let ranges = row_chunks(bt, grain_for(oc, 8192));
        if ranges.len() <= 1 {
            for row in dout[..bt * oc].chunks_exact(oc) {
                for (db, &d) in dbias.iter_mut().zip(row) {
                    *db += d;
                }
            }
            return;
        }
        let mut partials: Vec<Vec<f32>> = ranges.iter().map(|_| vec![0.0f32; oc]).collect();
        let tasks: Vec<pool::Task> = partials
            .iter_mut()
            .zip(&ranges)
            .map(|(db, r)| {
                let rows = &dout[r.start * oc..r.end * oc];
                Box::new(move || {
                    for row in rows.chunks_exact(oc) {
                        for (dbv, &d) in db.iter_mut().zip(row) {
                            *dbv += d;
                        }
                    }
                }) as pool::Task
            })
            .collect();
        pool::run_tasks(tasks);
        for db in &partials {
            for (dbv, &p) in dbias.iter_mut().zip(db) {
                *dbv += p;
            }
        }
    }
}

/// ALiBi slope for head `h` of `nh` (MPT/ALiBi convention:
/// `2^(-8 (h+1) / nh)`).
pub fn alibi_slope(h: usize, nh: usize) -> f32 {
    (2.0f32).powf(-8.0 * (h as f32 + 1.0) / nh as f32)
}

/// Causal multi-head self-attention, optionally with ALiBi positional bias
/// (`alibi = false` for learned-position models).
///
/// * `inp`: fused QKV activations, `(B, T, 3C)` with Q at channel offset 0,
///   K at `C`, V at `2C`;
/// * `preatt`, `att`: `(B, NH, T, T)` scratch (masked logits / softmax);
/// * `out`: `(B, T, C)` attention output (pre-projection).
///
/// Two parallel phases, bitwise identical to the serial kernel: the softmax
/// phase splits over `(batch, head)` units (each owns a `(T, T)` block of
/// `preatt`/`att`), then the `att @ V` phase splits over `(batch, t)` output
/// rows.
#[allow(clippy::too_many_arguments)]
pub fn attention_forward(
    out: &mut [f32],
    preatt: &mut [f32],
    att: &mut [f32],
    inp: &[f32],
    b: usize,
    t: usize,
    c: usize,
    nh: usize,
    alibi: bool,
) {
    let _kernel = photon_trace::span(photon_trace::Phase::KernelAttention)
        .arg("b", b as u64)
        .arg("t", t as u64)
        .arg("nh", nh as u64)
        .arg("backend", backend::active_kind().id());
    let bk = backend::active();
    let hs = c / nh;
    let scale = 1.0 / (hs as f32).sqrt();
    let c3 = 3 * c;
    let units = b * nh;
    let tt = t * t;

    // Phase 1: logits + softmax per (batch, head) unit.
    let ranges = row_chunks(units, 1);
    let preatt_chunks = pool::split_rows(&mut preatt[..units * tt], tt, &ranges);
    let att_chunks = pool::split_rows(&mut att[..units * tt], tt, &ranges);
    let tasks: Vec<pool::Task> = preatt_chunks
        .into_iter()
        .zip(att_chunks)
        .zip(&ranges)
        .map(|((pre_c, att_c), r)| {
            let r = r.clone();
            Box::new(move || {
                for (du, u) in r.clone().enumerate() {
                    let bi = u / nh;
                    let h = u % nh;
                    let slope = if alibi { alibi_slope(h, nh) } else { 0.0 };
                    let pre_u = &mut pre_c[du * tt..(du + 1) * tt];
                    let att_u = &mut att_c[du * tt..(du + 1) * tt];
                    for ti in 0..t {
                        let q = &inp[bi * t * c3 + ti * c3 + h * hs..][..hs];
                        let row_off = ti * t;

                        // Logits with causal mask + ALiBi, tracking the max
                        // for a numerically stable softmax.
                        let mut maxv = f32::NEG_INFINITY;
                        for t2 in 0..=ti {
                            let k = &inp[bi * t * c3 + t2 * c3 + c + h * hs..][..hs];
                            let dotv = bk.dot(q, k);
                            let val = dotv * scale - slope * (ti - t2) as f32;
                            pre_u[row_off + t2] = val;
                            if val > maxv {
                                maxv = val;
                            }
                        }

                        let mut expsum = 0.0f32;
                        for t2 in 0..=ti {
                            let e = (pre_u[row_off + t2] - maxv).exp();
                            att_u[row_off + t2] = e;
                            expsum += e;
                        }
                        let inv = if expsum == 0.0 { 0.0 } else { 1.0 / expsum };
                        for t2 in 0..t {
                            if t2 <= ti {
                                att_u[row_off + t2] *= inv;
                            } else {
                                att_u[row_off + t2] = 0.0; // masked
                                pre_u[row_off + t2] = 0.0;
                            }
                        }
                    }
                }
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);

    // Phase 2: out = att @ V per (batch, t) output row (covers all heads,
    // so each row of `out` is written by exactly one task).
    let att = &att[..units * tt];
    let ranges = row_chunks(b * t, 1);
    let out_chunks = pool::split_rows(&mut out[..b * t * c], c, &ranges);
    let tasks: Vec<pool::Task> = out_chunks
        .into_iter()
        .zip(&ranges)
        .map(|(rows, r)| {
            let r = r.clone();
            Box::new(move || {
                for (o_row, bt_i) in rows.chunks_exact_mut(c).zip(r.clone()) {
                    let bi = bt_i / t;
                    let ti = bt_i % t;
                    o_row.iter_mut().for_each(|v| *v = 0.0);
                    for h in 0..nh {
                        let att_row = &att[bi * nh * tt + h * tt + ti * t..][..t];
                        let o = &mut o_row[h * hs..(h + 1) * hs];
                        for (t2, &a) in att_row[..=ti].iter().enumerate() {
                            let v = &inp[bi * t * c3 + t2 * c3 + 2 * c + h * hs..][..hs];
                            bk.axpy(a, v, o);
                        }
                    }
                }
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

/// Backward of [`attention_forward`]. Accumulates into `dinp` (fused QKV
/// gradient); `dpreatt`/`datt` are scratch with the same shape as
/// `preatt`/`att` and are overwritten.
///
/// Batch-parallel: each task owns one batch's contiguous `dinp` /
/// `dpreatt` / `datt` slices (per-head splitting would interleave `dinp`
/// writes across heads of the same position).
#[allow(clippy::too_many_arguments)]
pub fn attention_backward(
    dinp: &mut [f32],
    dpreatt: &mut [f32],
    datt: &mut [f32],
    dout: &[f32],
    inp: &[f32],
    att: &[f32],
    b: usize,
    t: usize,
    c: usize,
    nh: usize,
) {
    let _kernel = photon_trace::span(photon_trace::Phase::KernelAttention)
        .arg("b", b as u64)
        .arg("t", t as u64)
        .arg("nh", nh as u64)
        .arg("backend", backend::active_kind().id());
    let bk = backend::active();
    let hs = c / nh;
    let scale = 1.0 / (hs as f32).sqrt();
    let c3 = 3 * c;
    let tt = t * t;

    let ranges = row_chunks(b, 1);
    let dinp_chunks = pool::split_rows(&mut dinp[..b * t * c3], t * c3, &ranges);
    let dpre_chunks = pool::split_rows(&mut dpreatt[..b * nh * tt], nh * tt, &ranges);
    let datt_chunks = pool::split_rows(&mut datt[..b * nh * tt], nh * tt, &ranges);
    let tasks: Vec<pool::Task> = dinp_chunks
        .into_iter()
        .zip(dpre_chunks)
        .zip(datt_chunks)
        .zip(&ranges)
        .map(|(((dinp_c, dpre_c), datt_c), r)| {
            let r = r.clone();
            Box::new(move || {
                dpre_c.iter_mut().for_each(|v| *v = 0.0);
                datt_c.iter_mut().for_each(|v| *v = 0.0);
                for (db, bi) in r.clone().enumerate() {
                    let base = db * t * c3;
                    for h in 0..nh {
                        for ti in 0..t {
                            // Offsets into the per-batch mutable chunks use
                            // the local batch index `db`; reads from the
                            // shared buffers stay absolute.
                            let att_off = bi * nh * tt + h * tt + ti * t;
                            let datt_off = db * nh * tt + h * tt + ti * t;
                            let d_out_h = &dout[bi * t * c + ti * c + h * hs..][..hs];

                            // Backward through out = att @ V.
                            for t2 in 0..=ti {
                                let v = &inp[bi * t * c3 + t2 * c3 + 2 * c + h * hs..][..hs];
                                let a = att[att_off + t2];
                                let dv = &mut dinp_c[base + t2 * c3 + 2 * c + h * hs..][..hs];
                                datt_c[datt_off + t2] += bk.dot(v, d_out_h);
                                bk.axpy(a, d_out_h, dv);
                            }

                            // Backward through softmax.
                            let dot = bk.dot(
                                &att[att_off..att_off + ti + 1],
                                &datt_c[datt_off..datt_off + ti + 1],
                            );
                            for t2 in 0..=ti {
                                dpre_c[datt_off + t2] =
                                    att[att_off + t2] * (datt_c[datt_off + t2] - dot);
                            }

                            // Backward through q·k scaling (ALiBi bias has
                            // no params).
                            let q = &inp[bi * t * c3 + ti * c3 + h * hs..][..hs];
                            for t2 in 0..=ti {
                                let k = &inp[bi * t * c3 + t2 * c3 + c + h * hs..][..hs];
                                let dp = dpre_c[datt_off + t2] * scale;
                                // dq and dk live in disjoint channel slices
                                // of dinp (sequential borrows).
                                let dq = &mut dinp_c[base + ti * c3 + h * hs..][..hs];
                                bk.axpy(dp, k, dq);
                                let dk = &mut dinp_c[base + t2 * c3 + c + h * hs..][..hs];
                                bk.axpy(dp, q, dk);
                            }
                        }
                    }
                }
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

/// GELU forward (tanh approximation, as in GPT-2/MPT). Element-chunked,
/// each chunk routed through the active backend.
pub fn gelu_forward(out: &mut [f32], inp: &[f32]) {
    let bk = backend::active();
    let n = out.len();
    let ranges = row_chunks(n, 4096);
    let chunks = pool::split_rows(out, 1, &ranges);
    let tasks: Vec<pool::Task> = chunks
        .into_iter()
        .zip(&ranges)
        .map(|(chunk, r)| {
            let x_chunk = &inp[r.start..r.end];
            Box::new(move || bk.gelu(chunk, x_chunk)) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

/// Backward of [`gelu_forward`]. Accumulates into `dinp`. Element-chunked.
pub fn gelu_backward(dinp: &mut [f32], inp: &[f32], dout: &[f32]) {
    let bk = backend::active();
    let n = dinp.len();
    let ranges = row_chunks(n, 4096);
    let chunks = pool::split_rows(dinp, 1, &ranges);
    let tasks: Vec<pool::Task> = chunks
        .into_iter()
        .zip(&ranges)
        .map(|(chunk, r)| {
            let x_chunk = &inp[r.start..r.end];
            let dy_chunk = &dout[r.start..r.end];
            Box::new(move || bk.gelu_grad(chunk, x_chunk, dy_chunk)) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

/// Residual connection: `out = a + b`. Element-chunked.
pub fn residual_forward(out: &mut [f32], a: &[f32], b: &[f32]) {
    let bk = backend::active();
    let n = out.len();
    let ranges = row_chunks(n, 8192);
    let chunks = pool::split_rows(out, 1, &ranges);
    let tasks: Vec<pool::Task> = chunks
        .into_iter()
        .zip(&ranges)
        .map(|(chunk, r)| {
            let a_chunk = &a[r.start..r.end];
            let b_chunk = &b[r.start..r.end];
            Box::new(move || bk.add(chunk, a_chunk, b_chunk)) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

/// Backward of the residual: both inputs receive the output gradient.
/// Element-chunked (both gradient buffers split on the same ranges).
pub fn residual_backward(da: &mut [f32], db: &mut [f32], dout: &[f32]) {
    let bk = backend::active();
    let n = dout.len();
    let ranges = row_chunks(n, 8192);
    let da_chunks = pool::split_rows(&mut da[..n], 1, &ranges);
    let db_chunks = pool::split_rows(&mut db[..n], 1, &ranges);
    let tasks: Vec<pool::Task> = da_chunks
        .into_iter()
        .zip(db_chunks)
        .zip(&ranges)
        .map(|((dac, dbc), r)| {
            let dy = &dout[r.start..r.end];
            Box::new(move || {
                bk.axpy(1.0, dy, dac);
                bk.axpy(1.0, dy, dbc);
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

/// Softmax + cross-entropy forward.
///
/// Fills `probs` `(BT, V)` and per-position `losses` `(BT,)`; returns the
/// mean loss. Targets index into the vocabulary. Rows run in parallel; the
/// final mean accumulates the per-row losses serially in row order, so the
/// result is independent of the thread count.
pub fn cross_entropy_forward(
    probs: &mut [f32],
    losses: &mut [f32],
    logits: &[f32],
    targets: &[u32],
    bt: usize,
    v: usize,
) -> f32 {
    let bk = backend::active();
    let ranges = row_chunks(bt, 1);
    let prob_chunks = pool::split_rows(&mut probs[..bt * v], v, &ranges);
    let loss_chunks = pool::split_rows(&mut losses[..bt], 1, &ranges);
    let tasks: Vec<pool::Task> = prob_chunks
        .into_iter()
        .zip(loss_chunks)
        .zip(&ranges)
        .map(|((p_rows, l_rows), r)| {
            let r = r.clone();
            Box::new(move || {
                for ((p, l), i) in p_rows
                    .chunks_exact_mut(v)
                    .zip(l_rows.iter_mut())
                    .zip(r.clone())
                {
                    let row = &logits[i * v..(i + 1) * v];
                    bk.softmax_row(p, row);
                    let target = targets[i] as usize;
                    *l = -(p[target].max(1e-30)).ln();
                }
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
    let total: f64 = losses[..bt].iter().map(|&l| l as f64).sum();
    (total / bt as f64) as f32
}

/// Fused backward of softmax + cross-entropy for a *mean* loss:
/// `dlogits[i, j] += (probs[i, j] - 1[j == target_i]) / BT`. Row-parallel.
pub fn cross_entropy_backward(
    dlogits: &mut [f32],
    probs: &[f32],
    targets: &[u32],
    bt: usize,
    v: usize,
) {
    let inv_bt = 1.0 / bt as f32;
    let ranges = row_chunks(bt, 1);
    let chunks = pool::split_rows(&mut dlogits[..bt * v], v, &ranges);
    let tasks: Vec<pool::Task> = chunks
        .into_iter()
        .zip(&ranges)
        .map(|(rows, r)| {
            let r = r.clone();
            Box::new(move || {
                for (d, i) in rows.chunks_exact_mut(v).zip(r.clone()) {
                    let p = &probs[i * v..(i + 1) * v];
                    let target = targets[i] as usize;
                    for j in 0..v {
                        let indicator = if j == target { 1.0 } else { 0.0 };
                        d[j] += (p[j] - indicator) * inv_bt;
                    }
                }
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_tensor::SeedStream;

    fn randv(n: usize, rng: &mut SeedStream) -> Vec<f32> {
        (0..n).map(|_| rng.next_normal() * 0.5).collect()
    }

    /// Central finite difference of a scalar function of one input slot.
    fn fd<F: FnMut(&[f32]) -> f32>(x: &mut [f32], i: usize, mut f: F) -> f32 {
        let h = 1e-3;
        let orig = x[i];
        x[i] = orig + h;
        let up = f(x);
        x[i] = orig - h;
        let down = f(x);
        x[i] = orig;
        (up - down) / (2.0 * h)
    }

    #[test]
    fn layernorm_grad_check() {
        let (bt, c) = (3, 8);
        let mut rng = SeedStream::new(1);
        let inp = randv(bt * c, &mut rng);
        let weight = randv(c, &mut rng);
        let bias = randv(c, &mut rng);
        let dout = randv(bt * c, &mut rng);

        let loss = |inp: &[f32], weight: &[f32], bias: &[f32]| -> f32 {
            let mut out = vec![0.0; bt * c];
            let mut mean = vec![0.0; bt];
            let mut rstd = vec![0.0; bt];
            layernorm_forward(&mut out, &mut mean, &mut rstd, inp, weight, bias, bt, c);
            out.iter().zip(&dout).map(|(o, d)| o * d).sum()
        };

        let mut out = vec![0.0; bt * c];
        let mut mean = vec![0.0; bt];
        let mut rstd = vec![0.0; bt];
        layernorm_forward(&mut out, &mut mean, &mut rstd, &inp, &weight, &bias, bt, c);
        let mut dinp = vec![0.0; bt * c];
        let mut dw = vec![0.0; c];
        let mut db = vec![0.0; c];
        layernorm_backward(
            &mut dinp, &mut dw, &mut db, &dout, &inp, &weight, &mean, &rstd, bt, c,
        );

        let mut x = inp.clone();
        for i in [0, 5, bt * c - 1] {
            let g = fd(&mut x, i, |x| loss(x, &weight, &bias));
            assert!(
                (g - dinp[i]).abs() < 2e-2,
                "dinp[{i}]: fd={g} an={}",
                dinp[i]
            );
        }
        let mut w = weight.clone();
        for i in [0, c - 1] {
            let g = fd(&mut w, i, |w| loss(&inp, w, &bias));
            assert!((g - dw[i]).abs() < 2e-2, "dw[{i}]: fd={g} an={}", dw[i]);
        }
    }

    #[test]
    fn matmul_grad_check() {
        let (bt, ic, oc) = (4, 5, 3);
        let mut rng = SeedStream::new(2);
        let inp = randv(bt * ic, &mut rng);
        let weight = randv(oc * ic, &mut rng);
        let bias = randv(oc, &mut rng);
        let dout = randv(bt * oc, &mut rng);

        let loss = |inp: &[f32], weight: &[f32], bias: &[f32]| -> f32 {
            let mut out = vec![0.0; bt * oc];
            matmul_forward(&mut out, inp, weight, bias, bt, ic, oc);
            out.iter().zip(&dout).map(|(o, d)| o * d).sum()
        };

        let mut dinp = vec![0.0; bt * ic];
        let mut dw = vec![0.0; oc * ic];
        let mut db = vec![0.0; oc];
        matmul_backward(
            &mut dinp, &mut dw, &mut db, &dout, &inp, &weight, bt, ic, oc,
        );

        let mut x = inp.clone();
        for i in [0, 7, bt * ic - 1] {
            let g = fd(&mut x, i, |x| loss(x, &weight, &bias));
            assert!((g - dinp[i]).abs() < 2e-2, "dinp[{i}]");
        }
        let mut w = weight.clone();
        for i in [0, oc * ic - 1] {
            let g = fd(&mut w, i, |w| loss(&inp, w, &bias));
            assert!((g - dw[i]).abs() < 2e-2, "dw[{i}]");
        }
        let mut bb = bias.clone();
        for i in [0, oc - 1] {
            let g = fd(&mut bb, i, |b| loss(&inp, &weight, b));
            assert!((g - db[i]).abs() < 2e-2, "db[{i}]");
        }
    }

    #[test]
    fn attention_grad_check() {
        let (b, t, c, nh) = (1, 4, 6, 2);
        let mut rng = SeedStream::new(3);
        let inp = randv(b * t * 3 * c, &mut rng);
        let dout = randv(b * t * c, &mut rng);

        let loss = |inp: &[f32]| -> f32 {
            let mut out = vec![0.0; b * t * c];
            let mut preatt = vec![0.0; b * nh * t * t];
            let mut att = vec![0.0; b * nh * t * t];
            attention_forward(&mut out, &mut preatt, &mut att, inp, b, t, c, nh, true);
            out.iter().zip(&dout).map(|(o, d)| o * d).sum()
        };

        let mut out = vec![0.0; b * t * c];
        let mut preatt = vec![0.0; b * nh * t * t];
        let mut att = vec![0.0; b * nh * t * t];
        attention_forward(&mut out, &mut preatt, &mut att, &inp, b, t, c, nh, true);
        let mut dinp = vec![0.0; b * t * 3 * c];
        let mut dpreatt = vec![0.0; b * nh * t * t];
        let mut datt = vec![0.0; b * nh * t * t];
        attention_backward(
            &mut dinp,
            &mut dpreatt,
            &mut datt,
            &dout,
            &inp,
            &att,
            b,
            t,
            c,
            nh,
        );

        let mut x = inp.clone();
        for (i, &di) in dinp.iter().enumerate() {
            let g = fd(&mut x, i, &loss);
            assert!((g - di).abs() < 3e-2, "dinp[{i}]: fd={g} an={di}");
        }
    }

    #[test]
    fn gelu_grad_check() {
        let mut rng = SeedStream::new(4);
        let inp = randv(16, &mut rng);
        let dout = randv(16, &mut rng);
        let loss = |inp: &[f32]| -> f32 {
            let mut out = vec![0.0; 16];
            gelu_forward(&mut out, inp);
            out.iter().zip(&dout).map(|(o, d)| o * d).sum()
        };
        let mut dinp = vec![0.0; 16];
        gelu_backward(&mut dinp, &inp, &dout);
        let mut x = inp.clone();
        for (i, &di) in dinp.iter().enumerate() {
            let g = fd(&mut x, i, &loss);
            assert!((g - di).abs() < 1e-2, "dinp[{i}]: fd={g} an={di}");
        }
    }

    #[test]
    fn cross_entropy_grad_check() {
        let (bt, v) = (3, 7);
        let mut rng = SeedStream::new(5);
        let logits = randv(bt * v, &mut rng);
        let targets: Vec<u32> = vec![2, 0, 6];

        let loss = |logits: &[f32]| -> f32 {
            let mut probs = vec![0.0; bt * v];
            let mut losses = vec![0.0; bt];
            cross_entropy_forward(&mut probs, &mut losses, logits, &targets, bt, v)
        };

        let mut probs = vec![0.0; bt * v];
        let mut losses = vec![0.0; bt];
        cross_entropy_forward(&mut probs, &mut losses, &logits, &targets, bt, v);
        let mut dlogits = vec![0.0; bt * v];
        cross_entropy_backward(&mut dlogits, &probs, &targets, bt, v);

        let mut x = logits.clone();
        for (i, &dl) in dlogits.iter().enumerate() {
            let g = fd(&mut x, i, &loss);
            assert!((g - dl).abs() < 1e-2, "dlogits[{i}]");
        }
    }

    #[test]
    fn attention_is_causal() {
        // Changing a *future* token's K/V must not change earlier outputs.
        let (b, t, c, nh) = (1, 5, 4, 2);
        let mut rng = SeedStream::new(6);
        let mut inp = randv(b * t * 3 * c, &mut rng);
        let run = |inp: &[f32]| -> Vec<f32> {
            let mut out = vec![0.0; b * t * c];
            let mut preatt = vec![0.0; b * nh * t * t];
            let mut att = vec![0.0; b * nh * t * t];
            attention_forward(&mut out, &mut preatt, &mut att, inp, b, t, c, nh, true);
            out
        };
        let base = run(&inp);
        // Perturb the last position's entire QKV.
        for x in inp[(t - 1) * 3 * c..t * 3 * c].iter_mut() {
            *x += 10.0;
        }
        let pert = run(&inp);
        assert_eq!(&base[..(t - 1) * c], &pert[..(t - 1) * c]);
        assert_ne!(&base[(t - 1) * c..], &pert[(t - 1) * c..]);
    }

    #[test]
    fn alibi_biases_recency() {
        // With identical K for all positions, ALiBi should make attention
        // prefer recent tokens.
        let (b, t, c, nh) = (1, 8, 4, 1);
        let inp = vec![0.5; b * t * 3 * c]; // uniform q, k, v
        let mut out = vec![0.0; b * t * c];
        let mut preatt = vec![0.0; nh * t * t];
        let mut att = vec![0.0; nh * t * t];
        attention_forward(&mut out, &mut preatt, &mut att, &inp, b, t, c, nh, true);
        let last_row = &att[(t - 1) * t..t * t];
        assert!(
            last_row.windows(2).all(|w| w[0] <= w[1] + 1e-6),
            "attention not recency-biased: {last_row:?}"
        );
    }

    #[test]
    fn alibi_slopes_decrease_with_head() {
        let s: Vec<f32> = (0..4).map(|h| alibi_slope(h, 4)).collect();
        assert!(s.windows(2).all(|w| w[0] > w[1]));
        assert!((alibi_slope(3, 4) - 2.0f32.powi(-8)).abs() < 1e-7);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let (bt, v) = (4, 9);
        let mut rng = SeedStream::new(7);
        let logits = randv(bt * v, &mut rng);
        let mut probs = vec![0.0; bt * v];
        let mut losses = vec![0.0; bt];
        cross_entropy_forward(&mut probs, &mut losses, &logits, &[0, 1, 2, 3], bt, v);
        for i in 0..bt {
            let s: f32 = probs[i * v..(i + 1) * v].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(losses.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn kernels_match_across_thread_budgets() {
        // Every parallel kernel must agree with its serial (threads = 1)
        // execution up to summation-order effects; the forward kernels here
        // are chunk-wise identical, so exact equality is required.
        let (b, t, c, nh) = (2, 6, 8, 2);
        let v = 11;
        let bt = b * t;
        let mut rng = SeedStream::new(8);
        let inp = randv(b * t * 3 * c, &mut rng);
        let logits = randv(bt * v, &mut rng);
        let targets: Vec<u32> = (0..bt as u32).map(|i| i % v as u32).collect();

        let run_fwd = |threads: usize| {
            photon_tensor::ops::pool::with_parallelism(threads, || {
                let mut out = vec![0.0; b * t * c];
                let mut preatt = vec![0.0; b * nh * t * t];
                let mut att = vec![0.0; b * nh * t * t];
                attention_forward(&mut out, &mut preatt, &mut att, &inp, b, t, c, nh, true);
                let mut probs = vec![0.0; bt * v];
                let mut losses = vec![0.0; bt];
                let loss = cross_entropy_forward(&mut probs, &mut losses, &logits, &targets, bt, v);
                (out, att, probs, loss)
            })
        };
        let serial = run_fwd(1);
        let parallel = run_fwd(4);
        assert_eq!(serial.0, parallel.0, "attention out differs");
        assert_eq!(serial.1, parallel.1, "attention softmax differs");
        assert_eq!(serial.2, parallel.2, "probs differ");
        assert_eq!(serial.3, parallel.3, "loss differs");
    }
}
