//! Autoregressive text generation: greedy, temperature and top-k sampling.
//!
//! Used by the downstream-utility demos — a Photon-trained model should
//! emit text in the style of its training domains (and does; see the
//! `text_generation` example).

use crate::{Activations, Gpt};
use photon_tensor::SeedStream;

/// Decoding configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// Softmax temperature (0 = greedy argmax).
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens (0 = no truncation).
    pub top_k: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            temperature: 0.8,
            top_k: 40,
        }
    }
}

impl SampleConfig {
    /// Greedy decoding.
    pub fn greedy() -> Self {
        SampleConfig {
            temperature: 0.0,
            top_k: 0,
        }
    }
}

/// Generates `n_tokens` continuation tokens after `prompt`.
///
/// The context is truncated to the model's sequence length from the left
/// (sliding window) as generation proceeds.
///
/// # Panics
/// Panics if the prompt is empty or contains out-of-vocabulary ids.
pub fn generate(
    model: &Gpt,
    prompt: &[u32],
    n_tokens: usize,
    config: &SampleConfig,
    rng: &mut SeedStream,
) -> Vec<u32> {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    let seq_len = model.config().seq_len;
    let v = model.config().vocab_size;
    let mut context: Vec<u32> = prompt.to_vec();
    let mut out = Vec::with_capacity(n_tokens);

    for _ in 0..n_tokens {
        let window_start = context.len().saturating_sub(seq_len);
        let window = &context[window_start..];
        let mut acts = Activations::new(model.config(), 1, window.len());
        model.forward(window, None, &mut acts);
        let logits = &acts.logits()[(window.len() - 1) * v..window.len() * v];
        let next = sample_from_logits(logits, config, rng);
        out.push(next);
        context.push(next);
    }
    out
}

fn sample_from_logits(logits: &[f32], config: &SampleConfig, rng: &mut SeedStream) -> u32 {
    if config.temperature <= 0.0 {
        return photon_tensor::ops::argmax(logits) as u32;
    }
    // Scale, optionally truncate to top-k, softmax, sample.
    let mut indexed: Vec<(usize, f32)> = logits
        .iter()
        .map(|&l| l / config.temperature)
        .enumerate()
        .collect();
    if config.top_k > 0 && config.top_k < indexed.len() {
        indexed.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("finite logits"));
        indexed.truncate(config.top_k);
    }
    let maxv = indexed
        .iter()
        .map(|&(_, l)| l)
        .fold(f32::NEG_INFINITY, f32::max);
    let weights: Vec<f64> = indexed
        .iter()
        .map(|&(_, l)| ((l - maxv) as f64).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.next_f64() * total;
    for (&(idx, _), w) in indexed.iter().zip(&weights) {
        u -= w;
        if u <= 0.0 {
            return idx as u32;
        }
    }
    indexed.last().map(|&(i, _)| i as u32).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    fn tiny_model() -> Gpt {
        let cfg = ModelConfig {
            n_layers: 1,
            d_model: 16,
            n_heads: 2,
            exp_ratio: 2,
            vocab_size: 19,
            seq_len: 8,
        };
        Gpt::new(cfg, &mut SeedStream::new(0))
    }

    #[test]
    fn generates_requested_count_in_vocab() {
        let model = tiny_model();
        let mut rng = SeedStream::new(1);
        let out = generate(&model, &[1, 2, 3], 20, &SampleConfig::default(), &mut rng);
        assert_eq!(out.len(), 20);
        assert!(out.iter().all(|&t| (t as usize) < 19));
    }

    #[test]
    fn greedy_is_deterministic() {
        let model = tiny_model();
        let cfg = SampleConfig::greedy();
        let a = generate(&model, &[4, 5], 10, &cfg, &mut SeedStream::new(1));
        let b = generate(&model, &[4, 5], 10, &cfg, &mut SeedStream::new(999));
        assert_eq!(a, b, "greedy decoding must ignore the rng");
    }

    #[test]
    fn sampling_is_seed_deterministic_but_varies_across_seeds() {
        let model = tiny_model();
        let cfg = SampleConfig {
            temperature: 1.2,
            top_k: 0,
        };
        let a = generate(&model, &[4], 24, &cfg, &mut SeedStream::new(7));
        let b = generate(&model, &[4], 24, &cfg, &mut SeedStream::new(7));
        assert_eq!(a, b);
        let c = generate(&model, &[4], 24, &cfg, &mut SeedStream::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn top_k_one_equals_greedy() {
        let model = tiny_model();
        let greedy = generate(
            &model,
            &[2, 3],
            12,
            &SampleConfig::greedy(),
            &mut SeedStream::new(1),
        );
        let topk1 = generate(
            &model,
            &[2, 3],
            12,
            &SampleConfig {
                temperature: 0.5,
                top_k: 1,
            },
            &mut SeedStream::new(2),
        );
        assert_eq!(greedy, topk1);
    }

    #[test]
    fn long_generation_slides_the_window() {
        // Generating far past seq_len must keep working (sliding context).
        let model = tiny_model();
        let out = generate(
            &model,
            &[1],
            40,
            &SampleConfig::greedy(),
            &mut SeedStream::new(1),
        );
        assert_eq!(out.len(), 40);
    }
}
