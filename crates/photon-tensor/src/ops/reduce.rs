/// Sum of all elements (f64 accumulator for stability).
pub fn sum(xs: &[f32]) -> f32 {
    xs.iter().map(|&v| v as f64).sum::<f64>() as f32
}

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        sum(xs) / xs.len() as f32
    }
}

/// Dot product (f64 accumulator for stability).
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum::<f64>() as f32
}

/// Euclidean (L2) norm.
pub fn l2_norm(xs: &[f32]) -> f32 {
    xs.iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        .sqrt() as f32
}

/// Largest absolute value. Returns `0.0` for an empty slice.
pub fn max_abs(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Index of the maximum element (first wins on ties).
///
/// # Panics
/// Panics if the slice is empty.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Maximum element-wise absolute difference between two slices.
/// Useful for numerical comparisons in tests.
///
/// # Panics
/// Panics if lengths differ.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions() {
        let xs = [1.0, -2.0, 3.0];
        assert_eq!(sum(&xs), 2.0);
        assert!((mean(&xs) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(max_abs(&xs), 3.0);
        assert_eq!(argmax(&xs), 2);
        assert!((l2_norm(&xs) - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn dot_and_diff() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn argmax_first_wins_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
    }

    #[test]
    #[should_panic(expected = "argmax of empty")]
    fn argmax_empty_panics() {
        argmax(&[]);
    }
}
