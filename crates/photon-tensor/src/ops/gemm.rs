use super::pool;

/// Specification for a general matrix multiply `C = alpha * op(A) op(B) + beta * C`.
///
/// The *logical* operand shapes are `op(A): (m, k)`, `op(B): (k, n)` and
/// `C: (m, n)`. When a transpose flag is set, the corresponding *physical*
/// buffer stores the transposed matrix, i.e. with `trans_a` the `a` slice is
/// laid out as `(k, m)` row-major.
///
/// ```
/// use photon_tensor::ops::{gemm, Gemm};
/// let a = [1., 2., 3., 4.]; // 2x2
/// let b = [1., 0., 0., 1.]; // identity
/// let mut c = [0.0f32; 4];
/// gemm(Gemm::new(2, 2, 2), &a, &b, &mut c);
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gemm {
    /// Rows of `op(A)` and `C`.
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Columns of `op(B)` and `C`.
    pub n: usize,
    /// Whether the physical `a` buffer is `(k, m)` (i.e. `op(A) = A^T`).
    pub trans_a: bool,
    /// Whether the physical `b` buffer is `(n, k)` (i.e. `op(B) = B^T`).
    pub trans_b: bool,
    /// Scale applied to the product.
    pub alpha: f32,
    /// Scale applied to the existing contents of `C` (`0.0` overwrites).
    pub beta: f32,
}

impl Gemm {
    /// A plain `C = A B` spec with the given logical dimensions.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Gemm {
            m,
            k,
            n,
            trans_a: false,
            trans_b: false,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// Marks the `a` buffer as physically transposed (`(k, m)` layout).
    pub fn transpose_a(mut self) -> Self {
        self.trans_a = true;
        self
    }

    /// Marks the `b` buffer as physically transposed (`(n, k)` layout).
    pub fn transpose_b(mut self) -> Self {
        self.trans_b = true;
        self
    }

    /// Sets the product scale factor.
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the accumulation factor for existing `C` contents.
    /// `beta = 1.0` accumulates into `C` (used for gradient accumulation).
    pub fn beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    fn a_len(&self) -> usize {
        self.m * self.k
    }

    fn b_len(&self) -> usize {
        self.k * self.n
    }

    fn c_len(&self) -> usize {
        self.m * self.n
    }
}

/// k-dimension block size: one block of B rows (`KC * n` floats) stays hot
/// in L2 while a row tile of C streams over it.
const KC: usize = 256;
/// Register tile height: rows of C updated together so each loaded B value
/// feeds `MR` fused multiply-adds.
const MR: usize = 4;

/// Scales `c` by `beta` with the overwrite special case (`beta == 0` stores
/// zeros even over NaN/Inf garbage, matching BLAS semantics).
fn scale_beta(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
}

/// `C += alpha * A B` with `A: (m, k)`, `B: (k, n)`, both row-major.
///
/// k-blocked so each `(KC, n)` panel of B is reused across every row tile,
/// with an `MR`-row register tile on the `ipj` path. No value-dependent
/// skips: a zero in A must still propagate NaN/Inf from B.
fn kernel_nn(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut p0 = 0;
    while p0 < k {
        let pe = (p0 + KC).min(k);
        let mut rows = &mut c[..m * n];
        let mut i = 0usize;
        while i + MR <= m {
            let (tile, rest) = rows.split_at_mut(MR * n);
            rows = rest;
            let (r0, tail) = tile.split_at_mut(n);
            let (r1, tail) = tail.split_at_mut(n);
            let (r2, r3) = tail.split_at_mut(n);
            for p in p0..pe {
                let s0 = alpha * a[i * k + p];
                let s1 = alpha * a[(i + 1) * k + p];
                let s2 = alpha * a[(i + 2) * k + p];
                let s3 = alpha * a[(i + 3) * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (j, &bv) in b_row.iter().enumerate() {
                    r0[j] += s0 * bv;
                    r1[j] += s1 * bv;
                    r2[j] += s2 * bv;
                    r3[j] += s3 * bv;
                }
            }
            i += MR;
        }
        while i < m {
            let (row, rest) = rows.split_at_mut(n);
            rows = rest;
            for p in p0..pe {
                let s = alpha * a[i * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (cv, &bv) in row.iter_mut().zip(b_row) {
                    *cv += s * bv;
                }
            }
            i += 1;
        }
        p0 = pe;
    }
}

/// Four-accumulator dot product; the split accumulators expose instruction-
/// level parallelism the single-chain version cannot.
fn dot4(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let mut xs = x.chunks_exact(4);
    let mut ys = y.chunks_exact(4);
    for (xc, yc) in xs.by_ref().zip(ys.by_ref()) {
        acc[0] += xc[0] * yc[0];
        acc[1] += xc[1] * yc[1];
        acc[2] += xc[2] * yc[2];
        acc[3] += xc[3] * yc[3];
    }
    let mut tail = 0.0f32;
    for (&xv, &yv) in xs.remainder().iter().zip(ys.remainder()) {
        tail += xv * yv;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `C += alpha * A B^T` with `A: (m, k)`, physical `B: (n, k)`: every output
/// is a dot of two contiguous rows.
fn kernel_nt(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *cv += alpha * dot4(a_row, b_row);
        }
    }
}

/// `C += alpha * A^T B` with physical `A: (k, m)`, `B: (k, n)`: an `MR`-row
/// tile of C accumulates across the whole contraction so each streamed row
/// of B is reused `MR` times.
fn kernel_tn(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut rows = &mut c[..m * n];
    let mut i = 0usize;
    while i + MR <= m {
        let (tile, rest) = rows.split_at_mut(MR * n);
        rows = rest;
        let (r0, tail) = tile.split_at_mut(n);
        let (r1, tail) = tail.split_at_mut(n);
        let (r2, r3) = tail.split_at_mut(n);
        for p in 0..k {
            let s0 = alpha * a[p * m + i];
            let s1 = alpha * a[p * m + i + 1];
            let s2 = alpha * a[p * m + i + 2];
            let s3 = alpha * a[p * m + i + 3];
            let b_row = &b[p * n..(p + 1) * n];
            for (j, &bv) in b_row.iter().enumerate() {
                r0[j] += s0 * bv;
                r1[j] += s1 * bv;
                r2[j] += s2 * bv;
                r3[j] += s3 * bv;
            }
        }
        i += MR;
    }
    while i < m {
        let (row, rest) = rows.split_at_mut(n);
        rows = rest;
        for p in 0..k {
            let s = alpha * a[p * m + i];
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in row.iter_mut().zip(b_row) {
                *cv += s * bv;
            }
        }
        i += 1;
    }
}

/// `C += alpha * A^T B^T` for logical rows `i0..i0 + rows`, with physical
/// `A: (k, m)` and `B: (n, k)` indexed absolutely (the row window cannot be
/// expressed as a sub-slice of `a`). Rare outside tests.
fn kernel_tt_rows(spec: Gemm, i0: usize, rows: usize, a: &[f32], b: &[f32], c_rows: &mut [f32]) {
    let (m, k, n, alpha) = (spec.m, spec.k, spec.n, spec.alpha);
    for (di, c_row) in c_rows.chunks_exact_mut(n).take(rows).enumerate() {
        let i = i0 + di;
        for (j, cv) in c_row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[p * m + i] * b[j * k + p];
            }
            *cv += alpha * acc;
        }
    }
}

/// Executes a [`Gemm`] spec on the calling thread with cache-blocked,
/// register-tiled kernels (see [`kernel_nn`]'s blocking scheme). For the
/// pool-parallel entry points use [`par_gemm`] or [`gemm_auto`].
///
/// # Panics
/// Panics if any slice is shorter than the spec requires.
pub fn gemm(spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= spec.a_len(), "gemm: a too short");
    assert!(b.len() >= spec.b_len(), "gemm: b too short");
    assert!(c.len() >= spec.c_len(), "gemm: c too short");
    let (m, k, n) = (spec.m, spec.k, spec.n);
    scale_beta(&mut c[..m * n], spec.beta);
    match (spec.trans_a, spec.trans_b) {
        (false, false) => kernel_nn(m, k, n, spec.alpha, a, b, c),
        (false, true) => kernel_nt(m, k, n, spec.alpha, a, b, c),
        (true, false) => kernel_tn(m, k, n, spec.alpha, a, b, c),
        (true, true) => kernel_tt_rows(spec, 0, m, a, b, c),
    }
}

/// Problems below this many flops (`2 m k n`) are not worth a trip through
/// the pool barrier.
const PAR_THRESHOLD_FLOPS: usize = 1 << 18;

/// Pool-parallel [`gemm`] with an explicit thread budget.
///
/// Row-splits `C` across the persistent worker pool for the `nn`/`nt`/`tt`
/// layouts. The `trans_a` layout (`tn`, the weight-gradient shape where `m`
/// and `n` are small but `k = B*T` is large) instead splits the
/// *contraction* dimension: each worker accumulates into a private
/// `(m, n)` partial buffer and the partials are reduced into `C` in
/// deterministic chunk order after the barrier. Small problems run serially.
///
/// # Panics
/// Panics if any slice is shorter than the spec requires.
pub fn par_gemm(spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32], threads: usize) {
    assert!(a.len() >= spec.a_len(), "par_gemm: a too short");
    assert!(b.len() >= spec.b_len(), "par_gemm: b too short");
    assert!(c.len() >= spec.c_len(), "par_gemm: c too short");
    let threads = threads.max(1);
    let flops = 2 * spec.m * spec.k * spec.n;
    if threads == 1 || flops < PAR_THRESHOLD_FLOPS {
        gemm(spec, a, b, c);
        return;
    }
    if spec.trans_a && !spec.trans_b {
        par_gemm_split_k(spec, a, b, c, threads);
        return;
    }

    let (m, k, n) = (spec.m, spec.k, spec.n);
    let parts = threads.min(m);
    if parts <= 1 {
        gemm(spec, a, b, c);
        return;
    }
    let ranges = pool::chunk_ranges(m, parts);
    let chunks = pool::split_rows(&mut c[..m * n], n, &ranges);
    let tasks: Vec<pool::Task> = chunks
        .into_iter()
        .zip(&ranges)
        .map(|(c_chunk, r)| {
            let r = r.clone();
            Box::new(move || {
                let sub = Gemm { m: r.len(), ..spec };
                if spec.trans_a {
                    // tt: the row window of A^T is column-strided, so the
                    // kernel indexes the full buffers absolutely.
                    scale_beta(c_chunk, spec.beta);
                    kernel_tt_rows(spec, r.start, r.len(), a, b, c_chunk);
                } else {
                    gemm(sub, &a[r.start * k..r.end * k], b, c_chunk);
                }
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

/// Split-k path for `trans_a` (physical `A: (k, m)`, `B: (k, n)`): each task
/// owns a disjoint `p`-range of the contraction and a private zeroed
/// `(m, n)` accumulator, so the hot loops are write-disjoint without locks.
/// The reduce runs on the caller in ascending chunk order — results depend
/// only on the chunk count, never on scheduling.
fn par_gemm_split_k(spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32], threads: usize) {
    let (m, k, n) = (spec.m, spec.k, spec.n);
    let parts = threads.min(k);
    if parts <= 1 {
        gemm(spec, a, b, c);
        return;
    }
    let ranges = pool::chunk_ranges(k, parts);
    let mut partials: Vec<Vec<f32>> = ranges.iter().map(|_| vec![0.0f32; m * n]).collect();
    let tasks: Vec<pool::Task> = partials
        .iter_mut()
        .zip(&ranges)
        .map(|(buf, r)| {
            let r = r.clone();
            Box::new(move || {
                let sub = Gemm {
                    k: r.len(),
                    beta: 0.0,
                    ..spec
                };
                gemm(
                    sub,
                    &a[r.start * m..r.end * m],
                    &b[r.start * n..r.end * n],
                    buf,
                );
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);

    let c = &mut c[..m * n];
    scale_beta(c, spec.beta);
    for buf in &partials {
        for (cv, &pv) in c.iter_mut().zip(buf) {
            *cv += pv;
        }
    }
}

/// [`par_gemm`] sized by the ambient thread budget
/// ([`pool::effective_parallelism`]): the global `--threads` /
/// `PHOTON_THREADS` / autodetected limit, scoped down inside
/// [`pool::with_parallelism`] regions and on pool workers. This is the entry
/// point the `photon-nn` training kernels call.
pub fn gemm_auto(spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
    let _kernel = photon_trace::span(photon_trace::Phase::KernelGemm)
        .arg("m", spec.m as u64)
        .arg("k", spec.k as u64)
        .arg("n", spec.n as u64);
    photon_trace::counter_add(
        "kernel.gemm_flops",
        2 * (spec.m as u64) * (spec.k as u64) * (spec.n as u64),
    );
    par_gemm(spec, a, b, c, pool::effective_parallelism());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedStream;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn transpose(r: usize, c: usize, x: &[f32]) -> Vec<f32> {
        let mut t = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                t[j * r + i] = x[i * c + j];
            }
        }
        t
    }

    fn rand_vec(n: usize, rng: &mut SeedStream) -> Vec<f32> {
        (0..n).map(|_| rng.next_normal()).collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn all_transpose_variants_match_naive() {
        let mut rng = SeedStream::new(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (8, 16, 8), (7, 3, 9), (5, 300, 2)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let want = naive(m, k, n, &a, &b);

            let mut c = vec![0.0; m * n];
            gemm(Gemm::new(m, k, n), &a, &b, &mut c);
            assert_close(&c, &want);

            let at = transpose(m, k, &a);
            let mut c = vec![0.0; m * n];
            gemm(Gemm::new(m, k, n).transpose_a(), &at, &b, &mut c);
            assert_close(&c, &want);

            let bt = transpose(k, n, &b);
            let mut c = vec![0.0; m * n];
            gemm(Gemm::new(m, k, n).transpose_b(), &a, &bt, &mut c);
            assert_close(&c, &want);

            let mut c = vec![0.0; m * n];
            gemm(
                Gemm::new(m, k, n).transpose_a().transpose_b(),
                &at,
                &bt,
                &mut c,
            );
            assert_close(&c, &want);
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        // 1x2 * 2x1
        let mut c = [10.0f32];
        gemm(Gemm::new(1, 2, 1).alpha(2.0).beta(1.0), &a, &b, &mut c);
        assert_eq!(c[0], 10.0 + 2.0 * 11.0);
        let mut c = [10.0f32];
        gemm(Gemm::new(1, 2, 1).beta(0.5), &a, &b, &mut c);
        assert_eq!(c[0], 5.0 + 11.0);
    }

    #[test]
    fn par_gemm_matches_serial() {
        let mut rng = SeedStream::new(2);
        let (m, k, n) = (64, 96, 80);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(Gemm::new(m, k, n), &a, &b, &mut c1);
        par_gemm(Gemm::new(m, k, n), &a, &b, &mut c2, 4);
        assert_close(&c1, &c2);
    }

    #[test]
    fn par_gemm_split_k_matches_serial() {
        let mut rng = SeedStream::new(3);
        // Weight-gradient shape: small (m, n), long contraction, beta = 1.
        let (m, k, n) = (24, 512, 40);
        let at = rand_vec(k * m, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let seed = rand_vec(m * n, &mut rng);
        let mut c1 = seed.clone();
        let mut c2 = seed.clone();
        let spec = Gemm::new(m, k, n).transpose_a().beta(1.0).alpha(0.5);
        gemm(spec, &at, &b, &mut c1);
        par_gemm(spec, &at, &b, &mut c2, 4);
        assert_close(&c1, &c2);
    }

    #[test]
    fn zeros_in_a_still_propagate_nan_from_b() {
        // Regression: the old kernels skipped `a == 0.0` entries, silently
        // dropping NaN/Inf contributions from B (0 * NaN must be NaN).
        let a = [0.0f32, 0.0];
        let b = [f32::NAN, 1.0, f32::INFINITY, 2.0];
        let mut c = [0.0f32; 2];
        gemm(Gemm::new(1, 2, 2), &a, &b, &mut c);
        // Column 0 sums 0*NaN + 0*inf = NaN; column 1 sees only finite values.
        assert!(c[0].is_nan(), "0 * NaN must propagate, got {}", c[0]);
        assert_eq!(c[1], 0.0);

        let at = [0.0f32, 0.0];
        let mut c = [0.0f32; 2];
        gemm(Gemm::new(1, 2, 2).transpose_a(), &at, &b, &mut c);
        assert!(c[0].is_nan(), "trans_a path must propagate NaN");
    }

    #[test]
    fn gemm_auto_respects_thread_budget() {
        let mut rng = SeedStream::new(4);
        let (m, k, n) = (48, 64, 52);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        crate::ops::pool::with_parallelism(1, || {
            gemm_auto(Gemm::new(m, k, n), &a, &b, &mut c1);
        });
        crate::ops::pool::with_parallelism(4, || {
            gemm_auto(Gemm::new(m, k, n), &a, &b, &mut c2);
        });
        assert_close(&c1, &c2);
    }

    #[test]
    #[should_panic(expected = "a too short")]
    fn short_input_panics() {
        let mut c = [0.0f32; 4];
        gemm(Gemm::new(2, 2, 2), &[1.0; 3], &[1.0; 4], &mut c);
    }
}
