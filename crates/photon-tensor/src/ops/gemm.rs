/// Specification for a general matrix multiply `C = alpha * op(A) op(B) + beta * C`.
///
/// The *logical* operand shapes are `op(A): (m, k)`, `op(B): (k, n)` and
/// `C: (m, n)`. When a transpose flag is set, the corresponding *physical*
/// buffer stores the transposed matrix, i.e. with `trans_a` the `a` slice is
/// laid out as `(k, m)` row-major.
///
/// ```
/// use photon_tensor::ops::{gemm, Gemm};
/// let a = [1., 2., 3., 4.]; // 2x2
/// let b = [1., 0., 0., 1.]; // identity
/// let mut c = [0.0f32; 4];
/// gemm(Gemm::new(2, 2, 2), &a, &b, &mut c);
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gemm {
    /// Rows of `op(A)` and `C`.
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Columns of `op(B)` and `C`.
    pub n: usize,
    /// Whether the physical `a` buffer is `(k, m)` (i.e. `op(A) = A^T`).
    pub trans_a: bool,
    /// Whether the physical `b` buffer is `(n, k)` (i.e. `op(B) = B^T`).
    pub trans_b: bool,
    /// Scale applied to the product.
    pub alpha: f32,
    /// Scale applied to the existing contents of `C` (`0.0` overwrites).
    pub beta: f32,
}

impl Gemm {
    /// A plain `C = A B` spec with the given logical dimensions.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Gemm {
            m,
            k,
            n,
            trans_a: false,
            trans_b: false,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// Marks the `a` buffer as physically transposed (`(k, m)` layout).
    pub fn transpose_a(mut self) -> Self {
        self.trans_a = true;
        self
    }

    /// Marks the `b` buffer as physically transposed (`(n, k)` layout).
    pub fn transpose_b(mut self) -> Self {
        self.trans_b = true;
        self
    }

    /// Sets the product scale factor.
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the accumulation factor for existing `C` contents.
    /// `beta = 1.0` accumulates into `C` (used for gradient accumulation).
    pub fn beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    fn a_len(&self) -> usize {
        self.m * self.k
    }

    fn b_len(&self) -> usize {
        self.k * self.n
    }

    fn c_len(&self) -> usize {
        self.m * self.n
    }
}

/// Executes a [`Gemm`] spec. Single-threaded, cache-blocked.
///
/// # Panics
/// Panics if any slice is shorter than the spec requires.
pub fn gemm(spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= spec.a_len(), "gemm: a too short");
    assert!(b.len() >= spec.b_len(), "gemm: b too short");
    assert!(c.len() >= spec.c_len(), "gemm: c too short");
    let (m, k, n) = (spec.m, spec.k, spec.n);
    let (alpha, beta) = (spec.alpha, spec.beta);

    if beta == 0.0 {
        c[..m * n].iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c[..m * n].iter_mut().for_each(|v| *v *= beta);
    }

    match (spec.trans_a, spec.trans_b) {
        (false, false) => {
            // C[i,j] += alpha * A[i,p] * B[p,j]; ipj order streams B rows.
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (p, &apv) in a_row.iter().enumerate() {
                    if apv == 0.0 {
                        continue;
                    }
                    let s = alpha * apv;
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += s * bv;
                    }
                }
            }
        }
        (false, true) => {
            // B physically (n, k): C[i,j] += alpha * dot(A row i, B row j).
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *cv += alpha * acc;
                }
            }
        }
        (true, false) => {
            // A physically (k, m): C[i,j] += alpha * A[p,i] * B[p,j].
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let s = alpha * av;
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += s * bv;
                    }
                }
            }
        }
        (true, true) => {
            // Rare in practice; fall back to an index loop.
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a[p * m + i] * b[j * k + p];
                    }
                    c[i * n + j] += alpha * acc;
                }
            }
        }
    }
}

/// Multi-threaded [`gemm`]: splits the rows of `C` across `threads` workers
/// using scoped threads. Falls back to the single-threaded kernel for small
/// problems or when `spec.trans_a` is set (row-splitting then no longer
/// partitions the output).
///
/// # Panics
/// Panics if any slice is shorter than the spec requires.
pub fn par_gemm(spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32], threads: usize) {
    const PAR_THRESHOLD_FLOPS: usize = 1 << 20;
    let flops = 2 * spec.m * spec.k * spec.n;
    if threads <= 1 || spec.trans_a || flops < PAR_THRESHOLD_FLOPS || spec.m < threads {
        gemm(spec, a, b, c);
        return;
    }
    assert!(a.len() >= spec.a_len(), "par_gemm: a too short");
    assert!(b.len() >= spec.b_len(), "par_gemm: b too short");
    assert!(c.len() >= spec.c_len(), "par_gemm: c too short");

    let rows_per = spec.m.div_ceil(threads);
    let c_active = &mut c[..spec.m * spec.n];
    crossbeam::thread::scope(|s| {
        let mut c_rest = c_active;
        let mut row0 = 0usize;
        while row0 < spec.m {
            let rows = rows_per.min(spec.m - row0);
            let (c_chunk, tail) = c_rest.split_at_mut(rows * spec.n);
            c_rest = tail;
            let a_chunk = &a[row0 * spec.k..(row0 + rows) * spec.k];
            let sub = Gemm {
                m: rows,
                ..spec
            };
            s.spawn(move |_| gemm(sub, a_chunk, b, c_chunk));
            row0 += rows;
        }
    })
    .expect("par_gemm worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedStream;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn transpose(r: usize, c: usize, x: &[f32]) -> Vec<f32> {
        let mut t = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                t[j * r + i] = x[i * c + j];
            }
        }
        t
    }

    fn rand_vec(n: usize, rng: &mut SeedStream) -> Vec<f32> {
        (0..n).map(|_| rng.next_normal()).collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn all_transpose_variants_match_naive() {
        let mut rng = SeedStream::new(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (8, 16, 8), (7, 3, 9)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let want = naive(m, k, n, &a, &b);

            let mut c = vec![0.0; m * n];
            gemm(Gemm::new(m, k, n), &a, &b, &mut c);
            assert_close(&c, &want);

            let at = transpose(m, k, &a);
            let mut c = vec![0.0; m * n];
            gemm(Gemm::new(m, k, n).transpose_a(), &at, &b, &mut c);
            assert_close(&c, &want);

            let bt = transpose(k, n, &b);
            let mut c = vec![0.0; m * n];
            gemm(Gemm::new(m, k, n).transpose_b(), &a, &bt, &mut c);
            assert_close(&c, &want);

            let mut c = vec![0.0; m * n];
            gemm(Gemm::new(m, k, n).transpose_a().transpose_b(), &at, &bt, &mut c);
            assert_close(&c, &want);
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        // 1x2 * 2x1
        let mut c = [10.0f32];
        gemm(Gemm::new(1, 2, 1).alpha(2.0).beta(1.0), &a, &b, &mut c);
        assert_eq!(c[0], 10.0 + 2.0 * 11.0);
        let mut c = [10.0f32];
        gemm(Gemm::new(1, 2, 1).beta(0.5), &a, &b, &mut c);
        assert_eq!(c[0], 5.0 + 11.0);
    }

    #[test]
    fn par_gemm_matches_serial() {
        let mut rng = SeedStream::new(2);
        let (m, k, n) = (64, 96, 80);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(Gemm::new(m, k, n), &a, &b, &mut c1);
        // Force the parallel path despite the small size by lowering m/threads.
        par_gemm(Gemm::new(m, k, n), &a, &b, &mut c2, 4);
        assert_close(&c1, &c2);
    }

    #[test]
    #[should_panic(expected = "a too short")]
    fn short_input_panics() {
        let mut c = [0.0f32; 4];
        gemm(Gemm::new(2, 2, 2), &[1.0; 3], &[1.0; 4], &mut c);
    }
}
