use super::pool;
use crate::backend::{self, Backend};

/// Specification for a general matrix multiply `C = alpha * op(A) op(B) + beta * C`.
///
/// The *logical* operand shapes are `op(A): (m, k)`, `op(B): (k, n)` and
/// `C: (m, n)`. When a transpose flag is set, the corresponding *physical*
/// buffer stores the transposed matrix, i.e. with `trans_a` the `a` slice is
/// laid out as `(k, m)` row-major.
///
/// ```
/// use photon_tensor::ops::{gemm, Gemm};
/// let a = [1., 2., 3., 4.]; // 2x2
/// let b = [1., 0., 0., 1.]; // identity
/// let mut c = [0.0f32; 4];
/// gemm(Gemm::new(2, 2, 2), &a, &b, &mut c);
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gemm {
    /// Rows of `op(A)` and `C`.
    pub m: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
    /// Columns of `op(B)` and `C`.
    pub n: usize,
    /// Whether the physical `a` buffer is `(k, m)` (i.e. `op(A) = A^T`).
    pub trans_a: bool,
    /// Whether the physical `b` buffer is `(n, k)` (i.e. `op(B) = B^T`).
    pub trans_b: bool,
    /// Scale applied to the product.
    pub alpha: f32,
    /// Scale applied to the existing contents of `C` (`0.0` overwrites).
    pub beta: f32,
}

impl Gemm {
    /// A plain `C = A B` spec with the given logical dimensions.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Gemm {
            m,
            k,
            n,
            trans_a: false,
            trans_b: false,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// Marks the `a` buffer as physically transposed (`(k, m)` layout).
    pub fn transpose_a(mut self) -> Self {
        self.trans_a = true;
        self
    }

    /// Marks the `b` buffer as physically transposed (`(n, k)` layout).
    pub fn transpose_b(mut self) -> Self {
        self.trans_b = true;
        self
    }

    /// Sets the product scale factor.
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the accumulation factor for existing `C` contents.
    /// `beta = 1.0` accumulates into `C` (used for gradient accumulation).
    pub fn beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    fn a_len(&self) -> usize {
        self.m * self.k
    }

    fn b_len(&self) -> usize {
        self.k * self.n
    }

    fn c_len(&self) -> usize {
        self.m * self.n
    }
}

/// Scales `c` by `beta` with the overwrite special case (`beta == 0` stores
/// zeros even over NaN/Inf garbage, matching BLAS semantics).
fn scale_beta(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.iter_mut().for_each(|v| *v = 0.0);
    } else if beta != 1.0 {
        c.iter_mut().for_each(|v| *v *= beta);
    }
}

/// Problems below this many flops (`2 m k n`) run the strided `nt` kernel
/// directly: the `O(k n)` repack only pays for itself once the `O(m k n)`
/// kernel re-reads each B element at least a few times.
const PACK_MIN_FLOPS: usize = 1 << 16;

fn should_pack_b(spec: &Gemm) -> bool {
    spec.trans_b && !spec.trans_a && spec.m >= 8 && 2 * spec.m * spec.k * spec.n >= PACK_MIN_FLOPS
}

/// Packs physical `B: (n, k)` into a contiguous `(k, n)` row-major panel so
/// the `trans_b` layout runs through the streaming `nn` kernel (unit-stride
/// B rows) instead of column-strided dots.
fn pack_b(k: usize, n: usize, b: &[f32]) -> Vec<f32> {
    let mut packed = Vec::with_capacity(k * n);
    for p in 0..k {
        for j in 0..n {
            packed.push(b[j * k + p]);
        }
    }
    packed
}

/// Runs a spec on the calling thread through one backend: applies `beta`,
/// then dispatches the accumulate kernel for the transpose layout.
fn gemm_serial(bk: &dyn Backend, spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
    let (m, n) = (spec.m, spec.n);
    scale_beta(&mut c[..m * n], spec.beta);
    match (spec.trans_a, spec.trans_b) {
        (false, false) => bk.gemm_nn(spec, a, b, c),
        (false, true) => bk.gemm_nt(spec, a, b, c),
        (true, false) => bk.gemm_tn(spec, a, b, c),
        (true, true) => bk.gemm_tt_rows(spec, 0, m, a, b, c),
    }
}

/// Executes a [`Gemm`] spec on the calling thread through the active
/// [`crate::backend`] (scalar reference or SIMD register tiles). Large
/// `trans_b` problems are first repacked into a contiguous panel (see
/// [`pack_b`]). For the pool-parallel entry points use [`par_gemm`] or
/// [`gemm_auto`].
///
/// # Panics
/// Panics if any slice is shorter than the spec requires.
pub fn gemm(spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= spec.a_len(), "gemm: a too short");
    assert!(b.len() >= spec.b_len(), "gemm: b too short");
    assert!(c.len() >= spec.c_len(), "gemm: c too short");
    let bk = backend::active();
    if should_pack_b(&spec) {
        let packed = pack_b(spec.k, spec.n, b);
        let nn = Gemm {
            trans_b: false,
            ..spec
        };
        gemm_serial(bk, nn, a, &packed, c);
        return;
    }
    gemm_serial(bk, spec, a, b, c);
}

/// Problems below this many flops (`2 m k n`) are not worth a trip through
/// the pool barrier.
const PAR_THRESHOLD_FLOPS: usize = 1 << 20;

/// Minimum flops per pool task: below this, waking another worker costs
/// more than it computes, so the task count is capped at
/// `flops / MIN_TASK_FLOPS` even when more threads are available.
const MIN_TASK_FLOPS: usize = 1 << 23;

/// Pool-parallel [`gemm`] with an explicit thread budget.
///
/// Row-splits `C` across the persistent worker pool for the `nn`/`nt`/`tt`
/// layouts. The `trans_a` layout (`tn`, the weight-gradient shape where `m`
/// and `n` are small but `k = B*T` is large) instead splits the
/// *contraction* dimension: each worker accumulates into a private
/// `(m, n)` partial buffer and the partials are reduced into `C` in
/// deterministic chunk order after the barrier. Small problems run
/// serially, and the task count is sized so each task gets at least
/// [`MIN_TASK_FLOPS`] of work (per-task overhead must amortize). A
/// `trans_b` panel is packed *once*, before splitting, so all row tasks
/// share it.
///
/// # Panics
/// Panics if any slice is shorter than the spec requires.
pub fn par_gemm(spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32], threads: usize) {
    assert!(a.len() >= spec.a_len(), "par_gemm: a too short");
    assert!(b.len() >= spec.b_len(), "par_gemm: b too short");
    assert!(c.len() >= spec.c_len(), "par_gemm: c too short");
    let threads = threads.max(1);
    let flops = 2 * spec.m * spec.k * spec.n;
    if threads == 1 || flops < PAR_THRESHOLD_FLOPS {
        gemm(spec, a, b, c);
        return;
    }
    let bk = backend::active();
    if spec.trans_a && !spec.trans_b {
        par_gemm_split_k(bk, spec, a, b, c, threads, flops);
        return;
    }

    // Pack the trans_b panel once so every row task shares it.
    let packed_storage;
    let (spec, b): (Gemm, &[f32]) = if should_pack_b(&spec) {
        packed_storage = pack_b(spec.k, spec.n, b);
        (
            Gemm {
                trans_b: false,
                ..spec
            },
            &packed_storage,
        )
    } else {
        (spec, b)
    };

    let (m, k, n) = (spec.m, spec.k, spec.n);
    let parts = threads.min(m).min((flops / MIN_TASK_FLOPS).max(1));
    if parts <= 1 {
        gemm_serial(bk, spec, a, b, c);
        return;
    }
    let ranges = pool::chunk_ranges(m, parts);
    let chunks = pool::split_rows(&mut c[..m * n], n, &ranges);
    let tasks: Vec<pool::Task> = chunks
        .into_iter()
        .zip(&ranges)
        .map(|(c_chunk, r)| {
            let r = r.clone();
            Box::new(move || {
                let sub = Gemm { m: r.len(), ..spec };
                if spec.trans_a {
                    // tt: the row window of A^T is column-strided, so the
                    // kernel indexes the full buffers absolutely.
                    scale_beta(c_chunk, spec.beta);
                    bk.gemm_tt_rows(spec, r.start, r.len(), a, b, c_chunk);
                } else {
                    gemm_serial(bk, sub, &a[r.start * k..r.end * k], b, c_chunk);
                }
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);
}

/// Split-k path for `trans_a` (physical `A: (k, m)`, `B: (k, n)`): each task
/// owns a disjoint `p`-range of the contraction and a private zeroed
/// `(m, n)` accumulator, so the hot loops are write-disjoint without locks.
/// The reduce runs on the caller in ascending chunk order — results depend
/// only on the chunk count, never on scheduling.
fn par_gemm_split_k(
    bk: &dyn Backend,
    spec: Gemm,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    flops: usize,
) {
    let (m, k, n) = (spec.m, spec.k, spec.n);
    let parts = threads.min(k).min((flops / MIN_TASK_FLOPS).max(1));
    if parts <= 1 {
        gemm_serial(bk, spec, a, b, c);
        return;
    }
    let ranges = pool::chunk_ranges(k, parts);
    let mut partials: Vec<Vec<f32>> = ranges.iter().map(|_| vec![0.0f32; m * n]).collect();
    let tasks: Vec<pool::Task> = partials
        .iter_mut()
        .zip(&ranges)
        .map(|(buf, r)| {
            let r = r.clone();
            Box::new(move || {
                let sub = Gemm {
                    k: r.len(),
                    beta: 0.0,
                    ..spec
                };
                gemm_serial(
                    bk,
                    sub,
                    &a[r.start * m..r.end * m],
                    &b[r.start * n..r.end * n],
                    buf,
                );
            }) as pool::Task
        })
        .collect();
    pool::run_tasks(tasks);

    let c = &mut c[..m * n];
    scale_beta(c, spec.beta);
    for buf in &partials {
        for (cv, &pv) in c.iter_mut().zip(buf) {
            *cv += pv;
        }
    }
}

/// [`par_gemm`] sized by the ambient thread budget
/// ([`pool::effective_parallelism`]): the global `--threads` /
/// `PHOTON_THREADS` / autodetected limit, scoped down inside
/// [`pool::with_parallelism`] regions and on pool workers. This is the entry
/// point the `photon-nn` training kernels call.
pub fn gemm_auto(spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
    let _kernel = photon_trace::span(photon_trace::Phase::KernelGemm)
        .arg("m", spec.m as u64)
        .arg("k", spec.k as u64)
        .arg("n", spec.n as u64)
        .arg("backend", backend::active_kind().id());
    photon_trace::counter_add(
        "kernel.gemm_flops",
        2 * (spec.m as u64) * (spec.k as u64) * (spec.n as u64),
    );
    par_gemm(spec, a, b, c, pool::effective_parallelism());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedStream;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn transpose(r: usize, c: usize, x: &[f32]) -> Vec<f32> {
        let mut t = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                t[j * r + i] = x[i * c + j];
            }
        }
        t
    }

    fn rand_vec(n: usize, rng: &mut SeedStream) -> Vec<f32> {
        (0..n).map(|_| rng.next_normal()).collect()
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn all_transpose_variants_match_naive() {
        let mut rng = SeedStream::new(1);
        // (32, 64, 48) crosses PACK_MIN_FLOPS so the packed trans_b path
        // gets correctness coverage alongside the small strided cases.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 4, 5),
            (8, 16, 8),
            (7, 3, 9),
            (5, 300, 2),
            (32, 64, 48),
        ] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let want = naive(m, k, n, &a, &b);

            let mut c = vec![0.0; m * n];
            gemm(Gemm::new(m, k, n), &a, &b, &mut c);
            assert_close(&c, &want);

            let at = transpose(m, k, &a);
            let mut c = vec![0.0; m * n];
            gemm(Gemm::new(m, k, n).transpose_a(), &at, &b, &mut c);
            assert_close(&c, &want);

            let bt = transpose(k, n, &b);
            let mut c = vec![0.0; m * n];
            gemm(Gemm::new(m, k, n).transpose_b(), &a, &bt, &mut c);
            assert_close(&c, &want);

            let mut c = vec![0.0; m * n];
            gemm(
                Gemm::new(m, k, n).transpose_a().transpose_b(),
                &at,
                &bt,
                &mut c,
            );
            assert_close(&c, &want);
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        // 1x2 * 2x1
        let mut c = [10.0f32];
        gemm(Gemm::new(1, 2, 1).alpha(2.0).beta(1.0), &a, &b, &mut c);
        assert_eq!(c[0], 10.0 + 2.0 * 11.0);
        let mut c = [10.0f32];
        gemm(Gemm::new(1, 2, 1).beta(0.5), &a, &b, &mut c);
        assert_eq!(c[0], 5.0 + 11.0);
    }

    #[test]
    fn par_gemm_matches_serial() {
        let mut rng = SeedStream::new(2);
        // 2 m k n = 2^24 = 2 * MIN_TASK_FLOPS, so the row-split path really
        // runs with two tasks under the task-sizing cap.
        let (m, k, n) = (128, 512, 128);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(Gemm::new(m, k, n), &a, &b, &mut c1);
        par_gemm(Gemm::new(m, k, n), &a, &b, &mut c2, 4);
        assert_close(&c1, &c2);
    }

    #[test]
    fn par_gemm_small_problem_skips_pool() {
        // Below MIN_TASK_FLOPS the split must collapse to a single serial
        // call (identical result regardless of the thread budget).
        let mut rng = SeedStream::new(7);
        let (m, k, n) = (64, 96, 80);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(Gemm::new(m, k, n), &a, &b, &mut c1);
        par_gemm(Gemm::new(m, k, n), &a, &b, &mut c2, 8);
        assert_eq!(c1, c2, "sub-threshold par_gemm must match serial exactly");
    }

    #[test]
    fn par_gemm_split_k_matches_serial() {
        let mut rng = SeedStream::new(3);
        // Weight-gradient shape: small (m, n), long contraction, beta = 1.
        // 2 m k n = 2^24 keeps two split-k tasks under the sizing cap.
        let (m, k, n) = (32, 4096, 64);
        let at = rand_vec(k * m, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let seed = rand_vec(m * n, &mut rng);
        let mut c1 = seed.clone();
        let mut c2 = seed.clone();
        let spec = Gemm::new(m, k, n).transpose_a().beta(1.0).alpha(0.5);
        gemm(spec, &at, &b, &mut c1);
        par_gemm(spec, &at, &b, &mut c2, 4);
        assert_close(&c1, &c2);
    }

    #[test]
    fn par_gemm_packed_trans_b_matches_serial() {
        let mut rng = SeedStream::new(8);
        let (m, k, n) = (128, 512, 128);
        let a = rand_vec(m * k, &mut rng);
        let bt = rand_vec(n * k, &mut rng);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        let spec = Gemm::new(m, k, n).transpose_b();
        gemm(spec, &a, &bt, &mut c1);
        par_gemm(spec, &a, &bt, &mut c2, 4);
        assert_close(&c1, &c2);
    }

    #[test]
    fn zeros_in_a_still_propagate_nan_from_b() {
        // Regression: the old kernels skipped `a == 0.0` entries, silently
        // dropping NaN/Inf contributions from B (0 * NaN must be NaN).
        let a = [0.0f32, 0.0];
        let b = [f32::NAN, 1.0, f32::INFINITY, 2.0];
        let mut c = [0.0f32; 2];
        gemm(Gemm::new(1, 2, 2), &a, &b, &mut c);
        // Column 0 sums 0*NaN + 0*inf = NaN; column 1 sees only finite values.
        assert!(c[0].is_nan(), "0 * NaN must propagate, got {}", c[0]);
        assert_eq!(c[1], 0.0);

        let at = [0.0f32, 0.0];
        let mut c = [0.0f32; 2];
        gemm(Gemm::new(1, 2, 2).transpose_a(), &at, &b, &mut c);
        assert!(c[0].is_nan(), "trans_a path must propagate NaN");
    }

    #[test]
    fn gemm_auto_respects_thread_budget() {
        let mut rng = SeedStream::new(4);
        let (m, k, n) = (48, 64, 52);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        crate::ops::pool::with_parallelism(1, || {
            gemm_auto(Gemm::new(m, k, n), &a, &b, &mut c1);
        });
        crate::ops::pool::with_parallelism(4, || {
            gemm_auto(Gemm::new(m, k, n), &a, &b, &mut c2);
        });
        assert_close(&c1, &c2);
    }

    #[test]
    #[should_panic(expected = "a too short")]
    fn short_input_panics() {
        let mut c = [0.0f32; 4];
        gemm(Gemm::new(2, 2, 2), &[1.0; 3], &[1.0; 4], &mut c);
    }
}
