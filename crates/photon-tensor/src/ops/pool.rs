//! A lazily-initialized, persistent worker pool for data-parallel kernels.
//!
//! Every compute kernel in the training hot path (GEMM, attention,
//! layernorm, …) funnels its parallelism through this module, so thread
//! creation happens **once per process** instead of once per kernel call
//! (the previous `crossbeam::thread::scope` design paid a spawn/join for
//! every GEMM).
//!
//! # Threading model
//!
//! The pool's size is resolved once, with the following precedence:
//!
//! 1. [`set_max_threads`] (wired to the CLI `--threads` flag; `1` = serial);
//! 2. the `PHOTON_THREADS` environment variable (`0` or `1` = serial);
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved size of `n` means the process uses at most `n` compute
//! threads: `n - 1` pool workers plus the submitting thread, which always
//! executes one chunk of every batch inline instead of sleeping.
//!
//! # Nested parallelism
//!
//! Coarse-grained parallel callers (DDP replica threads, sub-federation
//! nodes) wrap their work in [`with_parallelism`] to divide the global
//! thread budget instead of oversubscribing: a 8-thread budget split across
//! 4 replica threads gives each replica 2-way kernel parallelism. The
//! budget is thread-local, so concurrent replicas compose. Tasks that are
//! already running *on* a pool worker never fan out again
//! ([`effective_parallelism`] reports `1` there), which makes pool-waiting
//! deadlocks impossible by construction.
//!
//! # Determinism
//!
//! Work is split into chunks **before** dispatch and every chunk touches a
//! disjoint region of the output (callers enforce this via
//! `split_at_mut`-style partitioning), so results never depend on
//! scheduling order — only on the chunk count, which is itself a pure
//! function of [`effective_parallelism`]. Kernels that must reduce across
//! chunks (split-k GEMM, layernorm weight gradients) do so after the
//! barrier in deterministic chunk order.
#![allow(unsafe_code)]

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A unit of work submitted to [`run_tasks`]. The borrow may reference the
/// caller's stack: [`run_tasks`] does not return until every task has run.
pub type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

/// Explicit thread-count override (0 = unset). Highest precedence.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// `PHOTON_THREADS`, read once.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
/// The worker pool, spawned on first parallel dispatch.
static POOL: OnceLock<Option<Pool>> = OnceLock::new();

thread_local! {
    /// Set on pool worker threads; suppresses nested fan-out.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Thread-local parallelism budget (0 = unset, use the global max).
    static BUDGET: Cell<usize> = const { Cell::new(0) };
}

struct Job {
    task: Box<dyn FnOnce() + Send + 'static>,
    latch: Arc<Latch>,
}

struct Pool {
    tx: crossbeam::channel::Sender<Job>,
    workers: usize,
}

/// Counts outstanding tasks of one `run_tasks` batch; the submitting thread
/// blocks on it until every dispatched task has finished.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            self.done.wait(&mut remaining);
        }
    }
}

/// Overrides the maximum number of compute threads (CLI `--threads`).
///
/// Values are clamped to at least 1; `set_max_threads(1)` forces fully
/// serial execution. Takes precedence over `PHOTON_THREADS` and hardware
/// detection. Call this *before* the first parallel kernel if you need more
/// threads than the autodetected count — the worker pool is sized when
/// first used and never grows (later calls can still *lower* the effective
/// parallelism at any time).
pub fn set_max_threads(n: usize) {
    OVERRIDE.store(n.max(1), Ordering::SeqCst);
}

/// The resolved global thread budget: override > `PHOTON_THREADS` >
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn max_threads() -> usize {
    let over = OVERRIDE.load(Ordering::SeqCst);
    if over != 0 {
        return over;
    }
    let env = *ENV_THREADS.get_or_init(|| {
        std::env::var("PHOTON_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
    });
    match env {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The parallelism kernels should use *right now* on this thread:
/// the thread-local [`with_parallelism`] budget if one is set, otherwise
/// [`max_threads`]; always `1` on pool worker threads (no nested fan-out).
pub fn effective_parallelism() -> usize {
    if IS_WORKER.with(Cell::get) {
        return 1;
    }
    let budget = BUDGET.with(Cell::get);
    if budget != 0 {
        budget
    } else {
        max_threads()
    }
}

/// Runs `f` with this thread's parallelism budget set to `n` (clamped to at
/// least 1), restoring the previous budget afterwards — also on panic.
///
/// Used by coarse-grained parallel drivers (DDP replicas, sub-federation
/// nodes) to divide the global budget, and by tests/benches to pin kernel
/// parallelism regardless of the host machine.
pub fn with_parallelism<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let _restore = Restore(BUDGET.with(Cell::get));
    BUDGET.with(|b| b.set(n.max(1)));
    f()
}

/// Splits `0..n` into `parts` contiguous, balanced, non-empty ranges
/// (fewer if `n < parts`; empty if `n == 0`).
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Splits a flat `(rows, row_len)` buffer into one mutable chunk per range.
///
/// The ranges must be the contiguous ascending partition produced by
/// [`chunk_ranges`]; each returned slice covers `ranges[i].len() * row_len`
/// elements.
///
/// # Panics
/// Panics if the ranges are not contiguous ascending or overflow `buf`.
pub fn split_rows<'a, T>(
    buf: &'a mut [T],
    row_len: usize,
    ranges: &[Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut chunks = Vec::with_capacity(ranges.len());
    let mut rest = buf;
    let mut row = 0usize;
    for r in ranges {
        assert_eq!(r.start, row, "split_rows: ranges must be contiguous");
        let (chunk, tail) = rest.split_at_mut(r.len() * row_len);
        chunks.push(chunk);
        rest = tail;
        row = r.end;
    }
    chunks
}

fn pool() -> Option<&'static Pool> {
    POOL.get_or_init(|| {
        let threads = max_threads();
        if threads <= 1 {
            return None;
        }
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        for i in 0..threads - 1 {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("photon-worker-{i}"))
                .spawn(move || {
                    IS_WORKER.with(|w| w.set(true));
                    while let Ok(job) = rx.recv() {
                        if catch_unwind(AssertUnwindSafe(job.task)).is_err() {
                            job.latch.panicked.store(true, Ordering::SeqCst);
                        }
                        job.latch.count_down();
                    }
                })
                .expect("failed to spawn photon worker thread");
        }
        Some(Pool {
            tx,
            workers: threads - 1,
        })
    })
    .as_ref()
}

/// Number of persistent pool workers currently alive (0 before the first
/// parallel dispatch or when running serially). The total compute
/// parallelism is `pool_workers() + 1` once the pool exists.
pub fn pool_workers() -> usize {
    POOL.get().and_then(|p| p.as_ref()).map_or(0, |p| p.workers)
}

/// Executes a batch of independent tasks, blocking until all complete.
///
/// One task always runs inline on the calling thread; the rest are handed
/// to the persistent workers (or also run inline when the pool is disabled,
/// the batch has a single task, or the caller *is* a pool worker). Tasks
/// may borrow non-`'static` data: this function never returns — not even by
/// unwinding — before every task has finished, so the borrows cannot
/// outlive their owners.
///
/// # Panics
/// Panics if any task panicked (worker panics are captured and re-raised
/// here, after the barrier).
pub fn run_tasks(tasks: Vec<Task<'_>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    // Profile-only span (never a JSONL event): dispatch + barrier wait.
    let _dispatch = photon_trace::span(photon_trace::Phase::PoolDispatch).arg("tasks", n as u64);
    photon_trace::counter_add("pool.batches", 1);
    photon_trace::counter_add("pool.tasks", n as u64);
    let run_inline = n == 1 || IS_WORKER.with(Cell::get);
    let pool = if run_inline { None } else { pool() };
    let Some(pool) = pool else {
        for task in tasks {
            task();
        }
        return;
    };

    let latch = Arc::new(Latch::new(n - 1));
    let mut tasks = tasks.into_iter();
    let inline_task = tasks.next().expect("n >= 1");

    // Block until every dispatched task is done, even if the inline task
    // below unwinds: the guard's Drop runs during unwinding, so no worker
    // can still be touching caller-owned data once control leaves this
    // function. This is the invariant that makes the lifetime erasure in
    // the dispatch loop sound.
    struct WaitGuard<'a>(&'a Latch);
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            self.0.wait();
        }
    }
    let guard = WaitGuard(&latch);

    for task in tasks {
        // SAFETY: `Box<dyn FnOnce + Send + 'a>` and the `'static` form have
        // identical layout; the erased lifetime is protected by the
        // wait-before-return invariant documented on `WaitGuard` — workers
        // drop the task (and with it every borrow) before counting down the
        // latch, and we do not leave this function until the latch opens.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        pool.tx
            .send(Job {
                task,
                latch: Arc::clone(&latch),
            })
            .unwrap_or_else(|_| panic!("photon worker pool disconnected"));
    }
    inline_task();
    drop(guard);

    if latch.panicked.load(Ordering::SeqCst) {
        panic!("photon worker task panicked");
    }
}

/// Chunked parallel-for over `0..n` with a minimum chunk size of `grain`:
/// `body` receives disjoint index ranges, at most [`effective_parallelism`]
/// of them, each at least `grain` long (except possibly the last split).
///
/// `body` only gets shared access — use it for kernels whose writes go
/// through pre-split chunks captured elsewhere, or gather results with
/// [`run_tasks`] directly.
pub fn parallel_for(n: usize, grain: usize, body: impl Fn(Range<usize>) + Sync) {
    let parts = effective_parallelism().min(n.div_ceil(grain.max(1))).max(1);
    if parts <= 1 {
        body(0..n);
        return;
    }
    let tasks: Vec<Task> = chunk_ranges(n, parts)
        .into_iter()
        .map(|r| {
            let body = &body;
            Box::new(move || body(r)) as Task
        })
        .collect();
    run_tasks(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_and_balance() {
        for n in [0usize, 1, 5, 16, 17] {
            for parts in 1..6 {
                let ranges = chunk_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                if n > 0 {
                    let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(hi - lo <= 1, "unbalanced: {lens:?}");
                }
            }
        }
    }

    #[test]
    fn run_tasks_sees_every_task() {
        let mut data = vec![0u32; 64];
        let ranges = chunk_ranges(data.len(), 8);
        let chunks = split_rows(&mut data, 1, &ranges);
        let tasks: Vec<Task> = chunks
            .into_iter()
            .zip(&ranges)
            .map(|(chunk, r)| {
                let start = r.start;
                Box::new(move || {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (start + i) as u32;
                    }
                }) as Task
            })
            .collect();
        run_tasks(tasks);
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn with_parallelism_scopes_and_restores() {
        let outer = effective_parallelism();
        with_parallelism(3, || {
            assert_eq!(effective_parallelism(), 3);
            with_parallelism(1, || assert_eq!(effective_parallelism(), 1));
            assert_eq!(effective_parallelism(), 3);
        });
        assert_eq!(effective_parallelism(), outer);
    }

    #[test]
    fn parallel_for_covers_all_indices() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        with_parallelism(4, || {
            parallel_for(hits.len(), 8, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn task_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_parallelism(4, || {
                let tasks: Vec<Task> = (0..4)
                    .map(|i| Box::new(move || assert!(i != 2, "boom")) as Task)
                    .collect();
                run_tasks(tasks);
            });
        });
        assert!(caught.is_err());
    }
}
