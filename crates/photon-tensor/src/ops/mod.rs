//! Hot-path numeric kernels operating on raw `f32` slices.
//!
//! These free functions are the compute substrate for the neural-network
//! layers in `photon-nn`. They deliberately take slices rather than
//! [`crate::Tensor`] so layers can run over pre-allocated, reused activation
//! buffers with zero per-step allocation.

mod elementwise;
mod gemm;
pub mod pool;
mod reduce;

pub use elementwise::{
    add_bias_rows, add_inplace, axpy, clip_inplace, copy_from, lerp_inplace, mul_inplace, scale,
    sub_inplace,
};
pub use gemm::{gemm, gemm_auto, par_gemm, Gemm};
pub use reduce::{argmax, dot, l2_norm, max_abs, max_abs_diff, mean, sum};
