/// In-place element-wise addition: `dst[i] += src[i]`.
///
/// # Panics
/// Panics if lengths differ.
pub fn add_inplace(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_inplace length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// In-place element-wise subtraction: `dst[i] -= src[i]`.
///
/// # Panics
/// Panics if lengths differ.
pub fn sub_inplace(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "sub_inplace length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d -= s;
    }
}

/// In-place element-wise multiplication: `dst[i] *= src[i]`.
///
/// # Panics
/// Panics if lengths differ.
pub fn mul_inplace(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "mul_inplace length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d *= s;
    }
}

/// In-place scaling: `dst[i] *= alpha`.
pub fn scale(alpha: f32, dst: &mut [f32]) {
    for d in dst.iter_mut() {
        *d *= alpha;
    }
}

/// `dst[i] += alpha * src[i]` (BLAS `saxpy`).
///
/// # Panics
/// Panics if lengths differ.
pub fn axpy(alpha: f32, src: &[f32], dst: &mut [f32]) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d += alpha * s;
    }
}

/// Linear interpolation towards `src`: `dst = (1 - t) * dst + t * src`.
///
/// Used by momentum-style server optimizers.
///
/// # Panics
/// Panics if lengths differ.
pub fn lerp_inplace(dst: &mut [f32], src: &[f32], t: f32) {
    assert_eq!(dst.len(), src.len(), "lerp_inplace length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d += t * (s - *d);
    }
}

/// Copies `src` into `dst`.
///
/// # Panics
/// Panics if lengths differ.
pub fn copy_from(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "copy_from length mismatch");
    dst.copy_from_slice(src);
}

/// Clamps every element to `[-bound, bound]`.
///
/// # Panics
/// Panics if `bound` is negative or NaN.
pub fn clip_inplace(dst: &mut [f32], bound: f32) {
    assert!(bound >= 0.0, "clip bound must be non-negative");
    for d in dst.iter_mut() {
        *d = d.clamp(-bound, bound);
    }
}

/// Adds a bias row vector to every row of a `(rows, cols)` matrix.
///
/// # Panics
/// Panics if `mat.len() != rows * cols` or `bias.len() != cols`.
pub fn add_bias_rows(mat: &mut [f32], bias: &[f32], rows: usize, cols: usize) {
    assert_eq!(mat.len(), rows * cols, "add_bias_rows matrix size");
    assert_eq!(bias.len(), cols, "add_bias_rows bias size");
    for r in 0..rows {
        let row = &mut mat[r * cols..(r + 1) * cols];
        for (m, b) in row.iter_mut().zip(bias) {
            *m += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut d = vec![1.0, 2.0, 3.0];
        add_inplace(&mut d, &[1.0, 1.0, 1.0]);
        assert_eq!(d, vec![2.0, 3.0, 4.0]);
        sub_inplace(&mut d, &[1.0, 1.0, 1.0]);
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
        mul_inplace(&mut d, &[2.0, 2.0, 2.0]);
        assert_eq!(d, vec![2.0, 4.0, 6.0]);
        scale(0.5, &mut d);
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
        axpy(10.0, &[1.0, 0.0, 1.0], &mut d);
        assert_eq!(d, vec![11.0, 2.0, 13.0]);
    }

    #[test]
    fn lerp_endpoints() {
        let mut d = vec![0.0, 10.0];
        lerp_inplace(&mut d, &[10.0, 0.0], 0.0);
        assert_eq!(d, vec![0.0, 10.0]);
        lerp_inplace(&mut d, &[10.0, 0.0], 1.0);
        assert_eq!(d, vec![10.0, 0.0]);
        lerp_inplace(&mut d, &[0.0, 10.0], 0.5);
        assert_eq!(d, vec![5.0, 5.0]);
    }

    #[test]
    fn clip_bounds() {
        let mut d = vec![-5.0, -0.5, 0.5, 5.0];
        clip_inplace(&mut d, 1.0);
        assert_eq!(d, vec![-1.0, -0.5, 0.5, 1.0]);
    }

    #[test]
    fn bias_rows() {
        let mut m = vec![0.0; 6];
        add_bias_rows(&mut m, &[1.0, 2.0, 3.0], 2, 3);
        assert_eq!(m, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut d = vec![0.0; 2];
        add_inplace(&mut d, &[0.0; 3]);
    }
}
