use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic, splittable random stream used across the workspace.
///
/// Every stochastic component of Photon-RS (parameter init, data generation,
/// client sampling, DP noise, secure-aggregation masks) draws from a
/// `SeedStream` so whole experiments are bit-reproducible from a single root
/// seed. Streams can be [`split`](SeedStream::split) to derive independent
/// child streams, mirroring how a federated deployment hands each client an
/// independent seed.
///
/// ```
/// use photon_tensor::SeedStream;
/// let mut root = SeedStream::new(7);
/// let mut a = root.split("client-0");
/// let mut b = root.split("client-1");
/// assert_ne!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SeedStream {
    rng: ChaCha8Rng,
}

impl SeedStream {
    /// Creates a stream from a root seed.
    pub fn new(seed: u64) -> Self {
        SeedStream {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream keyed by a label.
    ///
    /// The derivation hashes the label together with fresh entropy from this
    /// stream, so the same label produces different children when called
    /// twice (call order matters, keeping streams independent).
    pub fn split(&mut self, label: &str) -> SeedStream {
        let mut h = fnv1a(label.as_bytes());
        h ^= self.rng.next_u64().rotate_left(17);
        SeedStream::new(h)
    }

    /// Derives a child stream keyed by a label *without* advancing this
    /// stream: the same label always yields the same child. This is the
    /// right tool for round-keyed streams (client data order, cohort
    /// sampling, DP noise) that must come out identical when a run is
    /// restored from a checkpoint and replayed from an earlier round.
    pub fn fork(&self, label: &str) -> SeedStream {
        let mut h = fnv1a(label.as_bytes());
        let mut probe = self.rng.clone();
        h ^= probe.next_u64().rotate_left(17);
        SeedStream::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.rng.gen::<f32>()
    }

    /// Uniform sample in `[0, 1)` with f64 precision.
    pub fn next_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below requires n > 0");
        self.rng.gen_range(0..n)
    }

    /// Standard normal sample via Box-Muller.
    pub fn next_normal(&mut self) -> f32 {
        // Box-Muller: avoid u1 == 0 which would yield -inf.
        let u1 = (1.0 - self.rng.gen::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (uniform without replacement).
    ///
    /// Small populations use a full Fisher-Yates shuffle (the historical
    /// draw, kept so seeded runs stay bit-identical); populations above
    /// [`SAMPLE_DENSE_MAX`] switch to Floyd's algorithm, which draws `k`
    /// indices in O(k) without materializing `0..n` — the path that lets a
    /// cohort sampler pull thousands from 10⁵+ registered clients.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        if n <= SAMPLE_DENSE_MAX {
            let mut idx: Vec<usize> = (0..n).collect();
            self.shuffle(&mut idx);
            idx.truncate(k);
            idx.sort_unstable();
            return idx;
        }
        self.sample_indices_sparse(n, k)
    }

    /// Floyd's sampling: `k` distinct uniform indices from `0..n` using
    /// O(k) memory and O(k log k) time, never allocating the population.
    fn sample_indices_sparse(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.next_below(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

/// Largest population for which [`SeedStream::sample_indices`] keeps the
/// legacy dense shuffle (bit-compatible with existing seeded runs); larger
/// draws use the sparse O(k) path.
pub const SAMPLE_DENSE_MAX: usize = 4096;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fills `buf` with samples from `N(mean, std^2)`.
pub fn normal_fill(buf: &mut [f32], mean: f32, std: f32, rng: &mut SeedStream) {
    for v in buf.iter_mut() {
        *v = mean + std * rng.next_normal();
    }
}

/// Fills `buf` with samples from a truncated normal: values are re-drawn
/// until they fall within `mean ± 2*std` (standard LLM embedding init).
pub fn trunc_normal_fill(buf: &mut [f32], mean: f32, std: f32, rng: &mut SeedStream) {
    for v in buf.iter_mut() {
        loop {
            let x = rng.next_normal();
            if x.abs() <= 2.0 {
                *v = mean + std * x;
                break;
            }
        }
    }
}

/// Fills `buf` with uniform samples from `[lo, hi)`.
pub fn uniform_fill(buf: &mut [f32], lo: f32, hi: f32, rng: &mut SeedStream) {
    let span = hi - lo;
    for v in buf.iter_mut() {
        *v = lo + span * rng.next_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_fill_has_correct_moments() {
        let mut rng = SeedStream::new(0);
        let mut buf = vec![0.0f32; 20_000];
        normal_fill(&mut buf, 1.0, 2.0, &mut rng);
        let mean = buf.iter().sum::<f32>() / buf.len() as f32;
        let var = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / buf.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn trunc_normal_bounded() {
        let mut rng = SeedStream::new(3);
        let mut buf = vec![0.0f32; 5000];
        trunc_normal_fill(&mut buf, 0.0, 0.02, &mut rng);
        assert!(buf.iter().all(|v| v.abs() <= 0.04 + 1e-6));
    }

    #[test]
    fn uniform_fill_in_range() {
        let mut rng = SeedStream::new(9);
        let mut buf = vec![0.0f32; 1000];
        uniform_fill(&mut buf, -0.5, 0.5, &mut rng);
        assert!(buf.iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = SeedStream::new(11);
        let mut a = root.split("a");
        let mut b = root.split("a"); // same label, later call -> different stream
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_does_not_advance_and_is_stable() {
        let root = SeedStream::new(11);
        let mut a = root.fork("round-3");
        let mut b = root.fork("round-3"); // same label -> same child
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = root.fork("round-4");
        assert_ne!(a.next_u64(), c.next_u64());
        // fork agrees with what a single split from the same state yields.
        let mut root2 = SeedStream::new(11);
        let mut d = root2.split("round-3");
        assert_eq!(root.fork("round-3").next_u64(), d.next_u64());
    }

    #[test]
    fn sample_indices_distinct_and_sorted() {
        let mut rng = SeedStream::new(5);
        for _ in 0..20 {
            let s = rng.sample_indices(10, 4);
            assert_eq!(s.len(), 4);
            let mut d = s.clone();
            d.dedup();
            assert_eq!(d.len(), 4);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(rng.sample_indices(3, 3), vec![0, 1, 2]);
    }

    #[test]
    fn sparse_sampling_is_uniform_distinct_and_deterministic() {
        let n = SAMPLE_DENSE_MAX + 10_000;
        let mut rng = SeedStream::new(21);
        let s = rng.sample_indices(n, 1_000);
        assert_eq!(s.len(), 1_000);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
        assert!(s.iter().all(|&i| i < n));
        // Deterministic given the stream state.
        let again = SeedStream::new(21).sample_indices(n, 1_000);
        assert_eq!(s, again);
        // Rough uniformity: the sample mean of 1k draws from 0..n sits
        // near n/2 (tolerance ~4 sigma of the sample mean).
        let mean = s.iter().sum::<usize>() as f64 / s.len() as f64;
        assert!(
            (mean - n as f64 / 2.0).abs() < n as f64 / 20.0,
            "mean {mean}"
        );
        // Full draw still yields every index.
        let full = SeedStream::new(3).sample_indices_sparse(5_000, 5_000);
        assert_eq!(full, (0..5_000).collect::<Vec<_>>());
    }

    #[test]
    fn dense_sampling_path_is_unchanged_below_threshold() {
        // The dense draw must remain byte-for-byte the historical shuffle:
        // pin the exact output for a fixed seed so a regression that
        // switches small populations onto the sparse path (breaking every
        // seeded cohort in existing runs) is caught here.
        let s = SeedStream::new(5).sample_indices(10, 4);
        let mut rng = SeedStream::new(5);
        let mut idx: Vec<usize> = (0..10).collect();
        rng.shuffle(&mut idx);
        idx.truncate(4);
        idx.sort_unstable();
        assert_eq!(s, idx);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeedStream::new(100);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
