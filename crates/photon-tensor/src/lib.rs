//! # photon-tensor
//!
//! A small, dependency-light CPU tensor library underpinning the Photon-RS
//! federated LLM pre-training stack.
//!
//! The design philosophy follows high-performance single-file trainers such
//! as llm.c: tensors are dense, row-major, `f32` buffers; the hot paths are
//! free functions over slices (so layers can operate on pre-allocated
//! activation buffers without bookkeeping overhead); and [`Tensor`] is a thin
//! owning wrapper used for parameters, gradients and serialization.
//!
//! ## Quick example
//!
//! ```
//! use photon_tensor::{Tensor, ops};
//!
//! // (2x3) * (3x2) = (2x2)
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
//! let b = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]).unwrap();
//! let mut c = Tensor::zeros(vec![2, 2]);
//! ops::gemm(ops::Gemm::new(2, 3, 2), a.data(), b.data(), c.data_mut());
//! assert_eq!(c.data(), &[4., 5., 10., 11.]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod backend;
pub mod dtype;
mod error;
mod init;
pub mod ops;
mod ser;
mod shape;
mod tensor;

pub use dtype::{bf16_from_f32, bf16_to_f32, Dtype};
pub use error::TensorError;
pub use init::{normal_fill, trunc_normal_fill, uniform_fill, SeedStream, SAMPLE_DENSE_MAX};
pub use ser::{
    read_bf16_slice, read_f32_slice, read_tensor, write_bf16_slice, write_f32_slice, write_tensor,
};
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
