//! Compact little-endian binary (de)serialization for float buffers and
//! tensors. This is the payload format used by the Photon `Link` wire
//! protocol (`photon-comms`) and by checkpoint files (`photon-core`).

use crate::dtype::{bf16_from_f32, bf16_to_f32};
use crate::{Result, Tensor, TensorError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Appends a length-prefixed `f32` slice to `out` (u64 count + LE floats).
pub fn write_f32_slice(out: &mut BytesMut, xs: &[f32]) {
    out.put_u64_le(xs.len() as u64);
    for &v in xs {
        out.put_f32_le(v);
    }
}

/// Reads a length-prefixed `f32` slice written by [`write_f32_slice`].
///
/// # Errors
/// Returns [`TensorError::Deserialize`] if the buffer is truncated or the
/// declared length is implausibly large for the remaining bytes.
pub fn read_f32_slice(buf: &mut Bytes) -> Result<Vec<f32>> {
    if buf.remaining() < 8 {
        return Err(TensorError::Deserialize("missing f32 slice length".into()));
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n.saturating_mul(4) {
        return Err(TensorError::Deserialize(format!(
            "f32 slice declares {n} elements but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_f32_le());
    }
    Ok(out)
}

/// Appends a length-prefixed slice in bf16 storage (u64 count + LE u16
/// bf16 bits, round-to-nearest-even). Half the bytes of
/// [`write_f32_slice`]; lossy (see [`crate::dtype`]).
pub fn write_bf16_slice(out: &mut BytesMut, xs: &[f32]) {
    out.put_u64_le(xs.len() as u64);
    for &v in xs {
        out.put_u16_le(bf16_from_f32(v));
    }
}

/// Reads a length-prefixed bf16 slice written by [`write_bf16_slice`],
/// widening to f32 (exact).
///
/// # Errors
/// Returns [`TensorError::Deserialize`] if the buffer is truncated or the
/// declared length is implausibly large for the remaining bytes.
pub fn read_bf16_slice(buf: &mut Bytes) -> Result<Vec<f32>> {
    if buf.remaining() < 8 {
        return Err(TensorError::Deserialize("missing bf16 slice length".into()));
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n.saturating_mul(2) {
        return Err(TensorError::Deserialize(format!(
            "bf16 slice declares {n} elements but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(bf16_to_f32(buf.get_u16_le()));
    }
    Ok(out)
}

/// Appends a tensor (rank, dims, then data) to `out`.
pub fn write_tensor(out: &mut BytesMut, t: &Tensor) {
    out.put_u32_le(t.shape().rank() as u32);
    for &d in t.shape().dims() {
        out.put_u64_le(d as u64);
    }
    write_f32_slice(out, t.data());
}

/// Reads a tensor written by [`write_tensor`].
///
/// # Errors
/// Returns [`TensorError::Deserialize`] on truncation, or
/// [`TensorError::ShapeDataMismatch`] if the payload length disagrees with
/// the declared shape.
pub fn read_tensor(buf: &mut Bytes) -> Result<Tensor> {
    if buf.remaining() < 4 {
        return Err(TensorError::Deserialize("missing tensor rank".into()));
    }
    let rank = buf.get_u32_le() as usize;
    if rank > 8 {
        return Err(TensorError::Deserialize(format!(
            "implausible tensor rank {rank}"
        )));
    }
    if buf.remaining() < rank * 8 {
        return Err(TensorError::Deserialize("missing tensor dims".into()));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u64_le() as usize);
    }
    let data = read_f32_slice(buf)?;
    Tensor::from_vec(dims, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedStream;

    #[test]
    fn slice_roundtrip() {
        let xs = vec![1.0f32, -2.5, 3.25, f32::MIN, f32::MAX];
        let mut out = BytesMut::new();
        write_f32_slice(&mut out, &xs);
        let mut buf = out.freeze();
        assert_eq!(read_f32_slice(&mut buf).unwrap(), xs);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn tensor_roundtrip() {
        let mut rng = SeedStream::new(7);
        let t = Tensor::randn(vec![3, 5, 2], 0.5, &mut rng);
        let mut out = BytesMut::new();
        write_tensor(&mut out, &t);
        let mut buf = out.freeze();
        let back = read_tensor(&mut buf).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn truncated_buffers_error() {
        let mut out = BytesMut::new();
        write_f32_slice(&mut out, &[1.0, 2.0, 3.0]);
        let full = out.freeze();
        for cut in [0, 4, 11, full.len() - 1] {
            let mut buf = full.slice(..cut);
            assert!(read_f32_slice(&mut buf).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn implausible_rank_rejected() {
        let mut out = BytesMut::new();
        out.put_u32_le(1000);
        let mut buf = out.freeze();
        assert!(read_tensor(&mut buf).is_err());
    }

    #[test]
    fn bf16_slice_roundtrip_is_half_size() {
        let xs = vec![1.0f32, -2.5, 3.25, 0.0, -1024.0];
        let mut f32_buf = BytesMut::new();
        write_f32_slice(&mut f32_buf, &xs);
        let mut bf_buf = BytesMut::new();
        write_bf16_slice(&mut bf_buf, &xs);
        assert_eq!(bf_buf.len() - 8, (f32_buf.len() - 8) / 2);
        let mut buf = bf_buf.freeze();
        // These values are exactly representable in bf16.
        assert_eq!(read_bf16_slice(&mut buf).unwrap(), xs);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bf16_truncated_buffers_error() {
        let mut out = BytesMut::new();
        write_bf16_slice(&mut out, &[1.0, 2.0, 3.0]);
        let full = out.freeze();
        for cut in [0, 4, 9, full.len() - 1] {
            let mut buf = full.slice(..cut);
            assert!(read_bf16_slice(&mut buf).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn empty_slice_roundtrip() {
        let mut out = BytesMut::new();
        write_f32_slice(&mut out, &[]);
        let mut buf = out.freeze();
        assert!(read_f32_slice(&mut buf).unwrap().is_empty());
    }
}
