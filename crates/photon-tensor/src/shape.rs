use serde::{Deserialize, Serialize};

/// A dense, row-major tensor shape.
///
/// `Shape` is a thin wrapper over a dimension list providing element-count
/// and stride helpers. It is cheap to clone and implements the common
/// comparison traits so it can be used directly in error reporting and maps.
///
/// ```
/// use photon_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Returns the dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements. The empty shape has one element (a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Returns the size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        let s = Shape::new(vec![4, 2, 3]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![6, 3, 1]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 2);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.numel(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::new(vec![]).to_string(), "[]");
    }

    #[test]
    fn zero_dim_gives_zero_numel() {
        assert_eq!(Shape::new(vec![3, 0, 2]).numel(), 0);
    }
}
