//! Storage dtypes and software bf16 conversion.
//!
//! Photon keeps **f32 master weights and f32 accumulation** everywhere —
//! [`Dtype`] only selects the *storage* precision for parameters at rest
//! (checkpoints) and update vectors on the wire. bf16 keeps f32's 8-bit
//! exponent (same dynamic range, no overflow on conversion) and truncates
//! the mantissa to 7 bits, which is the TorchTitan-style precision policy:
//! convergence is governed by the f32 accumulation path, storage halves.
//!
//! Conversion is software-only (no `f16c`/`bf16` hardware requirement):
//! round-to-nearest-even on encode, exact widening on decode. NaNs are
//! quieted (payload truncated, never collapsed to Inf); infinities and
//! signed zeros round-trip exactly.

use serde::{Deserialize, Serialize};

/// Storage precision for parameters at rest and updates on the wire.
///
/// Compute precision is always f32; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Dtype {
    /// 4-byte IEEE-754 single precision (the default; bit-exact storage).
    #[default]
    F32,
    /// 2-byte bfloat16: f32 with the mantissa truncated to 7 bits
    /// (round-to-nearest-even). Halves storage and wire bytes.
    Bf16,
}

impl Dtype {
    /// Parses a dtype name as accepted by config files and `--dtype`.
    pub fn parse(s: &str) -> Option<Dtype> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f32" | "fp32" | "float32" => Some(Dtype::F32),
            "bf16" | "bfloat16" => Some(Dtype::Bf16),
            _ => None,
        }
    }

    /// Short stable name (`"f32"` / `"bf16"`), used for metrics and docs.
    pub fn as_str(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::Bf16 => "bf16",
        }
    }

    /// Bytes per parameter in this storage precision.
    pub fn bytes_per_param(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::Bf16 => 2,
        }
    }

    /// Stable identifier for trace args (0 = f32, 1 = bf16).
    pub fn id(self) -> u64 {
        match self {
            Dtype::F32 => 0,
            Dtype::Bf16 => 1,
        }
    }
}

/// Converts an `f32` to bf16 bits with round-to-nearest-even.
///
/// NaN payloads are truncated but quieted (bit 6 of the bf16 mantissa is
/// forced) so a NaN can never round to Inf; all other values round to the
/// nearest representable bf16, ties to even.
pub fn bf16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep sign + exponent, truncate the payload, force a quiet bit so
        // the result is still NaN.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round-to-nearest-even: add 0x7fff plus the LSB of the kept mantissa.
    let rounded = bits.wrapping_add(0x7fff + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

/// Widens bf16 bits back to `f32` (exact — bf16 is a prefix of f32).
pub fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Encodes a slice through bf16 and back, yielding what a decoder on the
/// other end of the wire (or a checkpoint restore) will see.
pub fn bf16_round_trip(xs: &[f32]) -> Vec<f32> {
    xs.iter().map(|&x| bf16_to_f32(bf16_from_f32(x))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        let huge = 2.0f32.powi(120); // power of two: exact at any exponent
        for &x in &[0.0f32, -0.0, 1.0, -1.0, 0.5, -2.0, 256.0, huge, -huge] {
            let y = bf16_to_f32(bf16_from_f32(x));
            assert_eq!(x.to_bits(), y.to_bits(), "{x} should be exact in bf16");
        }
    }

    #[test]
    fn infinities_and_nan_preserved() {
        assert_eq!(bf16_to_f32(bf16_from_f32(f32::INFINITY)), f32::INFINITY);
        assert_eq!(
            bf16_to_f32(bf16_from_f32(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        assert!(bf16_to_f32(bf16_from_f32(f32::NAN)).is_nan());
        // A signalling-ish NaN with a small payload must stay NaN, not
        // truncate to Inf.
        let snan = f32::from_bits(0x7f80_0001);
        assert!(bf16_to_f32(bf16_from_f32(snan)).is_nan());
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1.0 + 2^-8 sits exactly between 1.0 and the next bf16 (1.0078125);
        // nearest-even rounds down to 1.0 (even mantissa).
        let tie = f32::from_bits(0x3f80_8000);
        assert_eq!(bf16_to_f32(bf16_from_f32(tie)), 1.0);
        // Just above the tie rounds up.
        let above = f32::from_bits(0x3f80_8001);
        assert_eq!(
            bf16_to_f32(bf16_from_f32(above)),
            f32::from_bits(0x3f81_0000)
        );
    }

    #[test]
    fn relative_error_bounded() {
        // bf16 has 8 mantissa bits of precision (implicit leading 1), so
        // relative error after RNE is at most 2^-8.
        let mut x = 1e-30f32;
        while x < 1e30 {
            let y = bf16_to_f32(bf16_from_f32(x));
            let rel = ((y - x) / x).abs();
            assert!(rel <= 1.0 / 256.0, "rel err {rel} at {x}");
            x *= 3.7;
        }
    }
}
