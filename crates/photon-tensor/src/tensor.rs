use crate::{Result, SeedStream, Shape, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major, owning `f32` tensor.
///
/// `Tensor` is used for parameters, gradients, optimizer state and anything
/// that crosses a serialization boundary. Hot-path math operates on the raw
/// slices returned by [`Tensor::data`] / [`Tensor::data_mut`] via the free
/// functions in [`crate::ops`].
///
/// ```
/// use photon_tensor::Tensor;
/// let t = Tensor::zeros(vec![2, 4]);
/// assert_eq!(t.numel(), 8);
/// assert_eq!(t.shape().dims(), &[2, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the element count implied by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor with entries drawn from `N(0, std^2)`.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut SeedStream) -> Self {
        let mut t = Tensor::zeros(shape);
        crate::normal_fill(t.data_mut(), 0.0, std, rng);
        t
    }

    /// Creates a tensor with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut SeedStream) -> Self {
        let mut t = Tensor::zeros(shape);
        crate::uniform_fill(t.data_mut(), lo, hi, rng);
        t
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidReshape`] if element counts differ.
    pub fn reshape(&mut self, shape: impl Into<Shape>) -> Result<()> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::InvalidReshape {
                numel: self.data.len(),
                requested: shape.numel(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Sets every element to zero (used to reset gradient buffers).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Element at a 2-D index. Convenience for tests and small models.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2 or the index is out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.shape.rank(), 2, "at2 requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        self.data[r * cols + c]
    }

    /// In-place element-wise addition of another tensor.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        crate::ops::add_inplace(&mut self.data, &other.data);
        Ok(())
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy_assign(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other)?;
        crate::ops::axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// In-place scaling: `self *= alpha`.
    pub fn scale_assign(&mut self, alpha: f32) {
        crate::ops::scale(alpha, &mut self.data);
    }

    /// L2 norm of the tensor viewed as a flat vector.
    pub fn l2_norm(&self) -> f32 {
        crate::ops::l2_norm(&self.data)
    }

    fn check_same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        Ok(())
    }
}

impl Default for Tensor {
    /// The default tensor is a scalar zero.
    fn default() -> Self {
        Tensor::zeros(vec![1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::full(vec![2, 3], 1.5);
        assert_eq!(t.numel(), 6);
        assert!(t.data().iter().all(|&v| v == 1.5));
        assert_eq!(t.at2(1, 2), 1.5);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        t.reshape(vec![3, 2]).unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.at2(2, 1), 5.0);
        assert!(t.reshape(vec![7]).is_err());
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Tensor::from_vec(vec![3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![1., 1., 1.]).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[2., 3., 4.]);
        a.axpy_assign(2.0, &b).unwrap();
        assert_eq!(a.data(), &[4., 5., 6.]);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[2., 2.5, 3.]);
        let c = Tensor::zeros(vec![2]);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = SeedStream::new(42);
        let mut r2 = SeedStream::new(42);
        let a = Tensor::randn(vec![16], 1.0, &mut r1);
        let b = Tensor::randn(vec![16], 1.0, &mut r2);
        assert_eq!(a, b);
        let mut r3 = SeedStream::new(43);
        let c = Tensor::randn(vec![16], 1.0, &mut r3);
        assert_ne!(a, c);
    }

    #[test]
    fn fill_zero_resets() {
        let mut rng = SeedStream::new(1);
        let mut t = Tensor::randn(vec![8], 1.0, &mut rng);
        t.fill_zero();
        assert!(t.data().iter().all(|&v| v == 0.0));
    }
}
