//! Pluggable compute backends: a scalar reference implementation and a
//! SIMD microkernel path, selected once at runtime.
//!
//! Every hot kernel in the stack (GEMM in all transpose layouts, the
//! attention dot/axpy primitives, layernorm, GELU, residual adds and the
//! cross-entropy softmax) routes through the [`Backend`] trait, so the
//! persistent worker pool in [`crate::ops::pool`] composes with either
//! implementation: the pool decides *how work is split*, the backend
//! decides *how each chunk is computed*.
//!
//! ## Selection
//!
//! The active backend is resolved once per process, in priority order:
//!
//! 1. an explicit [`set_backend`] call (the CLI `--backend` flag);
//! 2. the `PHOTON_BACKEND` environment variable (`scalar` or `simd`);
//! 3. CPU feature detection: AVX2+FMA on x86-64
//!    (`is_x86_feature_detected!`), NEON on aarch64 (baseline), otherwise
//!    scalar.
//!
//! Requesting `simd` on a host without the required features falls back to
//! scalar — runtime dispatch never regresses a host that cannot vectorize.
//!
//! ## Determinism contract
//!
//! Results are bit-identical across runs *within* a fixed backend (kernels
//! are pure functions of their inputs and the pool chunk count). Across
//! backends only tolerance-bounded parity holds: the SIMD path reassociates
//! reductions (8-wide accumulator trees) and uses a polynomial `exp`, so
//! replay comparisons must pin `PHOTON_BACKEND`.

use crate::ops::Gemm;
use std::sync::atomic::{AtomicU8, Ordering};

mod scalar;
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
mod simd;

pub use scalar::ScalarBackend;
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
pub use simd::SimdBackend;

/// A compute backend: the set of inner-loop kernels everything above the
/// worker pool dispatches through.
///
/// GEMM kernels accumulate `C += alpha * op(A) op(B)` — the caller applies
/// `beta` (see `ops::gemm`) and decides packing/splitting. Row kernels
/// operate on one logical row so pool chunking stays in the caller.
pub trait Backend: Send + Sync {
    /// Short stable name (`"scalar"` / `"simd"`), used for trace tags and
    /// metrics attribution.
    fn name(&self) -> &'static str;

    /// `C += alpha * A B` with row-major `A: (m, k)`, `B: (k, n)`.
    fn gemm_nn(&self, spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]);

    /// `C += alpha * A B^T` with physical `B: (n, k)` (each output is a dot
    /// of two contiguous rows). Large problems are repacked to `gemm_nn` by
    /// the caller; this path handles the small/unpacked cases.
    fn gemm_nt(&self, spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]);

    /// `C += alpha * A^T B` with physical `A: (k, m)`, `B: (k, n)`.
    fn gemm_tn(&self, spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]);

    /// `C += alpha * A^T B^T` for logical rows `i0..i0 + rows`, indexing the
    /// full physical buffers absolutely (the row window cannot be expressed
    /// as a sub-slice of `a`). Rare outside tests.
    fn gemm_tt_rows(
        &self,
        spec: Gemm,
        i0: usize,
        rows: usize,
        a: &[f32],
        b: &[f32],
        c_rows: &mut [f32],
    );

    /// Dot product with single-precision accumulation (the attention q·k
    /// inner product; for the f64-accumulated reduction see
    /// [`crate::ops::dot`]).
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// `dst[i] += alpha * src[i]`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn axpy(&self, alpha: f32, src: &[f32], dst: &mut [f32]);

    /// Element-wise `out[i] = a[i] + b[i]` (the residual connection).
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn add(&self, out: &mut [f32], a: &[f32], b: &[f32]);

    /// GELU forward (tanh approximation) over a chunk.
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn gelu(&self, out: &mut [f32], inp: &[f32]);

    /// GELU backward over a chunk: `dinp[i] += gelu'(inp[i]) * dout[i]`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn gelu_grad(&self, dinp: &mut [f32], inp: &[f32], dout: &[f32]);

    /// LayerNorm over one row (`eps = 1e-5`): writes the normalized row and
    /// returns `(mean, rstd)` for the backward pass.
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn layernorm_row(&self, out: &mut [f32], x: &[f32], weight: &[f32], bias: &[f32])
        -> (f32, f32);

    /// LayerNorm backward over one row. Accumulates into `dinp_row`,
    /// `dweight` and `dbias` (callers hand per-chunk partial buffers for the
    /// latter two).
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[allow(clippy::too_many_arguments)]
    fn layernorm_grad_row(
        &self,
        dinp_row: &mut [f32],
        dweight: &mut [f32],
        dbias: &mut [f32],
        dout_row: &[f32],
        x: &[f32],
        weight: &[f32],
        mean: f32,
        rstd: f32,
    );

    /// Numerically-stable softmax over one row:
    /// `probs[j] = exp(logits[j] - max) / sum`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn softmax_row(&self, probs: &mut [f32], logits: &[f32]);
}

/// Which backend implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Portable scalar reference kernels.
    Scalar,
    /// 8-wide f32 FMA register tiles (AVX2+FMA on x86-64, NEON on aarch64).
    Simd,
}

impl BackendKind {
    /// Parses a backend name as accepted by `PHOTON_BACKEND` / `--backend`.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "simd" => Some(BackendKind::Simd),
            _ => None,
        }
    }

    /// Stable identifier for trace args (0 = scalar, 1 = simd).
    pub fn id(self) -> u64 {
        match self {
            BackendKind::Scalar => 0,
            BackendKind::Simd => 1,
        }
    }
}

/// Whether this host can run the SIMD backend (AVX2+FMA on x86-64; always
/// true on aarch64 where NEON is baseline; false elsewhere).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

static SCALAR: ScalarBackend = ScalarBackend;
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
static SIMD: SimdBackend = SimdBackend;

/// Returns a specific backend implementation regardless of the active
/// selection (parity tests and benchmarks compare backends side by side).
/// `Simd` on an unsupported *architecture* returns the scalar backend; on a
/// supported architecture the caller must gate on [`simd_available`].
pub fn by_kind(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Scalar => &SCALAR,
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        BackendKind::Simd => &SIMD,
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        BackendKind::Simd => &SCALAR,
    }
}

const KIND_UNSET: u8 = 0;
const KIND_SCALAR: u8 = 1;
const KIND_SIMD: u8 = 2;

static ACTIVE_KIND: AtomicU8 = AtomicU8::new(KIND_UNSET);

fn resolve_default() -> BackendKind {
    let requested = std::env::var("PHOTON_BACKEND")
        .ok()
        .as_deref()
        .and_then(BackendKind::parse);
    match requested {
        Some(BackendKind::Scalar) => BackendKind::Scalar,
        // An explicit `simd` request on an unsupported host falls back to
        // scalar rather than failing: zero regression on non-SIMD hosts.
        Some(BackendKind::Simd) | None => {
            if simd_available() {
                BackendKind::Simd
            } else {
                BackendKind::Scalar
            }
        }
    }
}

/// The kind of the active backend, resolving the selection on first use.
pub fn active_kind() -> BackendKind {
    match ACTIVE_KIND.load(Ordering::Relaxed) {
        KIND_SCALAR => BackendKind::Scalar,
        KIND_SIMD => BackendKind::Simd,
        _ => {
            let kind = resolve_default();
            let encoded = match kind {
                BackendKind::Scalar => KIND_SCALAR,
                BackendKind::Simd => KIND_SIMD,
            };
            // A concurrent first resolution reaches the same answer, so a
            // plain store is fine.
            ACTIVE_KIND.store(encoded, Ordering::Relaxed);
            kind
        }
    }
}

/// The active backend every kernel dispatches through.
pub fn active() -> &'static dyn Backend {
    by_kind(active_kind())
}

/// Name of the active backend (`"scalar"` / `"simd"`), for metrics and
/// trace attribution.
pub fn active_name() -> &'static str {
    active().name()
}

/// Overrides the backend selection (the CLI `--backend` flag). Returns the
/// kind actually in effect: requesting `Simd` on a host without AVX2/NEON
/// resolves to `Scalar`.
pub fn set_backend(kind: BackendKind) -> BackendKind {
    let resolved = match kind {
        BackendKind::Simd if !simd_available() => BackendKind::Scalar,
        other => other,
    };
    let encoded = match resolved {
        BackendKind::Scalar => KIND_SCALAR,
        BackendKind::Simd => KIND_SIMD,
    };
    ACTIVE_KIND.store(encoded, Ordering::Relaxed);
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(BackendKind::parse("scalar"), Some(BackendKind::Scalar));
        assert_eq!(BackendKind::parse(" SIMD "), Some(BackendKind::Simd));
        assert_eq!(BackendKind::parse("avx512"), None);
    }

    #[test]
    fn by_kind_names_are_stable() {
        assert_eq!(by_kind(BackendKind::Scalar).name(), "scalar");
        if simd_available() {
            assert_eq!(by_kind(BackendKind::Simd).name(), "simd");
        }
    }

    #[test]
    fn active_backend_resolves() {
        // Whatever the environment says, the resolution must terminate and
        // agree with the reported name.
        let kind = active_kind();
        assert_eq!(active().name(), by_kind(kind).name());
        assert_eq!(active_name(), active().name());
    }
}
