#![allow(unsafe_code)] // `core::arch` intrinsics; every entry point re-checks CPU support.

//! SIMD microkernel backend: 8-wide f32 FMA register tiles via `core::arch`.
//!
//! On x86-64 the kernels require AVX2+FMA and are compiled with
//! `#[target_feature]`; the safe wrappers assert runtime support before
//! entering them, so constructing [`SimdBackend`] on an unsupported host
//! panics instead of executing illegal instructions. On aarch64 the GEMM
//! and vector primitives use NEON (baseline on AArch64); the
//! transcendental row kernels (GELU / softmax) delegate to the scalar
//! reference there. The `tt` GEMM layout is rare outside tests and always
//! delegates to the scalar kernel.
//!
//! Numerics: reductions are reassociated into 8-wide accumulator trees and
//! `exp` is a Cephes-style degree-6 polynomial (relative error ~1e-6), so
//! SIMD results are tolerance-equal — not bit-equal — to scalar. Within
//! this backend every kernel is a pure function of its inputs: replays are
//! bit-identical for a fixed backend.

use super::{scalar, Backend, ScalarBackend};
use crate::ops::Gemm;

const SCALAR_REF: ScalarBackend = ScalarBackend;

/// The SIMD backend (AVX2+FMA / NEON register-tiled kernels).
#[derive(Debug, Default, Clone, Copy)]
pub struct SimdBackend;

impl Backend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn gemm_nn(&self, spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
        assert!(a.len() >= spec.m * spec.k, "gemm_nn: a too short");
        assert!(b.len() >= spec.k * spec.n, "gemm_nn: b too short");
        assert!(c.len() >= spec.m * spec.n, "gemm_nn: c too short");
        arch::gemm_nn(spec.m, spec.k, spec.n, spec.alpha, a, b, c);
    }

    fn gemm_nt(&self, spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
        assert!(a.len() >= spec.m * spec.k, "gemm_nt: a too short");
        assert!(b.len() >= spec.k * spec.n, "gemm_nt: b too short");
        assert!(c.len() >= spec.m * spec.n, "gemm_nt: c too short");
        arch::gemm_nt(spec.m, spec.k, spec.n, spec.alpha, a, b, c);
    }

    fn gemm_tn(&self, spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
        assert!(a.len() >= spec.m * spec.k, "gemm_tn: a too short");
        assert!(b.len() >= spec.k * spec.n, "gemm_tn: b too short");
        assert!(c.len() >= spec.m * spec.n, "gemm_tn: c too short");
        arch::gemm_tn(spec.m, spec.k, spec.n, spec.alpha, a, b, c);
    }

    fn gemm_tt_rows(
        &self,
        spec: Gemm,
        i0: usize,
        rows: usize,
        a: &[f32],
        b: &[f32],
        c_rows: &mut [f32],
    ) {
        // Doubly-strided access defeats the register tiles; this layout is
        // rare outside tests, so the reference kernel serves both backends.
        scalar::kernel_tt_rows(spec, i0, rows, a, b, c_rows);
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        arch::dot(a, b)
    }

    fn axpy(&self, alpha: f32, src: &[f32], dst: &mut [f32]) {
        assert_eq!(dst.len(), src.len(), "axpy length mismatch");
        arch::axpy(alpha, src, dst);
    }

    fn add(&self, out: &mut [f32], a: &[f32], b: &[f32]) {
        assert_eq!(out.len(), a.len(), "add length mismatch");
        assert_eq!(out.len(), b.len(), "add length mismatch");
        arch::add(out, a, b);
    }

    fn gelu(&self, out: &mut [f32], inp: &[f32]) {
        assert_eq!(out.len(), inp.len(), "gelu length mismatch");
        arch::gelu(out, inp);
    }

    fn gelu_grad(&self, dinp: &mut [f32], inp: &[f32], dout: &[f32]) {
        assert_eq!(dinp.len(), inp.len(), "gelu_grad length mismatch");
        assert_eq!(dinp.len(), dout.len(), "gelu_grad length mismatch");
        arch::gelu_grad(dinp, inp, dout);
    }

    fn layernorm_row(
        &self,
        out: &mut [f32],
        x: &[f32],
        weight: &[f32],
        bias: &[f32],
    ) -> (f32, f32) {
        let c = x.len();
        assert_eq!(out.len(), c, "layernorm_row length mismatch");
        assert_eq!(weight.len(), c, "layernorm_row length mismatch");
        assert_eq!(bias.len(), c, "layernorm_row length mismatch");
        arch::layernorm_row(out, x, weight, bias)
    }

    fn layernorm_grad_row(
        &self,
        dinp_row: &mut [f32],
        dweight: &mut [f32],
        dbias: &mut [f32],
        dout_row: &[f32],
        x: &[f32],
        weight: &[f32],
        mean: f32,
        rstd: f32,
    ) {
        let c = x.len();
        assert_eq!(dinp_row.len(), c, "layernorm_grad_row length mismatch");
        assert_eq!(dweight.len(), c, "layernorm_grad_row length mismatch");
        assert_eq!(dbias.len(), c, "layernorm_grad_row length mismatch");
        assert_eq!(dout_row.len(), c, "layernorm_grad_row length mismatch");
        assert_eq!(weight.len(), c, "layernorm_grad_row length mismatch");
        arch::layernorm_grad_row(dinp_row, dweight, dbias, dout_row, x, weight, mean, rstd);
    }

    fn softmax_row(&self, probs: &mut [f32], logits: &[f32]) {
        assert_eq!(probs.len(), logits.len(), "softmax_row length mismatch");
        arch::softmax_row(probs, logits);
    }
}

#[cfg(target_arch = "x86_64")]
mod arch {
    //! AVX2+FMA kernels. Every public wrapper asserts runtime CPU support
    //! before entering a `#[target_feature]` function, making the wrappers
    //! sound even if `SimdBackend` is constructed directly.

    use super::{Backend, SCALAR_REF};
    use core::arch::x86_64::*;

    fn require_simd() {
        assert!(
            crate::backend::simd_available(),
            "SIMD backend used on a host without AVX2+FMA"
        );
    }

    /// k-dimension block size (matches the scalar kernel's L2 blocking).
    const KC: usize = 256;

    pub(super) fn gemm_nn(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        require_simd();
        // SAFETY: AVX2+FMA verified above; slice bounds checked by caller.
        unsafe { gemm_nn_avx2(m, k, n, alpha, a, b, c) }
    }

    pub(super) fn gemm_tn(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        require_simd();
        // SAFETY: as above.
        unsafe { gemm_tn_avx2(m, k, n, alpha, a, b, c) }
    }

    pub(super) fn gemm_nt(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        require_simd();
        // SAFETY: as above.
        unsafe { gemm_nt_avx2(m, k, n, alpha, a, b, c) }
    }

    pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
        require_simd();
        // SAFETY: as above; equal lengths checked by caller.
        unsafe { dot_avx2(a, b) }
    }

    pub(super) fn axpy(alpha: f32, src: &[f32], dst: &mut [f32]) {
        require_simd();
        // SAFETY: as above.
        unsafe { axpy_avx2(alpha, src, dst) }
    }

    pub(super) fn add(out: &mut [f32], a: &[f32], b: &[f32]) {
        require_simd();
        // SAFETY: as above.
        unsafe { add_avx2(out, a, b) }
    }

    pub(super) fn gelu(out: &mut [f32], inp: &[f32]) {
        require_simd();
        // SAFETY: as above.
        unsafe { gelu_avx2(out, inp) }
    }

    pub(super) fn gelu_grad(dinp: &mut [f32], inp: &[f32], dout: &[f32]) {
        require_simd();
        // SAFETY: as above.
        unsafe { gelu_grad_avx2(dinp, inp, dout) }
    }

    pub(super) fn layernorm_row(out: &mut [f32], x: &[f32], w: &[f32], bias: &[f32]) -> (f32, f32) {
        require_simd();
        // SAFETY: as above.
        unsafe { layernorm_row_avx2(out, x, w, bias) }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn layernorm_grad_row(
        dinp: &mut [f32],
        dweight: &mut [f32],
        dbias: &mut [f32],
        dout: &[f32],
        x: &[f32],
        w: &[f32],
        mean: f32,
        rstd: f32,
    ) {
        require_simd();
        // SAFETY: as above.
        unsafe { layernorm_grad_row_avx2(dinp, dweight, dbias, dout, x, w, mean, rstd) }
    }

    pub(super) fn softmax_row(probs: &mut [f32], logits: &[f32]) {
        require_simd();
        // SAFETY: as above.
        unsafe { softmax_row_avx2(probs, logits) }
    }

    /// Horizontal sum of one 8-lane register.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// `C += alpha * A B`: 6x16 register tile (12 accumulators plus 2 B
    /// lanes plus 1 broadcast = 15 of 16 ymm), zero-initialized per k-block
    /// and merged into C with one FMA per lane so the inner loop is pure
    /// broadcast-load-FMA. Each output element keeps its own accumulator
    /// summed over `p` in order, so results are bit-identical regardless of
    /// tile shape.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gemm_nn_avx2(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let alpha_v = _mm256_set1_ps(alpha);
        let mut p0 = 0usize;
        while p0 < k {
            let pe = (p0 + KC).min(k);
            let mut i = 0usize;
            while i + 6 <= m {
                let rows = [
                    i * k,
                    (i + 1) * k,
                    (i + 2) * k,
                    (i + 3) * k,
                    (i + 4) * k,
                    (i + 5) * k,
                ];
                let mut j = 0usize;
                while j + 16 <= n {
                    let mut acc = [[_mm256_setzero_ps(); 2]; 6];
                    for p in p0..pe {
                        let brow = bp.add(p * n + j);
                        let b0 = _mm256_loadu_ps(brow);
                        let b1 = _mm256_loadu_ps(brow.add(8));
                        for (accr, &row) in acc.iter_mut().zip(&rows) {
                            let s = _mm256_set1_ps(*ap.add(row + p));
                            accr[0] = _mm256_fmadd_ps(s, b0, accr[0]);
                            accr[1] = _mm256_fmadd_ps(s, b1, accr[1]);
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let crow = cp.add((i + r) * n + j);
                        let c0 = _mm256_loadu_ps(crow);
                        let c1 = _mm256_loadu_ps(crow.add(8));
                        _mm256_storeu_ps(crow, _mm256_fmadd_ps(alpha_v, accr[0], c0));
                        _mm256_storeu_ps(crow.add(8), _mm256_fmadd_ps(alpha_v, accr[1], c1));
                    }
                    j += 16;
                }
                while j + 8 <= n {
                    let mut acc = [_mm256_setzero_ps(); 6];
                    for p in p0..pe {
                        let b0 = _mm256_loadu_ps(bp.add(p * n + j));
                        for (accr, &row) in acc.iter_mut().zip(&rows) {
                            let s = _mm256_set1_ps(*ap.add(row + p));
                            *accr = _mm256_fmadd_ps(s, b0, *accr);
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let crow = cp.add((i + r) * n + j);
                        _mm256_storeu_ps(
                            crow,
                            _mm256_fmadd_ps(alpha_v, *accr, _mm256_loadu_ps(crow)),
                        );
                    }
                    j += 8;
                }
                while j < n {
                    for (r, &row) in rows.iter().enumerate() {
                        let mut s = 0.0f32;
                        for p in p0..pe {
                            s += *ap.add(row + p) * *bp.add(p * n + j);
                        }
                        *cp.add((i + r) * n + j) += alpha * s;
                    }
                    j += 1;
                }
                i += 6;
            }
            while i < m {
                let row = i * k;
                let mut j = 0usize;
                while j + 8 <= n {
                    let mut acc = _mm256_setzero_ps();
                    for p in p0..pe {
                        let s = _mm256_set1_ps(*ap.add(row + p));
                        acc = _mm256_fmadd_ps(s, _mm256_loadu_ps(bp.add(p * n + j)), acc);
                    }
                    let crow = cp.add(i * n + j);
                    _mm256_storeu_ps(crow, _mm256_fmadd_ps(alpha_v, acc, _mm256_loadu_ps(crow)));
                    j += 8;
                }
                while j < n {
                    let mut s = 0.0f32;
                    for p in p0..pe {
                        s += *ap.add(row + p) * *bp.add(p * n + j);
                    }
                    *cp.add(i * n + j) += alpha * s;
                    j += 1;
                }
                i += 1;
            }
            p0 = pe;
        }
    }

    /// `C += alpha * A^T B` with physical `A: (k, m)`: identical tile
    /// structure to `gemm_nn_avx2`, with the row scalars gathered from the
    /// transposed layout (`a[p*m + i + r]` — six contiguous loads).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gemm_tn_avx2(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let alpha_v = _mm256_set1_ps(alpha);
        let mut p0 = 0usize;
        while p0 < k {
            let pe = (p0 + KC).min(k);
            let mut i = 0usize;
            while i + 6 <= m {
                let mut j = 0usize;
                while j + 16 <= n {
                    let mut acc = [[_mm256_setzero_ps(); 2]; 6];
                    for p in p0..pe {
                        let brow = bp.add(p * n + j);
                        let b0 = _mm256_loadu_ps(brow);
                        let b1 = _mm256_loadu_ps(brow.add(8));
                        let arow = ap.add(p * m + i);
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let s = _mm256_set1_ps(*arow.add(r));
                            accr[0] = _mm256_fmadd_ps(s, b0, accr[0]);
                            accr[1] = _mm256_fmadd_ps(s, b1, accr[1]);
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let crow = cp.add((i + r) * n + j);
                        let c0 = _mm256_loadu_ps(crow);
                        let c1 = _mm256_loadu_ps(crow.add(8));
                        _mm256_storeu_ps(crow, _mm256_fmadd_ps(alpha_v, accr[0], c0));
                        _mm256_storeu_ps(crow.add(8), _mm256_fmadd_ps(alpha_v, accr[1], c1));
                    }
                    j += 16;
                }
                while j + 8 <= n {
                    let mut acc = [_mm256_setzero_ps(); 6];
                    for p in p0..pe {
                        let b0 = _mm256_loadu_ps(bp.add(p * n + j));
                        let arow = ap.add(p * m + i);
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let s = _mm256_set1_ps(*arow.add(r));
                            *accr = _mm256_fmadd_ps(s, b0, *accr);
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let crow = cp.add((i + r) * n + j);
                        _mm256_storeu_ps(
                            crow,
                            _mm256_fmadd_ps(alpha_v, *accr, _mm256_loadu_ps(crow)),
                        );
                    }
                    j += 8;
                }
                while j < n {
                    for r in 0..6 {
                        let mut s = 0.0f32;
                        for p in p0..pe {
                            s += *ap.add(p * m + i + r) * *bp.add(p * n + j);
                        }
                        *cp.add((i + r) * n + j) += alpha * s;
                    }
                    j += 1;
                }
                i += 6;
            }
            while i < m {
                let mut j = 0usize;
                while j + 8 <= n {
                    let mut acc = _mm256_setzero_ps();
                    for p in p0..pe {
                        let s = _mm256_set1_ps(*ap.add(p * m + i));
                        acc = _mm256_fmadd_ps(s, _mm256_loadu_ps(bp.add(p * n + j)), acc);
                    }
                    let crow = cp.add(i * n + j);
                    _mm256_storeu_ps(crow, _mm256_fmadd_ps(alpha_v, acc, _mm256_loadu_ps(crow)));
                    j += 8;
                }
                while j < n {
                    let mut s = 0.0f32;
                    for p in p0..pe {
                        s += *ap.add(p * m + i) * *bp.add(p * n + j);
                    }
                    *cp.add(i * n + j) += alpha * s;
                    j += 1;
                }
                i += 1;
            }
            p0 = pe;
        }
    }

    /// `C += alpha * A B^T`: every output is a dot of two contiguous rows.
    /// Large problems are repacked to `gemm_nn` upstream; this serves the
    /// small/unpacked cases.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gemm_nt_avx2(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                *c.get_unchecked_mut(i * n + j) += alpha * dot_avx2(a_row, b_row);
            }
        }
    }

    /// Four-chain 8-wide dot product with a scalar tail.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let len = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 32 <= len {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 16)),
                _mm256_loadu_ps(bp.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 24)),
                _mm256_loadu_ps(bp.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        while i + 8 <= len {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            i += 8;
        }
        let mut sum = hsum(_mm256_add_ps(
            _mm256_add_ps(acc0, acc1),
            _mm256_add_ps(acc2, acc3),
        ));
        while i < len {
            sum += *ap.add(i) * *bp.add(i);
            i += 1;
        }
        sum
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn axpy_avx2(alpha: f32, src: &[f32], dst: &mut [f32]) {
        let len = dst.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let av = _mm256_set1_ps(alpha);
        let mut i = 0usize;
        while i + 16 <= len {
            let d0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(sp.add(i)), _mm256_loadu_ps(dp.add(i)));
            let d1 = _mm256_fmadd_ps(
                av,
                _mm256_loadu_ps(sp.add(i + 8)),
                _mm256_loadu_ps(dp.add(i + 8)),
            );
            _mm256_storeu_ps(dp.add(i), d0);
            _mm256_storeu_ps(dp.add(i + 8), d1);
            i += 16;
        }
        while i + 8 <= len {
            let d0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(sp.add(i)), _mm256_loadu_ps(dp.add(i)));
            _mm256_storeu_ps(dp.add(i), d0);
            i += 8;
        }
        while i < len {
            *dp.add(i) += alpha * *sp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn add_avx2(out: &mut [f32], a: &[f32], b: &[f32]) {
        let len = out.len();
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0usize;
        while i + 8 <= len {
            _mm256_storeu_ps(
                op.add(i),
                _mm256_add_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i))),
            );
            i += 8;
        }
        while i < len {
            *op.add(i) = *ap.add(i) + *bp.add(i);
            i += 1;
        }
    }

    /// Vector `exp` (Cephes `expf` polynomial): clamp, split `x = n ln2 + r`,
    /// evaluate a degree-6 polynomial on `r`, scale by `2^n` via exponent
    /// bits. Relative error ~1e-6 on the clamped domain.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn exp_avx2(x: __m256) -> __m256 {
        let x = _mm256_min_ps(x, _mm256_set1_ps(88.376_26));
        let x = _mm256_max_ps(x, _mm256_set1_ps(-87.336_54));
        let n = _mm256_round_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E)),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
        );
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(0.693_359_4), x);
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(-2.121_944_4e-4), r);
        let mut y = _mm256_set1_ps(1.987_569_1e-4);
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.398_199_9e-3));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(8.333_452e-3));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(4.166_579_6e-2));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.666_666_5e-1));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(0.5));
        let y = _mm256_fmadd_ps(
            y,
            _mm256_mul_ps(r, r),
            _mm256_add_ps(r, _mm256_set1_ps(1.0)),
        );
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(n),
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(y, pow2)
    }

    /// `tanh(t) = 1 - 2 / (exp(2t) + 1)`, saturating correctly for |t| large
    /// because `exp_avx2` clamps.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn tanh_avx2(t: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        let e = exp_avx2(_mm256_add_ps(t, t));
        _mm256_sub_ps(
            one,
            _mm256_div_ps(_mm256_set1_ps(2.0), _mm256_add_ps(e, one)),
        )
    }

    const GELU_CUBE: f32 = 0.044715;

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gelu_avx2(out: &mut [f32], inp: &[f32]) {
        let len = out.len();
        let op = out.as_mut_ptr();
        let ip = inp.as_ptr();
        let s_v = _mm256_set1_ps(super::scalar::GELU_S);
        let cube_v = _mm256_set1_ps(GELU_CUBE);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let mut i = 0usize;
        while i + 8 <= len {
            let x = _mm256_loadu_ps(ip.add(i));
            let x2 = _mm256_mul_ps(x, x);
            // t = S * (x + 0.044715 x^3)
            let inner = _mm256_fmadd_ps(_mm256_mul_ps(cube_v, x2), x, x);
            let th = tanh_avx2(_mm256_mul_ps(s_v, inner));
            let y = _mm256_mul_ps(_mm256_mul_ps(half, x), _mm256_add_ps(one, th));
            _mm256_storeu_ps(op.add(i), y);
            i += 8;
        }
        if i < len {
            SCALAR_REF.gelu(&mut out[i..], &inp[i..]);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gelu_grad_avx2(dinp: &mut [f32], inp: &[f32], dout: &[f32]) {
        let len = dinp.len();
        let dp = dinp.as_mut_ptr();
        let ip = inp.as_ptr();
        let yp = dout.as_ptr();
        let s_v = _mm256_set1_ps(super::scalar::GELU_S);
        let cube_v = _mm256_set1_ps(GELU_CUBE);
        let three_cube = _mm256_set1_ps(3.0 * GELU_CUBE);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let mut i = 0usize;
        while i + 8 <= len {
            let x = _mm256_loadu_ps(ip.add(i));
            let dy = _mm256_loadu_ps(yp.add(i));
            let x2 = _mm256_mul_ps(x, x);
            let inner = _mm256_fmadd_ps(_mm256_mul_ps(cube_v, x2), x, x);
            let th = tanh_avx2(_mm256_mul_ps(s_v, inner));
            let sech2 = _mm256_fnmadd_ps(th, th, one);
            // local = 0.5 (1 + th) + x * 0.5 * sech2 * S * (1 + 3*0.044715 x^2)
            let poly = _mm256_fmadd_ps(three_cube, x2, one);
            let slope = _mm256_mul_ps(
                _mm256_mul_ps(_mm256_mul_ps(x, half), _mm256_mul_ps(sech2, s_v)),
                poly,
            );
            let local = _mm256_fmadd_ps(half, _mm256_add_ps(one, th), slope);
            let d = _mm256_fmadd_ps(local, dy, _mm256_loadu_ps(dp.add(i)));
            _mm256_storeu_ps(dp.add(i), d);
            i += 8;
        }
        if i < len {
            SCALAR_REF.gelu_grad(&mut dinp[i..], &inp[i..], &dout[i..]);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn layernorm_row_avx2(
        out: &mut [f32],
        x: &[f32],
        w: &[f32],
        bias: &[f32],
    ) -> (f32, f32) {
        let c = x.len();
        let xp = x.as_ptr();
        let mut sum_v = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= c {
            sum_v = _mm256_add_ps(sum_v, _mm256_loadu_ps(xp.add(i)));
            i += 8;
        }
        let mut sum = hsum(sum_v);
        while i < c {
            sum += *xp.add(i);
            i += 1;
        }
        let mean = sum / c as f32;

        let mean_v = _mm256_set1_ps(mean);
        let mut var_v = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= c {
            let d = _mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), mean_v);
            var_v = _mm256_fmadd_ps(d, d, var_v);
            i += 8;
        }
        let mut var = hsum(var_v);
        while i < c {
            let d = *xp.add(i) - mean;
            var += d * d;
            i += 1;
        }
        let var = var / c as f32;
        let rstd = 1.0 / (var + super::scalar::LN_EPS).sqrt();

        let rstd_v = _mm256_set1_ps(rstd);
        let op = out.as_mut_ptr();
        let wp = w.as_ptr();
        let bp = bias.as_ptr();
        let mut i = 0usize;
        while i + 8 <= c {
            let norm = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), mean_v), rstd_v);
            let y = _mm256_fmadd_ps(norm, _mm256_loadu_ps(wp.add(i)), _mm256_loadu_ps(bp.add(i)));
            _mm256_storeu_ps(op.add(i), y);
            i += 8;
        }
        while i < c {
            *op.add(i) = (*xp.add(i) - mean) * rstd * *wp.add(i) + *bp.add(i);
            i += 1;
        }
        (mean, rstd)
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn layernorm_grad_row_avx2(
        dinp: &mut [f32],
        dweight: &mut [f32],
        dbias: &mut [f32],
        dout: &[f32],
        x: &[f32],
        w: &[f32],
        mean: f32,
        rstd: f32,
    ) {
        let c = x.len();
        let xp = x.as_ptr();
        let yp = dout.as_ptr();
        let wp = w.as_ptr();
        let mean_v = _mm256_set1_ps(mean);
        let rstd_v = _mm256_set1_ps(rstd);

        let mut dm_v = _mm256_setzero_ps();
        let mut dnm_v = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= c {
            let norm = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), mean_v), rstd_v);
            let dnorm = _mm256_mul_ps(_mm256_loadu_ps(wp.add(i)), _mm256_loadu_ps(yp.add(i)));
            dm_v = _mm256_add_ps(dm_v, dnorm);
            dnm_v = _mm256_fmadd_ps(dnorm, norm, dnm_v);
            i += 8;
        }
        let mut dnorm_mean = hsum(dm_v);
        let mut dnorm_norm_mean = hsum(dnm_v);
        while i < c {
            let norm = (*xp.add(i) - mean) * rstd;
            let dnorm = *wp.add(i) * *yp.add(i);
            dnorm_mean += dnorm;
            dnorm_norm_mean += dnorm * norm;
            i += 1;
        }
        dnorm_mean /= c as f32;
        dnorm_norm_mean /= c as f32;

        let dm = _mm256_set1_ps(dnorm_mean);
        let dnm = _mm256_set1_ps(dnorm_norm_mean);
        let dip = dinp.as_mut_ptr();
        let dwp = dweight.as_mut_ptr();
        let dbp = dbias.as_mut_ptr();
        let mut i = 0usize;
        while i + 8 <= c {
            let dy = _mm256_loadu_ps(yp.add(i));
            let norm = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), mean_v), rstd_v);
            let dnorm = _mm256_mul_ps(_mm256_loadu_ps(wp.add(i)), dy);
            _mm256_storeu_ps(dbp.add(i), _mm256_add_ps(_mm256_loadu_ps(dbp.add(i)), dy));
            _mm256_storeu_ps(
                dwp.add(i),
                _mm256_fmadd_ps(norm, dy, _mm256_loadu_ps(dwp.add(i))),
            );
            let di = _mm256_fnmadd_ps(norm, dnm, _mm256_sub_ps(dnorm, dm));
            _mm256_storeu_ps(
                dip.add(i),
                _mm256_fmadd_ps(di, rstd_v, _mm256_loadu_ps(dip.add(i))),
            );
            i += 8;
        }
        while i < c {
            let norm = (*xp.add(i) - mean) * rstd;
            let dnorm = *wp.add(i) * *yp.add(i);
            *dbp.add(i) += *yp.add(i);
            *dwp.add(i) += norm * *yp.add(i);
            *dip.add(i) += (dnorm - dnorm_mean - norm * dnorm_norm_mean) * rstd;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn softmax_row_avx2(probs: &mut [f32], logits: &[f32]) {
        let v = logits.len();
        let lp = logits.as_ptr();
        let pp = probs.as_mut_ptr();

        let mut max_v = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut i = 0usize;
        while i + 8 <= v {
            max_v = _mm256_max_ps(max_v, _mm256_loadu_ps(lp.add(i)));
            i += 8;
        }
        // Horizontal max.
        let lo = _mm256_castps256_ps128(max_v);
        let hi = _mm256_extractf128_ps(max_v, 1);
        let s = _mm_max_ps(lo, hi);
        let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
        let mut maxv = _mm_cvtss_f32(s);
        // An all-tail row starts from -inf, so seed with the first scalar.
        while i < v {
            maxv = maxv.max(*lp.add(i));
            i += 1;
        }

        let max_b = _mm256_set1_ps(maxv);
        let mut sum_v = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= v {
            let e = exp_avx2(_mm256_sub_ps(_mm256_loadu_ps(lp.add(i)), max_b));
            _mm256_storeu_ps(pp.add(i), e);
            sum_v = _mm256_add_ps(sum_v, e);
            i += 8;
        }
        let mut sum = hsum(sum_v);
        while i < v {
            let e = (*lp.add(i) - maxv).exp();
            *pp.add(i) = e;
            sum += e;
            i += 1;
        }

        let inv = 1.0 / sum;
        let inv_v = _mm256_set1_ps(inv);
        let mut i = 0usize;
        while i + 8 <= v {
            _mm256_storeu_ps(pp.add(i), _mm256_mul_ps(_mm256_loadu_ps(pp.add(i)), inv_v));
            i += 8;
        }
        while i < v {
            *pp.add(i) *= inv;
            i += 1;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    //! NEON kernels (baseline on AArch64, so no runtime detection needed).
    //! GEMM and the vector primitives are vectorized; the transcendental
    //! row kernels delegate to the scalar reference — on aarch64 the SIMD
    //! backend's win is the matmul path.

    use super::{Backend, SCALAR_REF};
    use core::arch::aarch64::*;

    const KC: usize = 256;

    pub(super) fn gemm_nn(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        // SAFETY: NEON is mandatory on aarch64; bounds checked by caller.
        unsafe { gemm_nn_neon(m, k, n, alpha, a, b, c) }
    }

    pub(super) fn gemm_tn(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        // SAFETY: as above.
        unsafe { gemm_tn_neon(m, k, n, alpha, a, b, c) }
    }

    pub(super) fn gemm_nt(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (j, cv) in c_row.iter_mut().enumerate() {
                *cv += alpha * dot(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    }

    pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: NEON is baseline; equal lengths checked by caller.
        unsafe { dot_neon(a, b) }
    }

    pub(super) fn axpy(alpha: f32, src: &[f32], dst: &mut [f32]) {
        // SAFETY: as above.
        unsafe { axpy_neon(alpha, src, dst) }
    }

    pub(super) fn add(out: &mut [f32], a: &[f32], b: &[f32]) {
        // SAFETY: as above.
        unsafe { add_neon(out, a, b) }
    }

    pub(super) fn gelu(out: &mut [f32], inp: &[f32]) {
        SCALAR_REF.gelu(out, inp);
    }

    pub(super) fn gelu_grad(dinp: &mut [f32], inp: &[f32], dout: &[f32]) {
        SCALAR_REF.gelu_grad(dinp, inp, dout);
    }

    pub(super) fn layernorm_row(out: &mut [f32], x: &[f32], w: &[f32], bias: &[f32]) -> (f32, f32) {
        SCALAR_REF.layernorm_row(out, x, w, bias)
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn layernorm_grad_row(
        dinp: &mut [f32],
        dweight: &mut [f32],
        dbias: &mut [f32],
        dout: &[f32],
        x: &[f32],
        w: &[f32],
        mean: f32,
        rstd: f32,
    ) {
        SCALAR_REF.layernorm_grad_row(dinp, dweight, dbias, dout, x, w, mean, rstd);
    }

    pub(super) fn softmax_row(probs: &mut [f32], logits: &[f32]) {
        SCALAR_REF.softmax_row(probs, logits);
    }

    /// `C += alpha * A B`: 4x8 register tile of 4-lane accumulators,
    /// zero-initialized per k-block and merged with one FMA per lane.
    unsafe fn gemm_nn_neon(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let alpha_v = vdupq_n_f32(alpha);
        let mut p0 = 0usize;
        while p0 < k {
            let pe = (p0 + KC).min(k);
            let mut i = 0usize;
            while i + 4 <= m {
                let rows = [i * k, (i + 1) * k, (i + 2) * k, (i + 3) * k];
                let mut j = 0usize;
                while j + 8 <= n {
                    let mut acc = [[vdupq_n_f32(0.0); 2]; 4];
                    for p in p0..pe {
                        let brow = bp.add(p * n + j);
                        let b0 = vld1q_f32(brow);
                        let b1 = vld1q_f32(brow.add(4));
                        for (accr, &row) in acc.iter_mut().zip(&rows) {
                            let s = vdupq_n_f32(*ap.add(row + p));
                            accr[0] = vfmaq_f32(accr[0], s, b0);
                            accr[1] = vfmaq_f32(accr[1], s, b1);
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let crow = cp.add((i + r) * n + j);
                        vst1q_f32(crow, vfmaq_f32(vld1q_f32(crow), alpha_v, accr[0]));
                        vst1q_f32(
                            crow.add(4),
                            vfmaq_f32(vld1q_f32(crow.add(4)), alpha_v, accr[1]),
                        );
                    }
                    j += 8;
                }
                while j < n {
                    for (r, &row) in rows.iter().enumerate() {
                        let mut s = 0.0f32;
                        for p in p0..pe {
                            s += *ap.add(row + p) * *bp.add(p * n + j);
                        }
                        *cp.add((i + r) * n + j) += alpha * s;
                    }
                    j += 1;
                }
                i += 4;
            }
            while i < m {
                let row = i * k;
                let mut j = 0usize;
                while j + 4 <= n {
                    let mut acc = vdupq_n_f32(0.0);
                    for p in p0..pe {
                        acc = vfmaq_f32(
                            acc,
                            vdupq_n_f32(*ap.add(row + p)),
                            vld1q_f32(bp.add(p * n + j)),
                        );
                    }
                    let crow = cp.add(i * n + j);
                    vst1q_f32(crow, vfmaq_f32(vld1q_f32(crow), alpha_v, acc));
                    j += 4;
                }
                while j < n {
                    let mut s = 0.0f32;
                    for p in p0..pe {
                        s += *ap.add(row + p) * *bp.add(p * n + j);
                    }
                    *cp.add(i * n + j) += alpha * s;
                    j += 1;
                }
                i += 1;
            }
            p0 = pe;
        }
    }

    /// `C += alpha * A^T B` with physical `A: (k, m)`.
    unsafe fn gemm_tn_neon(
        m: usize,
        k: usize,
        n: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let alpha_v = vdupq_n_f32(alpha);
        let mut p0 = 0usize;
        while p0 < k {
            let pe = (p0 + KC).min(k);
            let mut i = 0usize;
            while i + 4 <= m {
                let mut j = 0usize;
                while j + 8 <= n {
                    let mut acc = [[vdupq_n_f32(0.0); 2]; 4];
                    for p in p0..pe {
                        let brow = bp.add(p * n + j);
                        let b0 = vld1q_f32(brow);
                        let b1 = vld1q_f32(brow.add(4));
                        let arow = ap.add(p * m + i);
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let s = vdupq_n_f32(*arow.add(r));
                            accr[0] = vfmaq_f32(accr[0], s, b0);
                            accr[1] = vfmaq_f32(accr[1], s, b1);
                        }
                    }
                    for (r, accr) in acc.iter().enumerate() {
                        let crow = cp.add((i + r) * n + j);
                        vst1q_f32(crow, vfmaq_f32(vld1q_f32(crow), alpha_v, accr[0]));
                        vst1q_f32(
                            crow.add(4),
                            vfmaq_f32(vld1q_f32(crow.add(4)), alpha_v, accr[1]),
                        );
                    }
                    j += 8;
                }
                while j < n {
                    for r in 0..4 {
                        let mut s = 0.0f32;
                        for p in p0..pe {
                            s += *ap.add(p * m + i + r) * *bp.add(p * n + j);
                        }
                        *cp.add((i + r) * n + j) += alpha * s;
                    }
                    j += 1;
                }
                i += 4;
            }
            while i < m {
                let mut j = 0usize;
                while j + 4 <= n {
                    let mut acc = vdupq_n_f32(0.0);
                    for p in p0..pe {
                        acc = vfmaq_f32(
                            acc,
                            vdupq_n_f32(*ap.add(p * m + i)),
                            vld1q_f32(bp.add(p * n + j)),
                        );
                    }
                    let crow = cp.add(i * n + j);
                    vst1q_f32(crow, vfmaq_f32(vld1q_f32(crow), alpha_v, acc));
                    j += 4;
                }
                while j < n {
                    let mut s = 0.0f32;
                    for p in p0..pe {
                        s += *ap.add(p * m + i) * *bp.add(p * n + j);
                    }
                    *cp.add(i * n + j) += alpha * s;
                    j += 1;
                }
                i += 1;
            }
            p0 = pe;
        }
    }

    unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
        let len = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut acc2 = vdupq_n_f32(0.0);
        let mut acc3 = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 16 <= len {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
            acc1 = vfmaq_f32(acc1, vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
            acc2 = vfmaq_f32(acc2, vld1q_f32(ap.add(i + 8)), vld1q_f32(bp.add(i + 8)));
            acc3 = vfmaq_f32(acc3, vld1q_f32(ap.add(i + 12)), vld1q_f32(bp.add(i + 12)));
            i += 16;
        }
        while i + 4 <= len {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
            i += 4;
        }
        let mut sum = vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
        while i < len {
            sum += *ap.add(i) * *bp.add(i);
            i += 1;
        }
        sum
    }

    unsafe fn axpy_neon(alpha: f32, src: &[f32], dst: &mut [f32]) {
        let len = dst.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let av = vdupq_n_f32(alpha);
        let mut i = 0usize;
        while i + 4 <= len {
            vst1q_f32(
                dp.add(i),
                vfmaq_f32(vld1q_f32(dp.add(i)), av, vld1q_f32(sp.add(i))),
            );
            i += 4;
        }
        while i < len {
            *dp.add(i) += alpha * *sp.add(i);
            i += 1;
        }
    }

    unsafe fn add_neon(out: &mut [f32], a: &[f32], b: &[f32]) {
        let len = out.len();
        let op = out.as_mut_ptr();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0usize;
        while i + 4 <= len {
            vst1q_f32(
                op.add(i),
                vaddq_f32(vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i))),
            );
            i += 4;
        }
        while i < len {
            *op.add(i) = *ap.add(i) + *bp.add(i);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::simd_available;
    use crate::SeedStream;

    fn randv(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SeedStream::new(seed);
        (0..n).map(|_| rng.next_normal()).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let scale = 1.0f32.max(x.abs()).max(y.abs());
            assert!(
                (x - y).abs() <= tol * scale,
                "lane {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    #[test]
    fn simd_gemm_matches_scalar_all_layouts() {
        if !simd_available() {
            return;
        }
        let (sc, sd) = (ScalarBackend, SimdBackend);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (8, 16, 24),
            (13, 300, 17),
            (64, 64, 64),
        ] {
            let a = randv(m * k, 1);
            let b = randv(k * n, 2);
            let spec = Gemm::new(m, k, n).alpha(0.75);
            for (name, run) in [("nn", 0usize), ("nt", 1), ("tn", 2)] {
                let mut c1 = randv(m * n, 3);
                let mut c2 = c1.clone();
                match run {
                    0 => {
                        sc.gemm_nn(spec, &a, &b, &mut c1);
                        sd.gemm_nn(spec, &a, &b, &mut c2);
                    }
                    1 => {
                        sc.gemm_nt(spec, &a, &b, &mut c1);
                        sd.gemm_nt(spec, &a, &b, &mut c2);
                    }
                    _ => {
                        sc.gemm_tn(spec, &a, &b, &mut c1);
                        sd.gemm_tn(spec, &a, &b, &mut c2);
                    }
                }
                for (x, y) in c1.iter().zip(&c2) {
                    assert!(
                        (x - y).abs() <= 1e-3 * 1.0f32.max(x.abs()),
                        "{name} {m}x{k}x{n}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn simd_exp_path_accuracy() {
        if !simd_available() {
            return;
        }
        let sd = SimdBackend;
        // Softmax over a spread of magnitudes, including large negatives
        // that exercise the exp clamp.
        let logits: Vec<f32> = (0..37).map(|i| (i as f32 - 18.0) * 2.3).collect();
        let mut p_simd = vec![0.0f32; logits.len()];
        let mut p_ref = vec![0.0f32; logits.len()];
        sd.softmax_row(&mut p_simd, &logits);
        ScalarBackend.softmax_row(&mut p_ref, &logits);
        assert_close(&p_simd, &p_ref, 1e-5);
        let sum: f32 = p_simd.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "softmax sums to {sum}");
    }

    #[test]
    fn simd_gelu_matches_scalar() {
        if !simd_available() {
            return;
        }
        let sd = SimdBackend;
        let x: Vec<f32> = (0..41).map(|i| (i as f32 - 20.0) * 0.5).collect();
        let dy = randv(x.len(), 9);
        let mut y_simd = vec![0.0f32; x.len()];
        let mut y_ref = vec![0.0f32; x.len()];
        sd.gelu(&mut y_simd, &x);
        ScalarBackend.gelu(&mut y_ref, &x);
        assert_close(&y_simd, &y_ref, 1e-4);

        let mut d_simd = vec![0.1f32; x.len()];
        let mut d_ref = vec![0.1f32; x.len()];
        sd.gelu_grad(&mut d_simd, &x, &dy);
        ScalarBackend.gelu_grad(&mut d_ref, &x, &dy);
        assert_close(&d_simd, &d_ref, 1e-4);
    }
}
