//! The scalar reference backend: portable, allocation-free inner loops.
//!
//! These are the kernels every other backend is checked against (the parity
//! proptests bound SIMD-vs-scalar divergence). The GEMM kernels are cache-
//! blocked and register-tiled but use no explicit vector intrinsics — the
//! compiler's autovectorizer is welcome to do what it can.

use super::Backend;
use crate::ops::Gemm;

/// k-dimension block size: one block of B rows (`KC * n` floats) stays hot
/// in L2 while a row tile of C streams over it.
pub(crate) const KC: usize = 256;
/// Register tile height: rows of C updated together so each loaded B value
/// feeds `MR` fused multiply-adds.
pub(crate) const MR: usize = 4;

/// `C += alpha * A B` with `A: (m, k)`, `B: (k, n)`, both row-major.
///
/// k-blocked so each `(KC, n)` panel of B is reused across every row tile,
/// with an `MR`-row register tile on the `ipj` path. No value-dependent
/// skips: a zero in A must still propagate NaN/Inf from B.
fn kernel_nn(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut p0 = 0;
    while p0 < k {
        let pe = (p0 + KC).min(k);
        let mut rows = &mut c[..m * n];
        let mut i = 0usize;
        while i + MR <= m {
            let (tile, rest) = rows.split_at_mut(MR * n);
            rows = rest;
            let (r0, tail) = tile.split_at_mut(n);
            let (r1, tail) = tail.split_at_mut(n);
            let (r2, r3) = tail.split_at_mut(n);
            for p in p0..pe {
                let s0 = alpha * a[i * k + p];
                let s1 = alpha * a[(i + 1) * k + p];
                let s2 = alpha * a[(i + 2) * k + p];
                let s3 = alpha * a[(i + 3) * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (j, &bv) in b_row.iter().enumerate() {
                    r0[j] += s0 * bv;
                    r1[j] += s1 * bv;
                    r2[j] += s2 * bv;
                    r3[j] += s3 * bv;
                }
            }
            i += MR;
        }
        while i < m {
            let (row, rest) = rows.split_at_mut(n);
            rows = rest;
            for p in p0..pe {
                let s = alpha * a[i * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (cv, &bv) in row.iter_mut().zip(b_row) {
                    *cv += s * bv;
                }
            }
            i += 1;
        }
        p0 = pe;
    }
}

/// Four-accumulator dot product; the split accumulators expose instruction-
/// level parallelism the single-chain version cannot.
fn dot4(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let mut xs = x.chunks_exact(4);
    let mut ys = y.chunks_exact(4);
    for (xc, yc) in xs.by_ref().zip(ys.by_ref()) {
        acc[0] += xc[0] * yc[0];
        acc[1] += xc[1] * yc[1];
        acc[2] += xc[2] * yc[2];
        acc[3] += xc[3] * yc[3];
    }
    let mut tail = 0.0f32;
    for (&xv, &yv) in xs.remainder().iter().zip(ys.remainder()) {
        tail += xv * yv;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `C += alpha * A B^T` with `A: (m, k)`, physical `B: (n, k)`: every output
/// is a dot of two contiguous rows.
fn kernel_nt(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *cv += alpha * dot4(a_row, b_row);
        }
    }
}

/// `C += alpha * A^T B` with physical `A: (k, m)`, `B: (k, n)`: an `MR`-row
/// tile of C accumulates across the whole contraction so each streamed row
/// of B is reused `MR` times.
fn kernel_tn(m: usize, k: usize, n: usize, alpha: f32, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut rows = &mut c[..m * n];
    let mut i = 0usize;
    while i + MR <= m {
        let (tile, rest) = rows.split_at_mut(MR * n);
        rows = rest;
        let (r0, tail) = tile.split_at_mut(n);
        let (r1, tail) = tail.split_at_mut(n);
        let (r2, r3) = tail.split_at_mut(n);
        for p in 0..k {
            let s0 = alpha * a[p * m + i];
            let s1 = alpha * a[p * m + i + 1];
            let s2 = alpha * a[p * m + i + 2];
            let s3 = alpha * a[p * m + i + 3];
            let b_row = &b[p * n..(p + 1) * n];
            for (j, &bv) in b_row.iter().enumerate() {
                r0[j] += s0 * bv;
                r1[j] += s1 * bv;
                r2[j] += s2 * bv;
                r3[j] += s3 * bv;
            }
        }
        i += MR;
    }
    while i < m {
        let (row, rest) = rows.split_at_mut(n);
        rows = rest;
        for p in 0..k {
            let s = alpha * a[p * m + i];
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in row.iter_mut().zip(b_row) {
                *cv += s * bv;
            }
        }
        i += 1;
    }
}

/// `C += alpha * A^T B^T` for logical rows `i0..i0 + rows`; see
/// [`Backend::gemm_tt_rows`].
pub(crate) fn kernel_tt_rows(
    spec: Gemm,
    i0: usize,
    rows: usize,
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
) {
    let (m, k, n, alpha) = (spec.m, spec.k, spec.n, spec.alpha);
    for (di, c_row) in c_rows.chunks_exact_mut(n).take(rows).enumerate() {
        let i = i0 + di;
        for (j, cv) in c_row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[p * m + i] * b[j * k + p];
            }
            *cv += alpha * acc;
        }
    }
}

pub(crate) const GELU_S: f32 = 0.797_884_6; // sqrt(2/pi)
pub(crate) const LN_EPS: f32 = 1e-5;

/// The scalar reference backend (unit struct — all state lives in the
/// slices it operates on).
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm_nn(&self, spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
        kernel_nn(spec.m, spec.k, spec.n, spec.alpha, a, b, c);
    }

    fn gemm_nt(&self, spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
        kernel_nt(spec.m, spec.k, spec.n, spec.alpha, a, b, c);
    }

    fn gemm_tn(&self, spec: Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
        kernel_tn(spec.m, spec.k, spec.n, spec.alpha, a, b, c);
    }

    fn gemm_tt_rows(
        &self,
        spec: Gemm,
        i0: usize,
        rows: usize,
        a: &[f32],
        b: &[f32],
        c_rows: &mut [f32],
    ) {
        kernel_tt_rows(spec, i0, rows, a, b, c_rows);
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        let mut acc = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            acc += x * y;
        }
        acc
    }

    fn axpy(&self, alpha: f32, src: &[f32], dst: &mut [f32]) {
        assert_eq!(dst.len(), src.len(), "axpy length mismatch");
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += alpha * s;
        }
    }

    fn add(&self, out: &mut [f32], a: &[f32], b: &[f32]) {
        assert_eq!(out.len(), a.len(), "add length mismatch");
        assert_eq!(out.len(), b.len(), "add length mismatch");
        for ((o, &av), &bv) in out.iter_mut().zip(a).zip(b) {
            *o = av + bv;
        }
    }

    fn gelu(&self, out: &mut [f32], inp: &[f32]) {
        assert_eq!(out.len(), inp.len(), "gelu length mismatch");
        for (o, &x) in out.iter_mut().zip(inp) {
            let cube = 0.044715 * x * x * x;
            *o = 0.5 * x * (1.0 + (GELU_S * (x + cube)).tanh());
        }
    }

    fn gelu_grad(&self, dinp: &mut [f32], inp: &[f32], dout: &[f32]) {
        assert_eq!(dinp.len(), inp.len(), "gelu_grad length mismatch");
        assert_eq!(dinp.len(), dout.len(), "gelu_grad length mismatch");
        for ((di, &x), &dy) in dinp.iter_mut().zip(inp).zip(dout) {
            let cube = 0.044715 * x * x * x;
            let tanh_arg = GELU_S * (x + cube);
            let tanh_out = tanh_arg.tanh();
            let sech2 = 1.0 - tanh_out * tanh_out;
            let local =
                0.5 * (1.0 + tanh_out) + x * 0.5 * sech2 * GELU_S * (1.0 + 3.0 * 0.044715 * x * x);
            *di += local * dy;
        }
    }

    fn layernorm_row(
        &self,
        out: &mut [f32],
        x: &[f32],
        weight: &[f32],
        bias: &[f32],
    ) -> (f32, f32) {
        let c = x.len();
        assert_eq!(out.len(), c, "layernorm_row length mismatch");
        assert_eq!(weight.len(), c, "layernorm_row length mismatch");
        assert_eq!(bias.len(), c, "layernorm_row length mismatch");
        let m = x.iter().sum::<f32>() / c as f32;
        let var = x.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / c as f32;
        let rs = 1.0 / (var + LN_EPS).sqrt();
        for j in 0..c {
            out[j] = (x[j] - m) * rs * weight[j] + bias[j];
        }
        (m, rs)
    }

    fn layernorm_grad_row(
        &self,
        dinp_row: &mut [f32],
        dweight: &mut [f32],
        dbias: &mut [f32],
        dout_row: &[f32],
        x: &[f32],
        weight: &[f32],
        mean: f32,
        rstd: f32,
    ) {
        let c = x.len();
        assert_eq!(dinp_row.len(), c, "layernorm_grad_row length mismatch");
        assert_eq!(dweight.len(), c, "layernorm_grad_row length mismatch");
        assert_eq!(dbias.len(), c, "layernorm_grad_row length mismatch");
        assert_eq!(dout_row.len(), c, "layernorm_grad_row length mismatch");
        assert_eq!(weight.len(), c, "layernorm_grad_row length mismatch");

        // Two reductions over the row.
        let mut dnorm_mean = 0.0f32;
        let mut dnorm_norm_mean = 0.0f32;
        for j in 0..c {
            let norm = (x[j] - mean) * rstd;
            let dnorm = weight[j] * dout_row[j];
            dnorm_mean += dnorm;
            dnorm_norm_mean += dnorm * norm;
        }
        dnorm_mean /= c as f32;
        dnorm_norm_mean /= c as f32;

        for j in 0..c {
            let norm = (x[j] - mean) * rstd;
            let dnorm = weight[j] * dout_row[j];
            dbias[j] += dout_row[j];
            dweight[j] += norm * dout_row[j];
            dinp_row[j] += (dnorm - dnorm_mean - norm * dnorm_norm_mean) * rstd;
        }
    }

    fn softmax_row(&self, probs: &mut [f32], logits: &[f32]) {
        let v = logits.len();
        assert_eq!(probs.len(), v, "softmax_row length mismatch");
        let maxv = logits.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0f32;
        for j in 0..v {
            let e = (logits[j] - maxv).exp();
            probs[j] = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        probs.iter_mut().for_each(|x| *x *= inv);
    }
}
