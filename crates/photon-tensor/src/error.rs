use std::fmt;

/// Errors produced by tensor construction, reshaping and serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape dims.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors were expected to have identical shapes but did not.
    ShapeMismatch {
        /// Left-hand shape.
        left: Vec<usize>,
        /// Right-hand shape.
        right: Vec<usize>,
    },
    /// A reshape was requested to a shape with a different element count.
    InvalidReshape {
        /// Element count of the existing tensor.
        numel: usize,
        /// Element count implied by the requested shape.
        requested: usize,
    },
    /// A serialized buffer was truncated or corrupt.
    Deserialize(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but {actual} were provided"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::InvalidReshape { numel, requested } => write!(
                f,
                "cannot reshape tensor of {numel} elements to shape with {requested} elements"
            ),
            TensorError::Deserialize(msg) => write!(f, "deserialization failed: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                left: vec![2, 2],
                right: vec![3],
            },
            TensorError::InvalidReshape {
                numel: 6,
                requested: 5,
            },
            TensorError::Deserialize("truncated".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
