//! SIMD-vs-scalar parity properties for every kernel routed through the
//! `Backend` trait, plus bf16 conversion properties.
//!
//! The two backends are tolerance-equal, not bit-equal: the SIMD path
//! reassociates reductions and uses a polynomial `exp`. Each property
//! bounds the divergence by a mixed absolute/relative tolerance scaled to
//! the reduction length. On hosts without AVX2/FMA the parity properties
//! degenerate to scalar-vs-scalar and pass trivially — the suite still
//! runs, so `PHOTON_BACKEND=simd` CI jobs skip cleanly on such machines.

use photon_tensor::backend::{by_kind, BackendKind};
use photon_tensor::ops::Gemm;
use photon_tensor::{bf16_from_f32, bf16_to_f32, SeedStream};
use proptest::prelude::*;

/// Mixed absolute/relative closeness: |a-b| <= tol * max(1, |a|, |b|).
fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

fn randn(rng: &mut SeedStream, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.next_normal()).collect()
}

proptest! {
    /// All three GEMM layouts agree between backends, with a tolerance
    /// that grows with the reduction length k.
    #[test]
    fn gemm_layouts_match(
        m in 1usize..24, k in 1usize..48, n in 1usize..24,
        layout in 0u8..3,
        seed in any::<u64>(),
    ) {
        let scalar = by_kind(BackendKind::Scalar);
        let simd = by_kind(BackendKind::Simd);
        let mut rng = SeedStream::new(seed);
        let a = randn(&mut rng, m * k);
        let b = randn(&mut rng, k * n);
        let spec = match layout {
            0 => Gemm::new(m, k, n),
            1 => Gemm::new(m, k, n).transpose_a(),
            _ => Gemm::new(m, k, n).transpose_b(),
        }
        .alpha(0.5);
        let mut c_s = vec![0.1; m * n];
        let mut c_v = vec![0.1; m * n];
        match layout {
            0 => {
                scalar.gemm_nn(spec, &a, &b, &mut c_s);
                simd.gemm_nn(spec, &a, &b, &mut c_v);
            }
            1 => {
                scalar.gemm_tn(spec, &a, &b, &mut c_s);
                simd.gemm_tn(spec, &a, &b, &mut c_v);
            }
            _ => {
                scalar.gemm_nt(spec, &a, &b, &mut c_s);
                simd.gemm_nt(spec, &a, &b, &mut c_v);
            }
        }
        let tol = 1e-5 * (k as f32).sqrt().max(1.0) * 8.0;
        for (s, v) in c_s.iter().zip(&c_v) {
            prop_assert!(close(*s, *v, tol), "{s} vs {v} (k={k})");
        }
    }

    /// dot / axpy / add agree between backends.
    #[test]
    fn vector_kernels_match(n in 1usize..300, seed in any::<u64>()) {
        let scalar = by_kind(BackendKind::Scalar);
        let simd = by_kind(BackendKind::Simd);
        let mut rng = SeedStream::new(seed);
        let x = randn(&mut rng, n);
        let y = randn(&mut rng, n);

        let tol = 1e-5 * (n as f32).sqrt().max(1.0) * 4.0;
        prop_assert!(close(scalar.dot(&x, &y), simd.dot(&x, &y), tol));

        let mut acc_s = y.clone();
        let mut acc_v = y.clone();
        scalar.axpy(0.75, &x, &mut acc_s);
        simd.axpy(0.75, &x, &mut acc_v);
        for (s, v) in acc_s.iter().zip(&acc_v) {
            prop_assert!(close(*s, *v, 1e-6));
        }

        let mut sum_s = vec![0.0; n];
        let mut sum_v = vec![0.0; n];
        scalar.add(&mut sum_s, &x, &y);
        simd.add(&mut sum_v, &x, &y);
        prop_assert_eq!(sum_s, sum_v); // elementwise add is exact
    }

    /// gelu forward/backward agree between backends (polynomial tanh in
    /// the SIMD path).
    #[test]
    fn gelu_matches(n in 1usize..200, seed in any::<u64>()) {
        let scalar = by_kind(BackendKind::Scalar);
        let simd = by_kind(BackendKind::Simd);
        let mut rng = SeedStream::new(seed);
        let x: Vec<f32> = (0..n).map(|_| rng.next_normal() * 4.0).collect();
        let dy = randn(&mut rng, n);

        let mut out_s = vec![0.0; n];
        let mut out_v = vec![0.0; n];
        scalar.gelu(&mut out_s, &x);
        simd.gelu(&mut out_v, &x);
        for (s, v) in out_s.iter().zip(&out_v) {
            prop_assert!(close(*s, *v, 1e-4));
        }

        let mut dx_s = vec![0.0; n];
        let mut dx_v = vec![0.0; n];
        scalar.gelu_grad(&mut dx_s, &x, &dy);
        simd.gelu_grad(&mut dx_v, &x, &dy);
        for (s, v) in dx_s.iter().zip(&dx_v) {
            prop_assert!(close(*s, *v, 1e-3));
        }
    }

    /// layernorm forward/backward agree between backends.
    #[test]
    fn layernorm_matches(c in 1usize..160, seed in any::<u64>()) {
        let scalar = by_kind(BackendKind::Scalar);
        let simd = by_kind(BackendKind::Simd);
        let mut rng = SeedStream::new(seed);
        let x = randn(&mut rng, c);
        let w: Vec<f32> = (0..c).map(|_| 1.0 + rng.next_normal() * 0.1).collect();
        let b = randn(&mut rng, c);
        let dy = randn(&mut rng, c);

        let mut out_s = vec![0.0; c];
        let mut out_v = vec![0.0; c];
        let (mean_s, rstd_s) = scalar.layernorm_row(&mut out_s, &x, &w, &b);
        let (mean_v, rstd_v) = simd.layernorm_row(&mut out_v, &x, &w, &b);
        prop_assert!(close(mean_s, mean_v, 1e-4));
        prop_assert!(close(rstd_s, rstd_v, 1e-3));
        for (s, v) in out_s.iter().zip(&out_v) {
            prop_assert!(close(*s, *v, 1e-3));
        }

        let mut dx_s = vec![0.0; c];
        let mut dx_v = vec![0.0; c];
        let mut dw_s = vec![0.0; c];
        let mut dw_v = vec![0.0; c];
        let mut db_s = vec![0.0; c];
        let mut db_v = vec![0.0; c];
        scalar.layernorm_grad_row(&mut dx_s, &mut dw_s, &mut db_s, &dy, &x, &w, mean_s, rstd_s);
        simd.layernorm_grad_row(&mut dx_v, &mut dw_v, &mut db_v, &dy, &x, &w, mean_v, rstd_v);
        for (s, v) in dx_s.iter().zip(&dx_v) {
            prop_assert!(close(*s, *v, 1e-3));
        }
        for (s, v) in dw_s.iter().zip(&dw_v).chain(db_s.iter().zip(&db_v)) {
            prop_assert!(close(*s, *v, 1e-3));
        }
    }

    /// softmax agrees between backends (polynomial exp in the SIMD path):
    /// close per-probability and both normalize to 1.
    #[test]
    fn softmax_matches(n in 1usize..200, scale in 0.1f32..8.0, seed in any::<u64>()) {
        let scalar = by_kind(BackendKind::Scalar);
        let simd = by_kind(BackendKind::Simd);
        let mut rng = SeedStream::new(seed);
        let logits: Vec<f32> = (0..n).map(|_| rng.next_normal() * scale).collect();
        let mut p_s = vec![0.0; n];
        let mut p_v = vec![0.0; n];
        scalar.softmax_row(&mut p_s, &logits);
        simd.softmax_row(&mut p_v, &logits);
        for (s, v) in p_s.iter().zip(&p_v) {
            prop_assert!((s - v).abs() < 1e-5, "{s} vs {v}");
        }
        let sum: f32 = p_v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// bf16 round-trip: finite values come back within 2^-8 relative
    /// error, non-finite values keep their class, signs survive.
    #[test]
    fn bf16_round_trip_bounded(bits in any::<u32>()) {
        let x = f32::from_bits(bits);
        let y = bf16_to_f32(bf16_from_f32(x));
        if x.is_nan() {
            prop_assert!(y.is_nan());
        } else if x.is_infinite() {
            prop_assert_eq!(x, y);
        } else {
            // RNE on an 8-bit significand: half-ULP relative bound, except
            // near the overflow boundary where rounding may carry to Inf,
            // and in the subnormal range where the error is absolute.
            if y.is_infinite() {
                prop_assert!(x.abs() > 3.3e38, "{x} overflowed to {y}");
            } else if x.abs() < f32::MIN_POSITIVE {
                prop_assert!((y - x).abs() <= f32::MIN_POSITIVE);
            } else {
                prop_assert!(
                    (y - x).abs() <= x.abs() / 256.0,
                    "{x} -> {y}"
                );
            }
            prop_assert!(
                y == 0.0 || y.is_sign_positive() == x.is_sign_positive()
            );
        }
    }

    /// bf16 encode/decode agrees with the reference semantics: decode is
    /// exact (a widening), and encoding an already-representable value is
    /// the identity.
    #[test]
    fn bf16_idempotent(bits in any::<u16>()) {
        let x = bf16_to_f32(bits);
        let re = bf16_from_f32(x);
        if x.is_nan() {
            prop_assert!(bf16_to_f32(re).is_nan());
        } else {
            prop_assert_eq!(re, bits);
        }
    }
}
