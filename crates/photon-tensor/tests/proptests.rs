//! Property-based tests for the tensor substrate.

use bytes::BytesMut;
use photon_tensor::{ops, read_tensor, write_tensor, SeedStream, Tensor};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1.0e3f32..1.0e3f32).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    /// Serialization is lossless for any finite tensor.
    #[test]
    fn tensor_serde_roundtrip(
        dims in proptest::collection::vec(1usize..6, 1..4),
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let t = Tensor::randn(dims, 1.0, &mut rng);
        let mut out = BytesMut::new();
        write_tensor(&mut out, &t);
        let back = read_tensor(&mut out.freeze()).unwrap();
        prop_assert_eq!(back, t);
    }

    /// GEMM is linear in its left operand: (A1 + A2) B == A1 B + A2 B.
    #[test]
    fn gemm_left_linearity(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let a1: Vec<f32> = (0..m * k).map(|_| rng.next_normal()).collect();
        let a2: Vec<f32> = (0..m * k).map(|_| rng.next_normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.next_normal()).collect();
        let a_sum: Vec<f32> = a1.iter().zip(&a2).map(|(x, y)| x + y).collect();

        let mut c_sum = vec![0.0; m * n];
        ops::gemm(ops::Gemm::new(m, k, n), &a_sum, &b, &mut c_sum);

        let mut c1 = vec![0.0; m * n];
        ops::gemm(ops::Gemm::new(m, k, n), &a1, &b, &mut c1);
        let mut c2 = vec![0.0; m * n];
        ops::gemm(ops::Gemm::new(m, k, n), &a2, &b, &mut c2);
        ops::add_inplace(&mut c1, &c2);

        prop_assert!(ops::max_abs_diff(&c_sum, &c1) < 1e-3);
    }

    /// Transposed-operand GEMM agrees with plain GEMM on transposed buffers.
    #[test]
    fn gemm_transpose_consistency(
        m in 1usize..5, k in 1usize..5, n in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.next_normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.next_normal()).collect();
        // Physically transpose b into (n, k).
        let mut bt = vec![0.0; k * n];
        for i in 0..k {
            for j in 0..n {
                bt[j * k + i] = b[i * n + j];
            }
        }
        let mut c_plain = vec![0.0; m * n];
        ops::gemm(ops::Gemm::new(m, k, n), &a, &b, &mut c_plain);
        let mut c_t = vec![0.0; m * n];
        ops::gemm(ops::Gemm::new(m, k, n).transpose_b(), &a, &bt, &mut c_t);
        prop_assert!(ops::max_abs_diff(&c_plain, &c_t) < 1e-3);
    }

    /// axpy(a, x, y) then axpy(-a, x, y) restores y.
    #[test]
    fn axpy_inverse(
        xs in proptest::collection::vec(finite_f32(), 1..64),
        alpha in -10.0f32..10.0,
    ) {
        let ys: Vec<f32> = xs.iter().map(|v| v * 0.5 + 1.0).collect();
        let mut out = ys.clone();
        ops::axpy(alpha, &xs, &mut out);
        ops::axpy(-alpha, &xs, &mut out);
        for (o, y) in out.iter().zip(&ys) {
            prop_assert!((o - y).abs() <= 1e-2 + y.abs() * 1e-4);
        }
    }

    /// The L2 norm is absolutely homogeneous: ||c x|| == |c| ||x||.
    #[test]
    fn l2_norm_homogeneous(
        xs in proptest::collection::vec(finite_f32(), 1..64),
        c in -5.0f32..5.0,
    ) {
        let scaled: Vec<f32> = xs.iter().map(|v| c * v).collect();
        let lhs = ops::l2_norm(&scaled);
        let rhs = c.abs() * ops::l2_norm(&xs);
        prop_assert!((lhs - rhs).abs() <= 1e-2 + rhs.abs() * 1e-4);
    }

    /// sample_indices always returns k sorted distinct indices below n.
    #[test]
    fn sample_indices_invariants(n in 1usize..100, seed in any::<u64>()) {
        let mut rng = SeedStream::new(seed);
        let k = rng.next_below(n) + 1;
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// The pooled GEMM agrees with the serial reference for every transpose
    /// variant, arbitrary alpha/beta, ragged shapes, and 1..=8 threads. The
    /// split-k path (trans_a without trans_b) reduces partial products in
    /// deterministic chunk order, so only rounding-level drift is allowed.
    #[test]
    fn par_gemm_matches_serial_all_variants(
        m in 1usize..24, k in 1usize..24, n in 1usize..24,
        trans_a in any::<bool>(),
        trans_b in any::<bool>(),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        threads in 1usize..9,
        seed in any::<u64>(),
    ) {
        let mut rng = SeedStream::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.next_normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.next_normal()).collect();
        let c0: Vec<f32> = (0..m * n).map(|_| rng.next_normal()).collect();

        let mut spec = ops::Gemm::new(m, k, n).alpha(alpha).beta(beta);
        if trans_a {
            spec = spec.transpose_a();
        }
        if trans_b {
            spec = spec.transpose_b();
        }

        let mut serial = c0.clone();
        ops::gemm(spec, &a, &b, &mut serial);
        let mut par = c0.clone();
        ops::par_gemm(spec, &a, &b, &mut par, threads);
        prop_assert!(
            ops::max_abs_diff(&serial, &par) < 1e-3,
            "variant (ta={}, tb={}) diverged at {} threads", trans_a, trans_b, threads
        );

        // gemm_auto under an explicit budget must take the same path.
        let mut auto = c0.clone();
        ops::pool::with_parallelism(threads, || {
            ops::gemm_auto(spec, &a, &b, &mut auto);
        });
        prop_assert!(ops::max_abs_diff(&serial, &auto) < 1e-3);
    }
}
