use crate::{training_bytes, SiloSpec};
use photon_nn::ModelConfig;
use serde::{Deserialize, Serialize};

/// The local execution strategy an LLM client selects for its hardware —
/// the §4 "Optimal Training Strategy Selection" heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainingStrategy {
    /// One dedicated GPU trains the whole model.
    SingleGpu,
    /// Replicated data parallelism across GPUs (model fits per GPU).
    Ddp {
        /// Number of data-parallel workers.
        n_gpus: usize,
    },
    /// Fully sharded data parallelism (model states sharded).
    Fsdp {
        /// Number of sharding workers.
        n_gpus: usize,
    },
    /// Inter-node bandwidth too low for collectives: build a
    /// sub-federation with one partition per node and locally aggregate
    /// (Algorithm 1, L.19–25).
    SubFederation {
        /// Number of independent local partitions.
        partitions: usize,
    },
}

impl TrainingStrategy {
    /// Number of model replicas or shards running concurrently.
    pub fn parallel_workers(&self) -> usize {
        match *self {
            TrainingStrategy::SingleGpu => 1,
            TrainingStrategy::Ddp { n_gpus } | TrainingStrategy::Fsdp { n_gpus } => n_gpus,
            TrainingStrategy::SubFederation { partitions } => partitions,
        }
    }
}

impl std::fmt::Display for TrainingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TrainingStrategy::SingleGpu => write!(f, "single-gpu"),
            TrainingStrategy::Ddp { n_gpus } => write!(f, "ddp({n_gpus})"),
            TrainingStrategy::Fsdp { n_gpus } => write!(f, "fsdp({n_gpus})"),
            TrainingStrategy::SubFederation { partitions } => {
                write!(f, "sub-federation({partitions})")
            }
        }
    }
}

/// Whether model + optimizer states (unsharded, batch 1, with
/// checkpointing) fit on one of the silo's GPUs.
fn fits_single_gpu(config: &ModelConfig, silo: &SiloSpec) -> bool {
    let budget = (silo.gpu().vram_bytes() as f64 * 0.9) as usize;
    training_bytes(config, 1, 1, true).total() <= budget
}

/// The §4 strategy-selection heuristic:
///
/// 1. one GPU and the model fits → [`TrainingStrategy::SingleGpu`];
/// 2. one multi-GPU node → DDP if a replica fits per GPU, else FSDP;
/// 3. multiple nodes → DDP/FSDP if the inter-node link is RDMA-class,
///    else a sub-federation with one partition per node.
///
/// # Panics
/// Panics if the silo has no nodes or no GPUs.
pub fn select_strategy(config: &ModelConfig, silo: &SiloSpec) -> TrainingStrategy {
    let total = silo.total_gpus();
    assert!(total > 0, "silo has no GPUs");
    let fits = fits_single_gpu(config, silo);

    if silo.nodes.len() == 1 {
        let n_gpus = silo.nodes[0].n_gpus;
        if n_gpus == 1 {
            if fits {
                return TrainingStrategy::SingleGpu;
            }
            // A single GPU that cannot hold the model: FSDP degenerates to
            // offload; report FSDP(1) so the caller can detect the corner.
            return TrainingStrategy::Fsdp { n_gpus: 1 };
        }
        return if fits {
            TrainingStrategy::Ddp { n_gpus }
        } else {
            TrainingStrategy::Fsdp { n_gpus }
        };
    }

    if silo.inter_node.has_rdma() {
        if fits {
            TrainingStrategy::Ddp { n_gpus: total }
        } else {
            TrainingStrategy::Fsdp { n_gpus: total }
        }
    } else {
        TrainingStrategy::SubFederation {
            partitions: silo.nodes.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuSpec, Interconnect, NodeSpec, Region};

    fn multi_node_silo(inter: Interconnect, nodes: usize, gpus_per: usize) -> SiloSpec {
        SiloSpec {
            name: "multi".into(),
            nodes: (0..nodes)
                .map(|_| NodeSpec::nvlink(GpuSpec::h100(), gpus_per))
                .collect(),
            inter_node: inter,
            region: Region::Texas,
        }
    }

    #[test]
    fn rule1_single_gpu() {
        let silo = SiloSpec::single_node("s", 1, GpuSpec::h100(), Region::Utah);
        assert_eq!(
            select_strategy(&ModelConfig::paper_125m(), &silo),
            TrainingStrategy::SingleGpu
        );
    }

    #[test]
    fn rule2_ddp_when_replica_fits() {
        let silo = SiloSpec::single_node("s", 4, GpuSpec::h100(), Region::Utah);
        assert_eq!(
            select_strategy(&ModelConfig::paper_1_3b(), &silo),
            TrainingStrategy::Ddp { n_gpus: 4 }
        );
    }

    #[test]
    fn rule2_fsdp_when_model_too_large() {
        let silo = SiloSpec::single_node("s", 8, GpuSpec::h100(), Region::Utah);
        assert_eq!(
            select_strategy(&ModelConfig::paper_7b(), &silo),
            TrainingStrategy::Fsdp { n_gpus: 8 }
        );
    }

    #[test]
    fn rule3_rdma_cluster_uses_collectives() {
        let silo = multi_node_silo(Interconnect::InfiniBand { gbps: 400.0 }, 2, 8);
        assert_eq!(
            select_strategy(&ModelConfig::paper_7b(), &silo),
            TrainingStrategy::Fsdp { n_gpus: 16 }
        );
    }

    #[test]
    fn rule3_slow_cluster_builds_sub_federation() {
        let silo = multi_node_silo(Interconnect::Ethernet { gbps: 10.0 }, 3, 4);
        assert_eq!(
            select_strategy(&ModelConfig::paper_1_3b(), &silo),
            TrainingStrategy::SubFederation { partitions: 3 }
        );
    }

    #[test]
    fn parallel_workers_counts() {
        assert_eq!(TrainingStrategy::SingleGpu.parallel_workers(), 1);
        assert_eq!(TrainingStrategy::Ddp { n_gpus: 4 }.parallel_workers(), 4);
        assert_eq!(
            TrainingStrategy::SubFederation { partitions: 3 }.parallel_workers(),
            3
        );
    }

    #[test]
    fn display_strings() {
        assert_eq!(TrainingStrategy::Ddp { n_gpus: 2 }.to_string(), "ddp(2)");
        assert_eq!(
            TrainingStrategy::SubFederation { partitions: 3 }.to_string(),
            "sub-federation(3)"
        );
    }
}
