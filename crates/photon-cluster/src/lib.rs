//! # photon-cluster
//!
//! A simulated hardware substrate standing in for the paper's multi-region
//! H100 deployment (Table 1 / Fig. 2). It provides:
//!
//! * GPU / node / silo specifications with VRAM and peak-FLOPs data;
//! * the five-region topology and inter-region bandwidth matrix of Fig. 2;
//! * a training-memory (VRAM) model and a DeepSpeed-AutoTuner-style batch
//!   size heuristic (§5.1);
//! * the §4 training-strategy selection heuristic (single-GPU / DDP / FSDP /
//!   sub-federation);
//! * throughput and Model-FLOPs-Utilization accounting with the paper's
//!   measured per-model throughputs ν (Appendix B.1).
//!
//! ```
//! use photon_cluster::{GpuSpec, SiloSpec, select_strategy, TrainingStrategy};
//! use photon_nn::ModelConfig;
//!
//! let silo = SiloSpec::single_node("lab", 1, GpuSpec::h100(), photon_cluster::Region::England);
//! let s = select_strategy(&ModelConfig::paper_125m(), &silo);
//! assert_eq!(s, TrainingStrategy::SingleGpu);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod autotune;
mod hardware;
mod regions;
mod strategy;
mod throughput;
mod vram;

pub use autotune::{autotune_batch, AutoTuneResult};
pub use hardware::{GpuSpec, Interconnect, NodeSpec, SiloSpec};
pub use regions::{paper_silos, Region, RegionGraph};
pub use strategy::{select_strategy, TrainingStrategy};
pub use throughput::{mfu, tokens_per_second, PaperModel, ThroughputSetting};
pub use vram::{activation_bytes_per_sample, training_bytes, MemoryBreakdown};
