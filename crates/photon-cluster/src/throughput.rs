use photon_nn::ModelConfig;
use serde::{Deserialize, Serialize};

/// The paper's evaluated model sizes, with their measured local
/// throughputs ν (batches/second, Appendix B.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperModel {
    /// 125M parameters.
    M125,
    /// 1.3B parameters.
    B1_3,
    /// 3B parameters.
    B3,
    /// 7B parameters.
    B7,
}

/// Whether the throughput figure refers to the federated client pipeline or
/// the centralized (fully data-parallel) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThroughputSetting {
    /// Federated client (one silo's local pipeline).
    Federated,
    /// Centralized distributed-data-parallel baseline.
    Centralized,
}

impl PaperModel {
    /// All evaluated sizes.
    pub fn all() -> [PaperModel; 4] {
        [
            PaperModel::M125,
            PaperModel::B1_3,
            PaperModel::B3,
            PaperModel::B7,
        ]
    }

    /// Table 1 / Table 2 label.
    pub fn label(&self) -> &'static str {
        match self {
            PaperModel::M125 => "125M",
            PaperModel::B1_3 => "1.3B",
            PaperModel::B3 => "3B",
            PaperModel::B7 => "7B",
        }
    }

    /// The corresponding Table 4 architecture.
    pub fn config(&self) -> ModelConfig {
        match self {
            PaperModel::M125 => ModelConfig::paper_125m(),
            PaperModel::B1_3 => ModelConfig::paper_1_3b(),
            PaperModel::B3 => ModelConfig::paper_3b(),
            PaperModel::B7 => ModelConfig::paper_7b(),
        }
    }

    /// Measured local throughput ν in batches/second (Appendix B.1):
    /// 125M: 2.0 (both); 1.3B: 0.147 fed / 0.839 cent; 3B: 0.144 / 0.395;
    /// 7B: 0.032 / 0.12.
    pub fn nu(&self, setting: ThroughputSetting) -> f64 {
        use ThroughputSetting::*;
        match (self, setting) {
            (PaperModel::M125, _) => 2.0,
            (PaperModel::B1_3, Federated) => 0.147,
            (PaperModel::B1_3, Centralized) => 0.839,
            (PaperModel::B3, Federated) => 0.144,
            (PaperModel::B3, Centralized) => 0.395,
            (PaperModel::B7, Federated) => 0.032,
            (PaperModel::B7, Centralized) => 0.12,
        }
    }

    /// Batch size used with ν (Table 5: local batch for federated, global
    /// batch for centralized).
    pub fn batch_size(&self, setting: ThroughputSetting) -> usize {
        use ThroughputSetting::*;
        match (self, setting) {
            (PaperModel::M125, Federated) => 32,
            (PaperModel::M125, Centralized) => 256,
            (PaperModel::B1_3, _) => 512,
            (PaperModel::B3, _) => 512,
            (PaperModel::B7, _) => 1024,
        }
    }

    /// Cosine-schedule duration in steps (Table 5), federated variant.
    pub fn schedule_steps(&self) -> u64 {
        match self {
            PaperModel::M125 => 40_960,
            PaperModel::B1_3 => 24_800,
            PaperModel::B3 => 51_500,
            PaperModel::B7 => 63_900,
        }
    }

    /// Maximum learning rate (Table 5).
    pub fn max_lr(&self) -> f32 {
        match self {
            PaperModel::M125 => 6.0e-4,
            PaperModel::B1_3 => 2.0e-4,
            PaperModel::B3 => 1.6e-4,
            PaperModel::B7 => 1.2e-4,
        }
    }
}

impl std::fmt::Display for PaperModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Tokens/second from a batches/second throughput.
pub fn tokens_per_second(config: &ModelConfig, batches_per_sec: f64, batch_size: usize) -> f64 {
    batches_per_sec * batch_size as f64 * config.seq_len as f64
}

/// Model FLOPs Utilization: achieved training FLOPs over peak hardware
/// FLOPs (Table 2's "Local MFU per device").
///
/// # Panics
/// Panics if `n_gpus` or `peak_tflops` is zero.
pub fn mfu(config: &ModelConfig, tokens_per_sec: f64, n_gpus: usize, peak_tflops: f64) -> f64 {
    assert!(n_gpus > 0 && peak_tflops > 0.0, "invalid hardware spec");
    let achieved = config.flops_per_token() * tokens_per_sec;
    achieved / (n_gpus as f64 * peak_tflops * 1e12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuSpec;

    #[test]
    fn nu_values_match_appendix_b1() {
        assert_eq!(PaperModel::M125.nu(ThroughputSetting::Federated), 2.0);
        assert_eq!(PaperModel::B1_3.nu(ThroughputSetting::Centralized), 0.839);
        assert_eq!(PaperModel::B7.nu(ThroughputSetting::Federated), 0.032);
    }

    #[test]
    fn mfu_in_plausible_range_for_paper_models() {
        // Fed-1.3B: ν = 0.147 batches/s of 512×2048 tokens on 8 H100s.
        let cfg = PaperModel::B1_3.config();
        let tps = tokens_per_second(&cfg, 0.147, 512);
        let u = mfu(&cfg, tps, 8, GpuSpec::h100().peak_tflops_bf16);
        assert!(u > 0.1 && u < 1.5, "mfu={u}");
    }

    #[test]
    fn mfu_scales_inversely_with_gpu_count() {
        let cfg = PaperModel::M125.config();
        let tps = tokens_per_second(&cfg, 2.0, 32);
        let one = mfu(&cfg, tps, 1, 989.0);
        let two = mfu(&cfg, tps, 2, 989.0);
        assert!((one - 2.0 * two).abs() < 1e-12);
    }

    #[test]
    fn labels_and_configs_align() {
        for m in PaperModel::all() {
            assert!(!m.label().is_empty());
            m.config().validate();
            assert!(m.max_lr() > 0.0);
            assert!(m.schedule_steps() > 0);
        }
        // Larger models get smaller peak learning rates (Table 5).
        assert!(PaperModel::M125.max_lr() > PaperModel::B7.max_lr());
    }
}
