use crate::{training_bytes, GpuSpec, TrainingStrategy};
use photon_nn::ModelConfig;

/// Result of the batch-size autotuning heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoTuneResult {
    /// Micro-batch size per GPU (0 means the model cannot train at all).
    pub per_gpu_batch: usize,
    /// Whether activation checkpointing had to be enabled.
    pub activation_ckpt: bool,
}

impl AutoTuneResult {
    /// Whether any viable configuration was found.
    pub fn is_viable(&self) -> bool {
        self.per_gpu_batch > 0
    }
}

/// DeepSpeed-AutoTuner-style batch-size selection (§5.1): find the largest
/// power-of-two per-GPU batch that fits in VRAM with ~10% headroom,
/// preferring no activation checkpointing (it costs ~30% throughput), and
/// falling back to checkpointing before giving up.
///
/// `shard_ways` is the parameter/optimizer sharding degree implied by the
/// chosen [`TrainingStrategy`] (1 for single-GPU/DDP, the GPU count for
/// FSDP).
pub fn autotune_batch(
    config: &ModelConfig,
    gpu: &GpuSpec,
    strategy: TrainingStrategy,
    max_batch: usize,
) -> AutoTuneResult {
    let shard_ways = match strategy {
        TrainingStrategy::Fsdp { n_gpus } => n_gpus,
        _ => 1,
    };
    let budget = (gpu.vram_bytes() as f64 * 0.9) as usize;

    for ckpt in [false, true] {
        let mut best = 0usize;
        let mut b = 1usize;
        while b <= max_batch {
            if training_bytes(config, b, shard_ways, ckpt).total() <= budget {
                best = b;
                b *= 2;
            } else {
                break;
            }
        }
        if best > 0 {
            return AutoTuneResult {
                per_gpu_batch: best,
                activation_ckpt: ckpt,
            };
        }
    }
    AutoTuneResult {
        per_gpu_batch: 0,
        activation_ckpt: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_125m_batch_32() {
        // §5.1: 125M on one H100 -> B_l = 32, no checkpointing.
        let r = autotune_batch(
            &ModelConfig::paper_125m(),
            &GpuSpec::h100(),
            TrainingStrategy::SingleGpu,
            64,
        );
        assert_eq!(r.per_gpu_batch, 32);
        assert!(!r.activation_ckpt);
        assert!(r.is_viable());
    }

    #[test]
    fn seven_b_fsdp_finds_a_batch() {
        let r = autotune_batch(
            &ModelConfig::paper_7b(),
            &GpuSpec::h100(),
            TrainingStrategy::Fsdp { n_gpus: 8 },
            64,
        );
        assert!(r.is_viable());
    }

    #[test]
    fn seven_b_single_gpu_is_not_viable() {
        let r = autotune_batch(
            &ModelConfig::paper_7b(),
            &GpuSpec::h100(),
            TrainingStrategy::SingleGpu,
            64,
        );
        assert!(!r.is_viable());
    }

    #[test]
    fn commodity_gpu_needs_checkpointing_earlier() {
        // 350M on a 24 GiB consumer card: small batch and/or checkpointing.
        let big = autotune_batch(
            &ModelConfig::paper_350m(),
            &GpuSpec::h100(),
            TrainingStrategy::SingleGpu,
            64,
        );
        let small = autotune_batch(
            &ModelConfig::paper_350m(),
            &GpuSpec::rtx4090(),
            TrainingStrategy::SingleGpu,
            64,
        );
        assert!(small.per_gpu_batch < big.per_gpu_batch || small.activation_ckpt);
    }

    #[test]
    fn max_batch_caps_result() {
        let r = autotune_batch(
            &ModelConfig::proxy_tiny(),
            &GpuSpec::h100(),
            TrainingStrategy::SingleGpu,
            16,
        );
        assert_eq!(r.per_gpu_batch, 16);
    }
}
