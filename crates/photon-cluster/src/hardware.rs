use crate::Region;
use serde::{Deserialize, Serialize};

/// A hardware accelerator specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// On-device memory in GiB.
    pub vram_gib: f64,
    /// Peak dense BF16 tensor throughput in TFLOP/s.
    pub peak_tflops_bf16: f64,
}

impl GpuSpec {
    /// NVIDIA H100 SXM (the paper's accelerator).
    pub fn h100() -> Self {
        GpuSpec {
            name: "H100-SXM".to_string(),
            vram_gib: 80.0,
            peak_tflops_bf16: 989.0,
        }
    }

    /// NVIDIA A100 80GB.
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100-80GB".to_string(),
            vram_gib: 80.0,
            peak_tflops_bf16: 312.0,
        }
    }

    /// A consumer GPU for the paper's "Collaboration via Commodity
    /// Hardware" scenario (§2.1).
    pub fn rtx4090() -> Self {
        GpuSpec {
            name: "RTX-4090".to_string(),
            vram_gib: 24.0,
            peak_tflops_bf16: 165.0,
        }
    }

    /// VRAM in bytes.
    pub fn vram_bytes(&self) -> usize {
        (self.vram_gib * 1024.0 * 1024.0 * 1024.0) as usize
    }
}

/// Physical link class between devices or servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Interconnect {
    /// NVLink / NVSwitch within a server (RDMA-class).
    NvLink,
    /// InfiniBand between servers at a given signalling rate.
    InfiniBand {
        /// Link speed in Gbps.
        gbps: f64,
    },
    /// Commodity Ethernet at a given rate.
    Ethernet {
        /// Link speed in Gbps.
        gbps: f64,
    },
}

impl Interconnect {
    /// Effective bandwidth in Gbps.
    pub fn gbps(&self) -> f64 {
        match *self {
            // NVLink 4: 900 GB/s aggregate = 7200 Gbps.
            Interconnect::NvLink => 7200.0,
            Interconnect::InfiniBand { gbps } | Interconnect::Ethernet { gbps } => gbps,
        }
    }

    /// Whether the link supports RDMA-class collective operations — the
    /// `HasRDMA` predicate of Algorithm 1 (L.16).
    pub fn has_rdma(&self) -> bool {
        match *self {
            Interconnect::NvLink | Interconnect::InfiniBand { .. } => true,
            // The paper treats >= 100 Gbps datacenter Ethernet (RoCE) as
            // adequate for standard distributed training (§2.4).
            Interconnect::Ethernet { gbps } => gbps >= 100.0,
        }
    }
}

/// One server: a set of identical GPUs joined by an intra-node link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// GPUs in this server (homogeneous).
    pub gpu: GpuSpec,
    /// Number of GPUs.
    pub n_gpus: usize,
    /// Link between GPUs in the server.
    pub intra_node: Interconnect,
}

impl NodeSpec {
    /// A standard NVLink server with `n_gpus` of the given model.
    pub fn nvlink(gpu: GpuSpec, n_gpus: usize) -> Self {
        NodeSpec {
            gpu,
            n_gpus,
            intra_node: Interconnect::NvLink,
        }
    }
}

/// One federation participant's compute silo: servers, their interconnect,
/// and the region that determines wide-area bandwidth (Table 1 rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiloSpec {
    /// Participant label.
    pub name: String,
    /// Servers in the silo.
    pub nodes: Vec<NodeSpec>,
    /// Link between servers in the silo.
    pub inter_node: Interconnect,
    /// Geographic region (drives Fig. 2 bandwidths).
    pub region: Region,
}

impl SiloSpec {
    /// A single-server silo with `n_gpus` GPUs over NVLink.
    pub fn single_node(
        name: impl Into<String>,
        n_gpus: usize,
        gpu: GpuSpec,
        region: Region,
    ) -> Self {
        SiloSpec {
            name: name.into(),
            nodes: vec![NodeSpec::nvlink(gpu, n_gpus)],
            inter_node: Interconnect::Ethernet { gbps: 10.0 },
            region,
        }
    }

    /// Total GPU count across nodes.
    pub fn total_gpus(&self) -> usize {
        self.nodes.iter().map(|n| n.n_gpus).sum()
    }

    /// Aggregate peak TFLOP/s across the silo.
    pub fn total_peak_tflops(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.gpu.peak_tflops_bf16 * n.n_gpus as f64)
            .sum()
    }

    /// The GPU spec of the first node (silos are homogeneous in the paper).
    ///
    /// # Panics
    /// Panics if the silo has no nodes.
    pub fn gpu(&self) -> &GpuSpec {
        &self.nodes.first().expect("silo has at least one node").gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_presets() {
        assert_eq!(GpuSpec::h100().vram_gib, 80.0);
        assert!(GpuSpec::h100().peak_tflops_bf16 > GpuSpec::a100().peak_tflops_bf16);
        assert_eq!(GpuSpec::rtx4090().vram_bytes(), 24 * 1024 * 1024 * 1024);
    }

    #[test]
    fn rdma_classification() {
        assert!(Interconnect::NvLink.has_rdma());
        assert!(Interconnect::InfiniBand { gbps: 400.0 }.has_rdma());
        assert!(Interconnect::Ethernet { gbps: 100.0 }.has_rdma());
        assert!(!Interconnect::Ethernet { gbps: 10.0 }.has_rdma());
        assert!(Interconnect::NvLink.gbps() > 1000.0);
    }

    #[test]
    fn silo_aggregates() {
        let silo = SiloSpec::single_node("utah-0", 8, GpuSpec::h100(), Region::Utah);
        assert_eq!(silo.total_gpus(), 8);
        assert_eq!(silo.total_peak_tflops(), 8.0 * 989.0);
        assert_eq!(silo.gpu().name, "H100-SXM");
    }

    #[test]
    fn serde_roundtrip() {
        let silo = SiloSpec::single_node("x", 2, GpuSpec::a100(), Region::Texas);
        let json = serde_json::to_string(&silo).unwrap();
        let back: SiloSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, silo);
    }
}
