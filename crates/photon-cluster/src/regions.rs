use crate::{GpuSpec, SiloSpec};
use serde::{Deserialize, Serialize};

/// The five federation regions of the paper's deployment (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Cambridge, England — hosts the aggregator.
    England,
    /// Utah, USA.
    Utah,
    /// Texas, USA.
    Texas,
    /// Quebec, Canada.
    Quebec,
    /// Maharashtra, India.
    Maharashtra,
}

impl Region {
    /// All regions in Table 1 order.
    pub fn all() -> [Region; 5] {
        [
            Region::England,
            Region::Utah,
            Region::Texas,
            Region::Quebec,
            Region::Maharashtra,
        ]
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Region::England => "england",
            Region::Utah => "utah",
            Region::Texas => "texas",
            Region::Quebec => "quebec",
            Region::Maharashtra => "maharashtra",
        }
    }

    fn index(&self) -> usize {
        match self {
            Region::England => 0,
            Region::Utah => 1,
            Region::Texas => 2,
            Region::Quebec => 3,
            Region::Maharashtra => 4,
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The symmetric inter-region bandwidth matrix of Fig. 2.
///
/// The paper reports inter-region bandwidths in the 0.8–10 Gbps band, with
/// the Maharashtra–Quebec link as the slowest (it bottlenecks the
/// Ring-AllReduce topology) and the aggregator's England links governing
/// the parameter-server topology. The exact per-link figures are not
/// tabulated in the paper, so this matrix encodes those documented ordering
/// constraints with plausible magnitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionGraph {
    /// `bw[i][j]` in Gbps; diagonal is intra-region (fast).
    bw: [[f64; 5]; 5],
}

impl Default for RegionGraph {
    fn default() -> Self {
        RegionGraph::paper()
    }
}

impl RegionGraph {
    /// The Fig. 2 deployment bandwidths.
    pub fn paper() -> Self {
        // Order: England, Utah, Texas, Quebec, Maharashtra.
        const G: f64 = 100.0; // intra-region
        let bw = [
            [G, 4.0, 4.0, 6.0, 2.0],
            [4.0, G, 10.0, 8.0, 1.5],
            [4.0, 10.0, G, 8.0, 1.8],
            [6.0, 8.0, 8.0, G, 0.8],
            [2.0, 1.5, 1.8, 0.8, G],
        ];
        RegionGraph { bw }
    }

    /// A uniform matrix (every inter-region link at `gbps`) — used by
    /// Table 2, which fixes "a 10 Gbps bandwidth for the slowest link".
    pub fn uniform(gbps: f64) -> Self {
        let mut bw = [[gbps; 5]; 5];
        for (i, row) in bw.iter_mut().enumerate() {
            row[i] = 100.0f64.max(gbps);
        }
        RegionGraph { bw }
    }

    /// Bandwidth between two regions in Gbps.
    pub fn bandwidth_gbps(&self, a: Region, b: Region) -> f64 {
        self.bw[a.index()][b.index()]
    }

    /// The slowest link on a ring visiting `ring` in order (wrapping) —
    /// the Ring-AllReduce bottleneck (Fig. 2 caption).
    ///
    /// # Panics
    /// Panics if the ring has fewer than 2 members.
    pub fn slowest_ring_link(&self, ring: &[Region]) -> f64 {
        assert!(ring.len() >= 2, "ring needs at least two members");
        (0..ring.len())
            .map(|i| self.bandwidth_gbps(ring[i], ring[(i + 1) % ring.len()]))
            .fold(f64::INFINITY, f64::min)
    }

    /// The slowest link from a hub region to any spoke — the
    /// parameter-server bottleneck.
    pub fn slowest_star_link(&self, hub: Region, spokes: &[Region]) -> f64 {
        spokes
            .iter()
            .filter(|&&s| s != hub)
            .map(|&s| self.bandwidth_gbps(hub, s))
            .fold(f64::INFINITY, f64::min)
    }
}

/// The Table 1 silo inventory for a given model-size row.
///
/// Accepts the labels used in Table 1: `"7B"`, `"3B"`, `"1B"`, `"125M"`.
///
/// # Panics
/// Panics on an unknown label.
pub fn paper_silos(model_size: &str) -> Vec<SiloSpec> {
    let h = GpuSpec::h100();
    let silo = |name: &str, n_gpus: usize, region: Region| {
        SiloSpec::single_node(name, n_gpus, h.clone(), region)
    };
    match model_size {
        "7B" => vec![
            silo("utah-0", 8, Region::Utah),
            silo("texas-0", 8, Region::Texas),
            silo("quebec-0", 8, Region::Quebec),
            silo("maharashtra-0", 8, Region::Maharashtra),
        ],
        "3B" => vec![
            silo("utah-0", 4, Region::Utah),
            silo("texas-0", 4, Region::Texas),
            silo("quebec-0", 4, Region::Quebec),
            silo("maharashtra-0", 4, Region::Maharashtra),
        ],
        "1B" => vec![
            silo("england-0", 2, Region::England),
            silo("utah-0", 2, Region::Utah),
            silo("utah-1", 2, Region::Utah),
            silo("texas-0", 2, Region::Texas),
            silo("texas-1", 2, Region::Texas),
            silo("quebec-0", 4, Region::Quebec),
            silo("quebec-1", 4, Region::Quebec),
            silo("maharashtra-0", 4, Region::Maharashtra),
        ],
        "125M" => Region::all()
            .iter()
            .flat_map(|&r| {
                (0..2)
                    .map(move |i| SiloSpec::single_node(format!("{r}-{i}"), 1, GpuSpec::h100(), r))
            })
            .collect(),
        other => panic!("unknown Table 1 row: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric_and_in_paper_band() {
        let g = RegionGraph::paper();
        for a in Region::all() {
            for b in Region::all() {
                assert_eq!(g.bandwidth_gbps(a, b), g.bandwidth_gbps(b, a));
                if a != b {
                    let bw = g.bandwidth_gbps(a, b);
                    assert!((0.8..=40.0).contains(&bw), "{a}-{b}: {bw}");
                }
            }
        }
    }

    #[test]
    fn maharashtra_quebec_is_the_ring_bottleneck() {
        let g = RegionGraph::paper();
        let ring = Region::all();
        let slowest = g.slowest_ring_link(&ring);
        assert_eq!(
            slowest,
            g.bandwidth_gbps(Region::Maharashtra, Region::Quebec)
        );
    }

    #[test]
    fn star_bottleneck_from_england() {
        let g = RegionGraph::paper();
        let spokes = Region::all();
        let slowest = g.slowest_star_link(Region::England, &spokes);
        assert_eq!(
            slowest,
            g.bandwidth_gbps(Region::England, Region::Maharashtra)
        );
    }

    #[test]
    fn uniform_matrix() {
        let g = RegionGraph::uniform(10.0);
        assert_eq!(g.bandwidth_gbps(Region::Utah, Region::Texas), 10.0);
        assert_eq!(g.slowest_ring_link(&Region::all()), 10.0);
    }

    #[test]
    fn table1_inventories() {
        assert_eq!(
            paper_silos("7B")
                .iter()
                .map(SiloSpec::total_gpus)
                .sum::<usize>(),
            32
        );
        assert_eq!(
            paper_silos("3B")
                .iter()
                .map(SiloSpec::total_gpus)
                .sum::<usize>(),
            16
        );
        assert_eq!(
            paper_silos("1B")
                .iter()
                .map(SiloSpec::total_gpus)
                .sum::<usize>(),
            22
        );
        let small = paper_silos("125M");
        assert_eq!(small.len(), 10);
        assert!(small.iter().all(|s| s.total_gpus() == 1));
    }

    #[test]
    #[should_panic(expected = "unknown Table 1 row")]
    fn unknown_row_panics() {
        paper_silos("13B");
    }
}
