use photon_nn::ModelConfig;

/// A per-GPU training memory estimate, in bytes.
///
/// Follows standard mixed-precision accounting (as used by the DeepSpeed
/// AutoTuner the paper's heuristics are modelled on, §5.1):
/// * bf16 parameters (2 B) and gradients (2 B);
/// * fp32 optimizer state: master weights + Adam m/v (12 B), optionally
///   sharded across GPUs (ZeRO/FSDP);
/// * activations per micro-batch sample, assuming fused/flash attention
///   (no materialized `T × T` score matrix): `66 · d · T · L` bytes,
///   optionally reduced ~8x by activation checkpointing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryBreakdown {
    /// Parameter bytes on this GPU.
    pub params: usize,
    /// Gradient bytes on this GPU.
    pub grads: usize,
    /// Optimizer-state bytes on this GPU.
    pub optimizer: usize,
    /// Activation bytes for the chosen per-GPU batch size.
    pub activations: usize,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.params + self.grads + self.optimizer + self.activations
    }
}

/// Activation bytes for a single sample (sequence) in bf16, assuming fused
/// attention and no checkpointing.
pub fn activation_bytes_per_sample(config: &ModelConfig) -> usize {
    // Per layer-token-channel cost: Korthikanti et al.'s 34 B baseline
    // (without the attention quadratic term) plus workspace/fragmentation
    // overhead, calibrated at 66 B so the autotuner reproduces the paper's
    // hardware-determined B_l = 32 for the 125M model on one H100 (§5.1).
    66 * config.d_model * config.seq_len * config.n_layers
}

/// Full training memory for a per-GPU batch size, with parameter/optimizer
/// sharding across `shard_ways` GPUs (1 = no sharding, i.e. DDP) and
/// optional activation checkpointing (~8x activation reduction).
pub fn training_bytes(
    config: &ModelConfig,
    per_gpu_batch: usize,
    shard_ways: usize,
    activation_ckpt: bool,
) -> MemoryBreakdown {
    assert!(shard_ways > 0, "shard_ways must be positive");
    let n = config.param_count();
    let act = activation_bytes_per_sample(config) * per_gpu_batch;
    MemoryBreakdown {
        params: 2 * n / shard_ways,
        grads: 2 * n / shard_ways,
        optimizer: 12 * n / shard_ways,
        activations: if activation_ckpt { act / 8 } else { act },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_125m_batch32_fits_one_h100() {
        // §5.1: "clients training a 125M parameter model use 1 Nvidia H100,
        // processing a hardware-determined local batch size B_l = 32,
        // without gradient accumulation or activation checkpointing".
        let cfg = ModelConfig::paper_125m();
        let mem = training_bytes(&cfg, 32, 1, false);
        let h100 = crate::GpuSpec::h100().vram_bytes();
        assert!(mem.total() < h100, "{} >= {}", mem.total(), h100);
        // And it is genuinely hardware-determined: a much larger batch
        // should not fit.
        let too_big = training_bytes(&cfg, 128, 1, false);
        assert!(too_big.total() > h100);
    }

    #[test]
    fn seven_b_needs_sharding() {
        let cfg = ModelConfig::paper_7b();
        let h100 = crate::GpuSpec::h100().vram_bytes();
        // Unsharded states alone exceed one H100 (16 B/param * ~6.5B).
        let unsharded = training_bytes(&cfg, 1, 1, true);
        assert!(unsharded.total() > h100);
        // Sharded 8 ways with checkpointing, batch 1 fits.
        let sharded = training_bytes(&cfg, 1, 8, true);
        assert!(sharded.total() < h100, "{}", sharded.total());
    }

    #[test]
    fn checkpointing_reduces_only_activations() {
        let cfg = ModelConfig::paper_350m();
        let plain = training_bytes(&cfg, 8, 1, false);
        let ckpt = training_bytes(&cfg, 8, 1, true);
        assert_eq!(plain.params, ckpt.params);
        assert_eq!(plain.optimizer, ckpt.optimizer);
        assert!(ckpt.activations < plain.activations / 4);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let cfg = ModelConfig::proxy_tiny();
        let m = training_bytes(&cfg, 4, 2, false);
        assert_eq!(m.total(), m.params + m.grads + m.optimizer + m.activations);
    }
}
