//! Property-based tests for the hardware model: whatever the autotuner
//! picks must actually fit, and the strategy selector must stay total.

use photon_cluster::{
    autotune_batch, select_strategy, training_bytes, GpuSpec, Interconnect, NodeSpec, Region,
    SiloSpec, TrainingStrategy,
};
use photon_nn::ModelConfig;
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = ModelConfig> {
    (
        1usize..16,
        1usize..8,
        1usize..5,
        1000usize..60_000,
        7usize..12,
    )
        .prop_map(|(n_layers, heads, exp_ratio, vocab, seq_pow)| ModelConfig {
            n_layers,
            d_model: heads * 64,
            n_heads: heads,
            exp_ratio,
            vocab_size: vocab,
            seq_len: 1 << seq_pow,
        })
}

fn arb_gpu() -> impl Strategy<Value = GpuSpec> {
    prop_oneof![
        Just(GpuSpec::h100()),
        Just(GpuSpec::a100()),
        Just(GpuSpec::rtx4090()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any viable autotune result fits the GPU with headroom; a batch one
    /// doubling larger does not fit (maximality), unless capped.
    #[test]
    fn autotune_is_maximal_and_fits(model in arb_model(), gpu in arb_gpu()) {
        let strategy = TrainingStrategy::SingleGpu;
        let max_batch = 64usize;
        let r = autotune_batch(&model, &gpu, strategy, max_batch);
        if r.is_viable() {
            let mem = training_bytes(&model, r.per_gpu_batch, 1, r.activation_ckpt);
            prop_assert!(mem.total() as f64 <= gpu.vram_bytes() as f64 * 0.9);
            if r.per_gpu_batch < max_batch {
                let bigger = training_bytes(&model, r.per_gpu_batch * 2, 1, r.activation_ckpt);
                prop_assert!(bigger.total() as f64 > gpu.vram_bytes() as f64 * 0.9);
            }
            // Power of two.
            prop_assert!(r.per_gpu_batch.is_power_of_two());
        }
    }

    /// Strategy selection is total and consistent with silo shape:
    /// single-node silos never select sub-federation, and multi-node silos
    /// over slow links always do.
    #[test]
    fn strategy_selector_is_consistent(
        model in arb_model(),
        n_nodes in 1usize..4,
        gpus_per in 1usize..8,
        fast_link in any::<bool>(),
    ) {
        let silo = SiloSpec {
            name: "t".into(),
            nodes: (0..n_nodes).map(|_| NodeSpec::nvlink(GpuSpec::h100(), gpus_per)).collect(),
            inter_node: if fast_link {
                Interconnect::InfiniBand { gbps: 400.0 }
            } else {
                Interconnect::Ethernet { gbps: 10.0 }
            },
            region: Region::Texas,
        };
        let strategy = select_strategy(&model, &silo);
        match strategy {
            TrainingStrategy::SubFederation { partitions } => {
                prop_assert!(n_nodes > 1 && !fast_link);
                prop_assert_eq!(partitions, n_nodes);
            }
            TrainingStrategy::SingleGpu => {
                prop_assert_eq!(silo.total_gpus(), 1);
            }
            TrainingStrategy::Ddp { n_gpus } | TrainingStrategy::Fsdp { n_gpus } => {
                prop_assert!(n_gpus == silo.total_gpus() || n_gpus == 1);
                if n_nodes > 1 {
                    prop_assert!(fast_link);
                }
            }
        }
    }

    /// Memory accounting is monotone in batch size and sharding always
    /// reduces the per-GPU state footprint.
    #[test]
    fn memory_monotonicity(model in arb_model(), batch in 1usize..32) {
        let small = training_bytes(&model, batch, 1, false);
        let bigger = training_bytes(&model, batch + 1, 1, false);
        prop_assert!(bigger.total() > small.total());
        let sharded = training_bytes(&model, batch, 4, false);
        prop_assert!(sharded.params < small.params);
        prop_assert!(sharded.optimizer < small.optimizer);
        prop_assert_eq!(sharded.activations, small.activations);
    }
}
