//! # photon-tokenizer
//!
//! Tokenization substrate for Photon-RS: a zero-configuration byte-level
//! tokenizer and a from-scratch trainable byte-pair-encoding (BPE)
//! tokenizer, mirroring the role of the GPT-NeoX tokenizer (vocab 50 368)
//! used by the Photon paper. Trainable experiment presets use small
//! vocabularies (256–1024) so CPU models converge quickly; the analytic
//! model configurations retain the paper's 50 368 vocabulary.
//!
//! ```
//! use photon_tokenizer::{ByteTokenizer, Tokenizer};
//! let tok = ByteTokenizer::new();
//! let ids = tok.encode("hi");
//! assert_eq!(tok.decode(&ids), "hi");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod bpe;
mod byte;
mod vocab;

pub use bpe::{BpeTokenizer, BpeTrainConfig};
pub use byte::ByteTokenizer;
pub use vocab::Vocab;

/// A token id. Kept at 32 bits: the largest paper vocabulary is 50 368.
pub type TokenId = u32;

/// Common interface for all tokenizers.
///
/// Implementations guarantee `decode(encode(s)) == s` for valid UTF-8 input
/// (lossless round-trip), which the property tests enforce.
pub trait Tokenizer: Send + Sync {
    /// Encodes text into token ids (no special tokens appended).
    fn encode(&self, text: &str) -> Vec<TokenId>;

    /// Decodes token ids back into text. Unknown ids and invalid UTF-8
    /// byte sequences are replaced with U+FFFD.
    fn decode(&self, ids: &[TokenId]) -> String;

    /// Total vocabulary size, including special tokens.
    fn vocab_size(&self) -> usize;

    /// The end-of-text token id.
    fn eot_id(&self) -> TokenId;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_safe() {
        let tok: Box<dyn Tokenizer> = Box::new(ByteTokenizer::new());
        assert_eq!(tok.decode(&tok.encode("abc")), "abc");
    }
}
