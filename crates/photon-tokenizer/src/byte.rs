use crate::{TokenId, Tokenizer, Vocab};

/// A byte-level tokenizer: every UTF-8 byte is one token.
///
/// Vocabulary size is 257 (256 bytes plus `<|eot|>`). This is the default
/// tokenizer for fast CPU-trainable experiment presets: the tiny vocabulary
/// keeps the embedding and LM-head matrices small so convergence experiments
/// finish quickly, while the token stream still exhibits realistic n-gram
/// structure from the synthetic corpora.
#[derive(Debug, Clone)]
pub struct ByteTokenizer {
    vocab: Vocab,
}

impl ByteTokenizer {
    /// Creates the byte-level tokenizer.
    pub fn new() -> Self {
        ByteTokenizer {
            vocab: Vocab::base_bytes(),
        }
    }

    /// Read-only access to the vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }
}

impl Default for ByteTokenizer {
    fn default() -> Self {
        ByteTokenizer::new()
    }
}

impl Tokenizer for ByteTokenizer {
    fn encode(&self, text: &str) -> Vec<TokenId> {
        text.bytes().map(|b| b as TokenId).collect()
    }

    fn decode(&self, ids: &[TokenId]) -> String {
        let mut bytes = Vec::with_capacity(ids.len());
        for &id in ids {
            match self.vocab.bytes_of(id) {
                Some(b) if id < 256 => bytes.extend_from_slice(b),
                Some(b) => bytes.extend_from_slice(b), // eot marker
                None => bytes.extend_from_slice("\u{FFFD}".as_bytes()),
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    fn eot_id(&self) -> TokenId {
        self.vocab.eot_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ascii_and_unicode() {
        let tok = ByteTokenizer::new();
        for s in ["hello world", "héllo ωorld", "日本語テキスト", ""] {
            assert_eq!(tok.decode(&tok.encode(s)), s);
        }
    }

    #[test]
    fn unknown_id_becomes_replacement() {
        let tok = ByteTokenizer::new();
        assert_eq!(tok.decode(&[9999]), "\u{FFFD}");
    }

    #[test]
    fn vocab_size_and_eot() {
        let tok = ByteTokenizer::new();
        assert_eq!(tok.vocab_size(), 257);
        assert_eq!(tok.eot_id(), 256);
        assert!(tok.decode(&[tok.eot_id()]).contains("eot"));
    }
}
