use crate::TokenId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A token vocabulary mapping ids to byte sequences and back.
///
/// The first 256 entries are always the single bytes `0..=255`; merged BPE
/// tokens and special tokens follow. This layout guarantees every byte
/// string is encodable, so no `<unk>` token is needed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<Vec<u8>>,
    #[serde(skip)]
    lookup: HashMap<Vec<u8>, TokenId>,
    eot: TokenId,
}

impl Vocab {
    /// Builds the base byte vocabulary (256 bytes + one `<|eot|>` token).
    pub fn base_bytes() -> Self {
        let mut tokens: Vec<Vec<u8>> = (0u16..256).map(|b| vec![b as u8]).collect();
        let eot = tokens.len() as TokenId;
        tokens.push(b"<|eot|>".to_vec());
        let mut v = Vocab {
            tokens,
            lookup: HashMap::new(),
            eot,
        };
        v.rebuild_lookup();
        v
    }

    /// Appends a merged token, returning its id.
    pub fn push_merged(&mut self, bytes: Vec<u8>) -> TokenId {
        let id = self.tokens.len() as TokenId;
        self.lookup.insert(bytes.clone(), id);
        self.tokens.push(bytes);
        id
    }

    /// Byte sequence of a token id, if valid. The `<|eot|>` token decodes to
    /// its literal marker bytes.
    pub fn bytes_of(&self, id: TokenId) -> Option<&[u8]> {
        self.tokens.get(id as usize).map(|v| v.as_slice())
    }

    /// Id of an exact byte sequence, if present.
    pub fn id_of(&self, bytes: &[u8]) -> Option<TokenId> {
        self.lookup.get(bytes).copied()
    }

    /// Total number of tokens (bytes + eot + merges).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty (never true for constructed vocabs).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The end-of-text token id.
    pub fn eot_id(&self) -> TokenId {
        self.eot
    }

    /// Rebuilds the reverse lookup (needed after deserialization, since the
    /// map is skipped during serde).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .tokens
            .iter()
            .enumerate()
            .map(|(i, b)| (b.clone(), i as TokenId))
            .collect();
    }
}

impl PartialEq for Vocab {
    fn eq(&self, other: &Self) -> bool {
        self.tokens == other.tokens && self.eot == other.eot
    }
}
impl Eq for Vocab {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_has_all_bytes_and_eot() {
        let v = Vocab::base_bytes();
        assert_eq!(v.len(), 257);
        assert_eq!(v.bytes_of(65), Some(&b"A"[..]));
        assert_eq!(v.id_of(b"A"), Some(65));
        assert_eq!(v.eot_id(), 256);
        assert!(!v.is_empty());
    }

    #[test]
    fn push_merged_is_retrievable() {
        let mut v = Vocab::base_bytes();
        let id = v.push_merged(b"th".to_vec());
        assert_eq!(v.bytes_of(id), Some(&b"th"[..]));
        assert_eq!(v.id_of(b"th"), Some(id));
    }

    #[test]
    fn serde_roundtrip_rebuilds_lookup() {
        let mut v = Vocab::base_bytes();
        v.push_merged(b"he".to_vec());
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocab = serde_json::from_str(&json).unwrap();
        back.rebuild_lookup();
        assert_eq!(back, v);
        assert_eq!(back.id_of(b"he"), v.id_of(b"he"));
    }
}
