use crate::{TokenId, Tokenizer, Vocab};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration for BPE training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpeTrainConfig {
    /// Target vocabulary size (must exceed the 257 base tokens).
    pub vocab_size: usize,
    /// Pairs occurring fewer times than this are never merged.
    pub min_pair_freq: usize,
}

impl Default for BpeTrainConfig {
    fn default() -> Self {
        BpeTrainConfig {
            vocab_size: 512,
            min_pair_freq: 2,
        }
    }
}

/// A from-scratch byte-pair-encoding tokenizer.
///
/// Training follows the classic algorithm: text is split into
/// whitespace-delimited chunks (with the leading space attached, GPT-2
/// style), and the most frequent adjacent token pair is merged repeatedly
/// until the target vocabulary size is reached. Ties break towards the
/// lexicographically smallest pair so training is deterministic.
///
/// ```
/// use photon_tokenizer::{BpeTokenizer, BpeTrainConfig, Tokenizer};
/// let corpus = "the cat sat on the mat. the cat sat.".repeat(8);
/// let tok = BpeTokenizer::train(&corpus, &BpeTrainConfig { vocab_size: 300, min_pair_freq: 2 });
/// let text = "the cat";
/// assert_eq!(tok.decode(&tok.encode(text)), text);
/// assert!(tok.encode(text).len() < text.len()); // compresses
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpeTokenizer {
    vocab: Vocab,
    /// Merge rules in training order: (left, right) -> merged id.
    merges: Vec<(TokenId, TokenId, TokenId)>,
    #[serde(skip)]
    merge_rank: HashMap<(TokenId, TokenId), (usize, TokenId)>,
}

impl BpeTokenizer {
    /// Trains a BPE tokenizer on a corpus.
    ///
    /// # Panics
    /// Panics if `config.vocab_size <= 257` (the base vocabulary).
    pub fn train(corpus: &str, config: &BpeTrainConfig) -> Self {
        assert!(
            config.vocab_size > 257,
            "vocab_size must exceed the 257 base tokens"
        );
        let mut vocab = Vocab::base_bytes();
        let mut merges = Vec::new();

        // Unique chunk -> (token sequence, count).
        let mut chunk_counts: HashMap<&str, usize> = HashMap::new();
        for chunk in split_chunks(corpus) {
            *chunk_counts.entry(chunk).or_insert(0) += 1;
        }
        let mut words: Vec<(Vec<TokenId>, usize)> = chunk_counts
            .into_iter()
            .map(|(w, c)| (w.bytes().map(|b| b as TokenId).collect(), c))
            .collect();
        // Deterministic order independent of HashMap iteration.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        while vocab.len() < config.vocab_size {
            let mut pair_freq: HashMap<(TokenId, TokenId), usize> = HashMap::new();
            for (toks, count) in &words {
                for w in toks.windows(2) {
                    *pair_freq.entry((w[0], w[1])).or_insert(0) += count;
                }
            }
            let best = pair_freq
                .into_iter()
                .filter(|&(_, c)| c >= config.min_pair_freq)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((l, r), _)) = best else { break };

            let mut bytes = vocab.bytes_of(l).expect("valid token").to_vec();
            bytes.extend_from_slice(vocab.bytes_of(r).expect("valid token"));
            let merged = vocab.push_merged(bytes);
            merges.push((l, r, merged));

            for (toks, _) in words.iter_mut() {
                apply_merge(toks, l, r, merged);
            }
        }

        let mut tok = BpeTokenizer {
            vocab,
            merges,
            merge_rank: HashMap::new(),
        };
        tok.rebuild_ranks();
        tok
    }

    /// Rebuilds the rank lookup (needed after deserialization).
    pub fn rebuild_ranks(&mut self) {
        self.vocab.rebuild_lookup();
        self.merge_rank = self
            .merges
            .iter()
            .enumerate()
            .map(|(rank, &(l, r, m))| ((l, r), (rank, m)))
            .collect();
    }

    /// Number of learned merge rules.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("tokenizer serialization cannot fail")
    }

    /// Deserializes from JSON produced by [`BpeTokenizer::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let mut tok: BpeTokenizer = serde_json::from_str(json).map_err(|e| e.to_string())?;
        tok.rebuild_ranks();
        Ok(tok)
    }

    fn encode_chunk(&self, chunk: &str, out: &mut Vec<TokenId>) {
        let mut toks: Vec<TokenId> = chunk.bytes().map(|b| b as TokenId).collect();
        loop {
            // Find the applicable merge with the lowest training rank.
            let mut best: Option<(usize, usize, TokenId)> = None; // (rank, pos, merged)
            for (i, w) in toks.windows(2).enumerate() {
                if let Some(&(rank, merged)) = self.merge_rank.get(&(w[0], w[1])) {
                    if best.is_none_or(|(r, _, _)| rank < r) {
                        best = Some((rank, i, merged));
                    }
                }
            }
            let Some((_, pos, merged)) = best else { break };
            toks[pos] = merged;
            toks.remove(pos + 1);
        }
        out.extend_from_slice(&toks);
    }
}

impl Tokenizer for BpeTokenizer {
    fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut out = Vec::with_capacity(text.len() / 2);
        for chunk in split_chunks(text) {
            self.encode_chunk(chunk, &mut out);
        }
        out
    }

    fn decode(&self, ids: &[TokenId]) -> String {
        let mut bytes = Vec::with_capacity(ids.len() * 2);
        for &id in ids {
            match self.vocab.bytes_of(id) {
                Some(b) => bytes.extend_from_slice(b),
                None => bytes.extend_from_slice("\u{FFFD}".as_bytes()),
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    fn eot_id(&self) -> TokenId {
        self.vocab.eot_id()
    }
}

/// Splits text into merge-boundary chunks: maximal runs of non-whitespace
/// with the preceding whitespace run attached (GPT-2 style pre-tokenizer).
/// Concatenating the chunks reproduces the input exactly.
fn split_chunks(text: &str) -> impl Iterator<Item = &str> {
    let bytes = text.as_bytes();
    let mut starts = vec![];
    let mut prev_ws = true;
    for (i, &b) in bytes.iter().enumerate() {
        let ws = b.is_ascii_whitespace();
        // A chunk starts at the first whitespace byte after non-whitespace.
        if ws && !prev_ws {
            starts.push(i);
        }
        prev_ws = ws;
    }
    let mut bounds = Vec::with_capacity(starts.len() + 1);
    let mut last = 0usize;
    for s in starts {
        if s > last {
            bounds.push((last, s));
        }
        last = s;
    }
    if last < bytes.len() {
        bounds.push((last, bytes.len()));
    }
    bounds.into_iter().map(move |(a, b)| &text[a..b])
}

fn apply_merge(toks: &mut Vec<TokenId>, l: TokenId, r: TokenId, merged: TokenId) {
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i] == l && toks[i + 1] == r {
            toks[i] = merged;
            toks.remove(i + 1);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> String {
        "the quick brown fox jumps over the lazy dog. \
         the quick brown fox. the lazy dog sleeps. "
            .repeat(16)
    }

    #[test]
    fn chunks_reassemble_input() {
        for text in ["a b  c", "  leading", "trailing  ", "", "one"] {
            let joined: String = split_chunks(text).collect();
            assert_eq!(joined, text);
        }
    }

    #[test]
    fn training_reaches_target_vocab() {
        let tok = BpeTokenizer::train(
            &sample_corpus(),
            &BpeTrainConfig {
                vocab_size: 290,
                min_pair_freq: 2,
            },
        );
        assert_eq!(tok.vocab_size(), 290);
        assert_eq!(tok.merge_count(), 290 - 257);
        // With a higher target than the corpus supports, training stops early
        // rather than looping forever.
        let capped = BpeTokenizer::train(
            &sample_corpus(),
            &BpeTrainConfig {
                vocab_size: 10_000,
                min_pair_freq: 2,
            },
        );
        assert!(capped.vocab_size() < 10_000);
    }

    #[test]
    fn roundtrip_and_compression() {
        let corpus = sample_corpus();
        let tok = BpeTokenizer::train(&corpus, &BpeTrainConfig::default());
        for text in [
            "the quick brown fox",
            "a completely unseen string!",
            "whitespace   runs\tand\nnewlines",
        ] {
            assert_eq!(tok.decode(&tok.encode(text)), text);
        }
        let ids = tok.encode("the quick brown fox jumps over the lazy dog.");
        assert!(ids.len() < "the quick brown fox jumps over the lazy dog.".len());
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = sample_corpus();
        let cfg = BpeTrainConfig {
            vocab_size: 300,
            min_pair_freq: 2,
        };
        let a = BpeTokenizer::train(&corpus, &cfg);
        let b = BpeTokenizer::train(&corpus, &cfg);
        assert_eq!(a.encode("the quick"), b.encode("the quick"));
    }

    #[test]
    fn json_roundtrip() {
        let tok = BpeTokenizer::train(&sample_corpus(), &BpeTrainConfig::default());
        let back = BpeTokenizer::from_json(&tok.to_json()).unwrap();
        let text = "the lazy dog sleeps";
        assert_eq!(back.encode(text), tok.encode(text));
        assert!(BpeTokenizer::from_json("{not json").is_err());
    }

    #[test]
    fn min_pair_freq_stops_early() {
        // A corpus with no repeated pairs cannot merge anything at freq >= 2.
        let tok = BpeTokenizer::train(
            "abcdefg",
            &BpeTrainConfig {
                vocab_size: 300,
                min_pair_freq: 2,
            },
        );
        assert_eq!(tok.merge_count(), 0);
        assert_eq!(tok.vocab_size(), 257);
    }

    #[test]
    #[should_panic(expected = "vocab_size must exceed")]
    fn too_small_vocab_panics() {
        BpeTokenizer::train(
            "x",
            &BpeTrainConfig {
                vocab_size: 100,
                min_pair_freq: 1,
            },
        );
    }
}
