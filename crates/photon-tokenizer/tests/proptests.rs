//! Property-based tests: tokenizers must round-trip arbitrary text.

use photon_tokenizer::{BpeTokenizer, BpeTrainConfig, ByteTokenizer, Tokenizer};
use proptest::prelude::*;

proptest! {
    #[test]
    fn byte_tokenizer_roundtrips_any_string(s in "\\PC*") {
        let tok = ByteTokenizer::new();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    #[test]
    fn byte_tokenizer_length_equals_utf8_len(s in "\\PC*") {
        let tok = ByteTokenizer::new();
        prop_assert_eq!(tok.encode(&s).len(), s.len());
    }

    #[test]
    fn bpe_roundtrips_any_ascii(s in "[ -~\\t\\n]{0,200}") {
        let corpus = "the quick brown fox jumps over the lazy dog. ".repeat(12);
        let tok = BpeTokenizer::train(&corpus, &BpeTrainConfig {
            vocab_size: 300,
            min_pair_freq: 2,
        });
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    #[test]
    fn bpe_never_expands_token_count(s in "[a-z ]{1,120}") {
        let corpus = "aa bb cc abc abc abc the the the ".repeat(10);
        let tok = BpeTokenizer::train(&corpus, &BpeTrainConfig {
            vocab_size: 280,
            min_pair_freq: 2,
        });
        prop_assert!(tok.encode(&s).len() <= s.len());
    }

    #[test]
    fn bpe_ids_always_in_vocab(s in "\\PC{0,100}") {
        let corpus = "hello world hello world ".repeat(10);
        let tok = BpeTokenizer::train(&corpus, &BpeTrainConfig {
            vocab_size: 270,
            min_pair_freq: 2,
        });
        for id in tok.encode(&s) {
            prop_assert!((id as usize) < tok.vocab_size());
        }
    }
}
