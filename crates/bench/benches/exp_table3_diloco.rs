//! Table 3: Photon vs DiLoCo (η_s = 0.1) — wall time to two target
//! perplexities across client counts N ∈ {2, 4, 8}.
//!
//! Rounds-to-target are measured on the tiny proxy with identical data and
//! seeds for both methods (one training run per configuration; both
//! targets are extracted from the same trajectory); wall times use the
//! paper's 125M setup (ν = 2, τ mapped to 128 paper steps, Ring-AllReduce
//! at 10 Gbps).

use photon_bench::{fmt_rounds, FedRun, Report};
use photon_comms::{Topology, WallTimeModel};
use photon_fedopt::ServerOptKind;
use photon_nn::ModelConfig;
use photon_optim::LrSchedule;

fn main() {
    let mut rep = Report::new("table3_diloco", "Table 3: Photon vs DiLoCo wall time");
    let (tau, tau_paper, cap, b_l) = (16u64, 128u64, 96u64, 8usize);
    let targets = [("PPL 42-equiv", 22.0f64), ("PPL 35-equiv", 16.0f64)];
    let s_mb = ModelConfig::paper_125m().param_bytes(2) as f64 / 1e6;
    let methods = [
        ("DiLoCo (eta=0.1)", ServerOptKind::diloco_default()),
        ("Photon", ServerOptKind::photon_default()),
    ];

    // One run per (N, method); both targets read from the same history.
    let mut rows: Vec<(usize, &str, [Option<u64>; 2])> = Vec::new();
    for n in [2usize, 4, 8] {
        for (mname, server_opt) in methods {
            let mut run = FedRun::tiny(n, tau, b_l);
            run.server_opt = server_opt;
            run.schedule = LrSchedule::paper_cosine(6e-3, 10, 1500);
            run.seed = 33;
            let history = run.run(cap, 1, Some(targets[1].1));
            rows.push((
                n,
                mname,
                [
                    history.rounds_to_target(targets[0].1),
                    history.rounds_to_target(targets[1].1),
                ],
            ));
        }
    }

    for (ti, (tname, target)) in targets.iter().enumerate() {
        rep.line(&format!("\n=== target {target} ({tname}) ==="));
        rep.line(&format!(
            "{:>3} {:<18} {:>7} {:>14} {:>9}",
            "N", "method", "rounds", "wall time [s]", "vs DiLoCo"
        ));
        let wall_of = |rounds: Option<u64>, n: usize| {
            rounds.map(|r| {
                WallTimeModel::new(2.0, tau_paper, s_mb, 1250.0, Topology::RingAllReduce)
                    .total_time(n, r)
                    .total()
            })
        };
        for pair in rows.chunks(2) {
            let (n, _, diloco_rounds) = pair[0];
            let diloco_wall = wall_of(diloco_rounds[ti], n);
            for &(n, mname, ref rounds) in pair {
                let wall = wall_of(rounds[ti], n);
                let ratio = if mname.starts_with("DiLoCo") {
                    wall.map_or("-".into(), |_| "1x".to_string())
                } else {
                    match (wall, diloco_wall) {
                        (Some(w), Some(d)) => format!("{:.2}x", w / d),
                        _ => "-".to_string(),
                    }
                };
                rep.line(&format!(
                    "{:>3} {:<18} {:>7} {:>14} {:>9}",
                    n,
                    mname,
                    fmt_rounds(rounds[ti], cap),
                    wall.map_or("-".into(), |w| format!("{w:.0}")),
                    ratio
                ));
            }
        }
    }
    rep.line("\npaper shape: Photon reaches both targets in roughly half DiLoCo's");
    rep.line("wall time at every client count (Table 3 reports 0.47x-0.54x; at");
    rep.line("our proxy scale the gap widens further at the lower target because");
    rep.line("DiLoCo's eta_s = 0.1 discount compounds against the decaying LR).");
    rep.save();
}
