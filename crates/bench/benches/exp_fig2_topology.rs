//! Fig. 2 / Table 1: the five-region deployment — silo inventory per model
//! size, inter-region bandwidths, and the RAR/PS bottleneck links the
//! figure caption calls out.

use photon_bench::Report;
use photon_cluster::{paper_silos, Region, RegionGraph, SiloSpec};

fn main() {
    let mut rep = Report::new(
        "fig2_topology",
        "Fig. 2 / Table 1: regions, silos and bandwidths",
    );
    let graph = RegionGraph::paper();

    rep.line("\nTable 1: computational resources per region");
    rep.line(&format!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>13}",
        "size", "england", "utah", "texas", "quebec", "maharashtra"
    ));
    for label in ["7B", "3B", "1B", "125M"] {
        let silos = paper_silos(label);
        let count = |r: Region| {
            let mine: Vec<&SiloSpec> = silos.iter().filter(|s| s.region == r).collect();
            if mine.is_empty() {
                "-".to_string()
            } else {
                format!("{}x{}", mine.len(), mine[0].total_gpus())
            }
        };
        rep.line(&format!(
            "{:<8} {:>10} {:>10} {:>10} {:>10} {:>13}",
            label,
            count(Region::England),
            count(Region::Utah),
            count(Region::Texas),
            count(Region::Quebec),
            count(Region::Maharashtra),
        ));
    }

    rep.line("\ninter-region bandwidth matrix (Gbps):");
    let mut header = format!("{:>14}", "");
    for b in Region::all() {
        header.push_str(&format!("{:>13}", b.name()));
    }
    rep.line(&header);
    for a in Region::all() {
        let mut row = format!("{:>14}", a.name());
        for b in Region::all() {
            if a == b {
                row.push_str(&format!("{:>13}", "-"));
            } else {
                row.push_str(&format!("{:>13.1}", graph.bandwidth_gbps(a, b)));
            }
        }
        rep.line(&row);
    }

    let ring = Region::all();
    rep.line(&format!(
        "\nRAR bottleneck (slowest ring link):   {:.1} Gbps ({} <-> {})",
        graph.slowest_ring_link(&ring),
        Region::Maharashtra.name(),
        Region::Quebec.name()
    ));
    rep.line(&format!(
        "PS bottleneck (slowest England spoke): {:.1} Gbps ({} <-> {})",
        graph.slowest_star_link(Region::England, &ring),
        Region::England.name(),
        Region::Maharashtra.name()
    ));
    rep.line("\npaper: bandwidth between regions varies significantly; the");
    rep.line("Maharashtra-Quebec link bottlenecks RAR, England's spokes gate PS.");
    rep.save();
}
