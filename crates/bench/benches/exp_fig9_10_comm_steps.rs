//! Figs. 9-10 (appendix): the Fig. 6 topology breakdown repeated at 64 and
//! 128 local steps per round — halving communication frequency lowers the
//! communication share, most visibly for the parameter server.

use photon_bench::{run_comm_breakdown, Report};

fn main() {
    let mut rep = Report::new(
        "fig9_10_comm_steps",
        "Figs. 9-10: topology wall-time at 64 and 128 local steps",
    );
    // Proxy taus 8 and 16 map to the paper's 64 and 128 local steps.
    run_comm_breakdown(&mut rep, 8, 64, 90);
    run_comm_breakdown(&mut rep, 16, 128, 50);
    rep.line("\npaper shape: with fewer local steps per round the communication");
    rep.line("share grows (compare Fig. 6's 512-step setting), and PS degrades");
    rep.line("fastest as N rises while RAR stays nearly flat.");
    rep.save();
}
