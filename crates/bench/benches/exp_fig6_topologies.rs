//! Fig. 6: wall time by aggregation topology (PS / AR / RAR) at 512 local
//! steps per round, N ∈ {2, 4, 8, 16} clients, 125M model, target
//! perplexity "35-equivalent".
//!
//! Rounds-to-target are measured on the tiny proxy at the mapped τ = 64;
//! local-compute and communication seconds come from the Appendix-B.1
//! model with the paper's ν = 2 and a 10 Gbps bottleneck.

use photon_bench::{run_comm_breakdown, Report};

fn main() {
    let mut rep = Report::new(
        "fig6_topologies",
        "Fig. 6: wall time by topology (512 local steps)",
    );
    run_comm_breakdown(&mut rep, 64, 512, 16);
    rep.line("\npaper shape: communication cost rises with N (worst under PS),");
    rep.line("but more clients converge in fewer rounds, and RAR keeps the");
    rep.line("wall-time benefit of scaling compute.");
    rep.save();
}
