//! Figs. 3 & 4: perplexity convergence and final perplexity, federated vs
//! centralized, across model sizes.
//!
//! Protocol (the paper's Table 5 recipe, scaled): federated clients train
//! with small local batches and a cosine schedule stretched by
//! `B_g / B_l`; the centralized baseline trains on the full global batch
//! with its own (shorter) full cosine. Both consume identical token
//! budgets and complete their schedules. Proxy mapping: tiny ~ 1.3B,
//! small ~ 3B, medium ~ 7B.

use photon_bench::{full_scale, FedRun, Report};
use photon_core::experiments::{build_centralized, run_centralized};
use photon_nn::ModelConfig;
use photon_optim::LrSchedule;

struct Tier {
    label: &'static str,
    paper_gain_pct: f64,
    model: ModelConfig,
    rounds: u64,
}

fn main() {
    let mut rep = Report::new(
        "fig3_fig4_convergence",
        "Figs. 3-4: Fed vs Cent convergence and final perplexity",
    );
    let scale = if full_scale() { 2 } else { 1 };
    let mut tiers = vec![
        Tier {
            label: "1.3B-proxy(tiny)",
            paper_gain_pct: 13.4,
            model: ModelConfig::proxy_tiny(),
            rounds: 40 * scale,
        },
        Tier {
            label: "3B-proxy(small)",
            paper_gain_pct: 13.7,
            model: small_seq32(),
            rounds: 24 * scale,
        },
    ];
    if full_scale() {
        tiers.push(Tier {
            label: "7B-proxy(medium)",
            paper_gain_pct: 16.9,
            model: medium_seq32(),
            rounds: 24,
        });
    }

    let (n, tau, b_l) = (4usize, 16u64, 8usize);
    let mut finals = Vec::new();
    for tier in &tiers {
        let fed_steps = tier.rounds * tau;
        let cent_steps = fed_steps / n as u64; // equal tokens at B_g = N*B_l
        let max_lr = 6e-3;

        let mut run = FedRun::tiny(n, tau, b_l);
        run.model = tier.model;
        run.schedule = LrSchedule::paper_cosine(max_lr, 10, fed_steps);
        run.seed = 7;
        let eval_every = (tier.rounds / 8).max(1);
        let fed = run.run(tier.rounds, eval_every, None);

        let cfg = run.config();
        let cent_sched = LrSchedule::paper_cosine(max_lr, 3, cent_steps.max(4));
        let (mut trainer, cval) = build_centralized(&cfg, n * b_l, cent_sched, 120_000, 7);
        let chunks = 8u64.min(cent_steps);
        let cent = run_centralized(&mut trainer, &cval, chunks, cent_steps / chunks, 48, None);

        rep.line(&format!(
            "\n--- {} | fed: N={n} B_l={b_l} tau={tau} {} rounds | cent: B={} {} steps ---",
            tier.label,
            tier.rounds,
            n * b_l,
            cent_steps
        ));
        rep.line("  progress (fraction of schedule) | fed ppl | cent ppl");
        let fed_evals: Vec<(u64, f64)> = fed
            .rounds
            .iter()
            .filter_map(|r| r.eval_ppl.map(|p| (r.round + 1, p)))
            .collect();
        let cent_evals: Vec<f64> = cent.rounds.iter().filter_map(|r| r.eval_ppl).collect();
        for (i, (round, fp)) in fed_evals.iter().enumerate() {
            let cp = cent_evals.get(i).copied().unwrap_or(f64::NAN);
            rep.line(&format!(
                "  {:>5.2}                           | {:>7.2} | {:>7.2}",
                *round as f64 / tier.rounds as f64,
                fp,
                cp
            ));
        }
        finals.push((
            tier.label,
            fed.final_ppl().unwrap_or(f64::NAN),
            cent.final_ppl().unwrap_or(f64::NAN),
            tier.paper_gain_pct,
        ));
    }

    rep.line("\nFig. 4 table: final perplexities");
    rep.line(&format!(
        "{:<18} {:>8} {:>8} {:>10} {:>12}",
        "size", "Fed PP", "Cent PP", "gain [%]", "paper gain"
    ));
    for (label, fed, cent, paper) in finals {
        rep.line(&format!(
            "{:<18} {:>8.2} {:>8.2} {:>9.1}% {:>11.1}%",
            label,
            fed,
            cent,
            100.0 * (cent - fed) / cent,
            paper
        ));
    }
    rep.line("\npaper shape: federated reaches lower perplexity than centralized");
    rep.line("under equal token budgets, and the gap grows with model size.");
    rep.save();
}

fn small_seq32() -> ModelConfig {
    ModelConfig {
        seq_len: 32,
        ..ModelConfig::proxy_small()
    }
}

fn medium_seq32() -> ModelConfig {
    ModelConfig {
        seq_len: 32,
        ..ModelConfig::proxy_medium()
    }
}
