//! Fig. 5: the trade-off between wall time and compute resources (global
//! batch size B_g = N · B_l) for two target perplexities and three
//! local-step settings.
//!
//! Convergence (rounds to target) is measured on the tiny proxy — one
//! training run per (τ, N) with both targets extracted from the same
//! trajectory; the time axis converts measured rounds through the paper's
//! Appendix-B.1 model with the 125M throughput ν = 2 batches/s and the
//! mapped paper local steps (our τ ∈ {8, 16, 64} stands in for the
//! paper's {64, 512}; targets 16 / 13 stand in for perplexities 42 / 35).
//!
//! This experiment uses B_l = 2: batch-size scaling only pays off in the
//! gradient-noise-dominated regime (McCandlish et al.), which the paper's
//! 125M runs occupy at B_l = 32 and our 34k-parameter proxy reaches at
//! B_l = 2 (see EXPERIMENTS.md).

use photon_bench::{fmt_rounds, FedRun, Report};
use photon_comms::{Topology, WallTimeModel};
use photon_nn::ModelConfig;
use photon_optim::LrSchedule;

/// One measurement row: (tau, paper tau, round cap, clients, rounds-to-target
/// for each of the two perplexity targets).
type Measurement = (u64, u64, u64, usize, [Option<u64>; 2]);

fn main() {
    let mut rep = Report::new("fig5_compute_time", "Fig. 5: compute-time trade-off");
    let taus: [(u64, u64, u64); 3] = [(8, 64, 130), (16, 128, 100), (64, 512, 30)];
    let clients = [1usize, 2, 4, 8, 16];
    let b_l = 2usize;
    let targets = [("42-equiv", 16.0f64), ("35-equiv", 13.0f64)];
    let s_mb = ModelConfig::paper_125m().param_bytes(2) as f64 / 1e6;

    // Measure once per (tau, N).
    let mut measured: Vec<Measurement> = Vec::new();
    for &(tau, tau_paper, cap) in &taus {
        for &n in &clients {
            let mut run = FedRun::tiny(n, tau, b_l);
            run.schedule = LrSchedule::paper_cosine(8e-3, 10, 2000);
            run.seed = 21;
            let history = run.run(cap, 1, Some(targets[1].1));
            measured.push((
                tau,
                tau_paper,
                cap,
                n,
                [
                    history.rounds_to_target(targets[0].1),
                    history.rounds_to_target(targets[1].1),
                ],
            ));
        }
    }

    for (ti, (target_name, target)) in targets.iter().enumerate() {
        rep.line(&format!(
            "\n=== target perplexity {target} ({target_name}) ==="
        ));
        rep.line(&format!(
            "{:>10} {:>5} {:>5} | {:>7} {:>14} {:>14}",
            "tau(paper)", "N", "B_g", "rounds", "wall time [s]", "of which comm"
        ));
        for &(tau, tau_paper, cap, n, ref rounds) in &measured {
            let wall = rounds[ti].map(|r| {
                WallTimeModel::new(2.0, tau_paper, s_mb, 1250.0, Topology::RingAllReduce)
                    .total_time(n, r)
            });
            rep.line(&format!(
                "{:>4} ({:>3}) {:>5} {:>5} | {:>7} {:>14} {:>14}",
                tau,
                tau_paper,
                n,
                n * b_l,
                fmt_rounds(rounds[ti], cap),
                wall.map_or("-".into(), |w| format!("{:.0}", w.total())),
                wall.map_or("-".into(), |w| format!("{:.1}", w.comm_s)),
            ));
        }
    }
    rep.line("\npaper shape: larger B_g reaches the target in fewer rounds and less");
    rep.line("wall time; gains diminish at the lower target and with more local");
    rep.line("work per round (McCandlish et al. critical-batch effect). Single-run");
    rep.line("rounds-to-target carry seed noise of a few rounds, so read trends");
    rep.line("(N = 1 -> 2 -> 4 and the tau columns), not individual cells.");
    rep.save();
}
