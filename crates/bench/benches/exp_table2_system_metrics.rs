//! Table 2: system metrics for the billion-scale models — wall time with
//! compute/communication breakdowns, GPU utilization and MFU.
//!
//! Inputs: the paper's measured local throughputs ν (Appendix B.1) and
//! compute-time budgets; Ring-AllReduce at a fixed 10 Gbps slowest link;
//! τ = 500 local steps per federated round (Table 6). Communication times
//! are produced by our Appendix-B.1 model, so the reproduced rows can be
//! compared directly against the paper's.

use photon_bench::Report;
use photon_cluster::{mfu, tokens_per_second, GpuSpec, PaperModel, ThroughputSetting};
use photon_comms::{comm_time_seconds, Topology};

struct Row {
    model: PaperModel,
    k_silos: usize,
    gpus_total: usize,
    fed_compute_h: f64,
    cen_compute_h: f64,
    paper: PaperRow,
}

struct PaperRow {
    fed_wall: f64,
    cen_wall: f64,
    fed_comm: f64,
    cen_comm: f64,
    cen_util: u32,
    fed_util: u32,
    cen_mfu: f64,
    fed_mfu: f64,
}

fn main() {
    let mut rep = Report::new(
        "table2_system_metrics",
        "Table 2: system metrics (Cen vs Fed)",
    );
    let rows = [
        Row {
            model: PaperModel::B1_3,
            k_silos: 8,
            gpus_total: 22,
            fed_compute_h: 18.0,
            cen_compute_h: 6.5,
            paper: PaperRow {
                fed_wall: 18.02,
                cen_wall: 26.7,
                fed_comm: 0.02,
                cen_comm: 20.2,
                cen_util: 74,
                fed_util: 83,
                cen_mfu: 0.8027,
                fed_mfu: 1.1245,
            },
        },
        Row {
            model: PaperModel::B3,
            k_silos: 4,
            gpus_total: 16,
            fed_compute_h: 25.1,
            cen_compute_h: 16.1,
            paper: PaperRow {
                fed_wall: 25.2,
                cen_wall: 56.6,
                fed_comm: 0.05,
                cen_comm: 40.48,
                cen_util: 81,
                fed_util: 78,
                cen_mfu: 0.165,
                fed_mfu: 0.240,
            },
        },
        Row {
            model: PaperModel::B7,
            k_silos: 4,
            gpus_total: 32,
            fed_compute_h: 95.5,
            cen_compute_h: 50.7,
            paper: PaperRow {
                fed_wall: 95.6,
                cen_wall: 147.9,
                fed_comm: 0.1,
                cen_comm: 97.2,
                cen_util: 88,
                fed_util: 90,
                cen_mfu: 0.335,
                fed_mfu: 0.224,
            },
        },
    ];

    let bw_mbps = 1250.0; // 10 Gbps slowest link
    let tau = 500.0;
    rep.line(&format!(
        "\n{:<9} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "model", "wall [h]", "compute [h]", "comm [h]", "util[%]", "MFU/dev"
    ));

    for row in rows {
        let cfg = row.model.config();
        let s_mb = cfg.param_bytes(2) as f64 / 1e6;
        let rar = comm_time_seconds(Topology::RingAllReduce, row.k_silos, s_mb, bw_mbps);

        // Centralized: a gradient all-reduce every step.
        let cen_nu = row.model.nu(ThroughputSetting::Centralized);
        let cen_steps = row.cen_compute_h * 3600.0 * cen_nu;
        let cen_comm_h = cen_steps * rar / 3600.0;
        let cen_wall = row.cen_compute_h + cen_comm_h;
        let cen_tps = tokens_per_second(
            &cfg,
            cen_nu,
            row.model.batch_size(ThroughputSetting::Centralized),
        );
        let cen_mfu = mfu(
            &cfg,
            cen_tps,
            row.gpus_total,
            GpuSpec::h100().peak_tflops_bf16,
        );

        // Federated: one aggregation per tau local steps.
        let fed_nu = row.model.nu(ThroughputSetting::Federated);
        let fed_steps = row.fed_compute_h * 3600.0 * fed_nu;
        let fed_comm_h = (fed_steps / tau) * rar / 3600.0;
        let fed_wall = row.fed_compute_h + fed_comm_h;
        let fed_tps = tokens_per_second(
            &cfg,
            fed_nu,
            row.model.batch_size(ThroughputSetting::Federated),
        );
        let fed_mfu = mfu(
            &cfg,
            fed_tps,
            row.gpus_total / row.k_silos,
            GpuSpec::h100().peak_tflops_bf16,
        );

        let p = &row.paper;
        rep.line(&format!(
            "Cen-{:<5} {:>6.1} ({:>5.1}) {:>6.1} ({:>5.1}) {:>6.2} ({:>5.2}) {:>4} (p) {:>9.3}",
            row.model.label(),
            cen_wall,
            p.cen_wall,
            row.cen_compute_h,
            row.cen_compute_h,
            cen_comm_h,
            p.cen_comm,
            p.cen_util,
            cen_mfu
        ));
        rep.line(&format!(
            "Fed-{:<5} {:>6.1} ({:>5.1}) {:>6.1} ({:>5.1}) {:>6.2} ({:>5.2}) {:>4} (p) {:>9.3}",
            row.model.label(),
            fed_wall,
            p.fed_wall,
            row.fed_compute_h,
            row.fed_compute_h,
            fed_comm_h,
            p.fed_comm,
            p.fed_util,
            fed_mfu
        ));
        rep.line(&format!(
            "          fed/cen wall: {:.2}x (paper {:.2}x) | comm ratio: {:.4}x (paper {:.3}x) | paper MFU cen/fed: {:.3}/{:.3}",
            fed_wall / cen_wall,
            p.fed_wall / p.cen_wall,
            fed_comm_h / cen_comm_h,
            p.fed_comm / p.cen_comm,
            p.cen_mfu,
            p.fed_mfu,
        ));
    }
    rep.line("\nvalues in parentheses are the paper's; compute hours are the paper's");
    rep.line("measured budgets, communication is reproduced by our Appendix-B.1 model.");
    rep.line("GPU utilization is reported from the paper (it requires real devices).");
    rep.save();
}
