//! Tables 7-8: downstream in-context evaluation of Photon models.
//!
//! The paper's benchmark data (ARC, HellaSwag, …) is unavailable offline;
//! the substitute is a synthetic two-choice cloze suite scored exactly the
//! way those benchmarks are scored (higher continuation log-probability
//! wins). Three federated model tiers are pre-trained and compared; the
//! paper's shape is that the biggest model wins most comparisons. All
//! tiers train on identical token budgets so capacity is the only
//! variable.

use photon_bench::{full_scale, FedRun, Report};
use photon_core::experiments::downstream_report;
use photon_nn::{Gpt, ModelConfig};
use photon_optim::LrSchedule;

fn train_tier(model: ModelConfig, rounds: u64, seed: u64) -> Gpt {
    let mut run = FedRun::tiny(4, 12, 4);
    run.model = model;
    run.schedule = LrSchedule::paper_cosine(6e-3, 10, rounds * 12);
    run.seed = seed;
    let cfg = run.config();
    let (mut fed, val) =
        photon_core::experiments::build_iid_federation(&cfg, run.tokens_per_client)
            .expect("valid config");
    let opts = photon_core::experiments::RunOptions {
        rounds,
        eval_every: 0,
        eval_windows: 0,
        stop_below: None,
    };
    photon_core::experiments::run_federation(&mut fed, &val, &opts).expect("run failed");
    let _ = val;
    fed.aggregator.global_model()
}

fn main() {
    let mut rep = Report::new(
        "table7_8_downstream",
        "Tables 7-8: downstream in-context evaluations (synthetic suite)",
    );
    let scale = if full_scale() { 2 } else { 1 };
    let tiers: Vec<(&str, ModelConfig, u64)> = vec![
        ("Photon-1B-proxy", ModelConfig::proxy_tiny(), 20 * scale),
        (
            "Photon-3B-proxy",
            ModelConfig {
                seq_len: 32,
                ..ModelConfig::proxy_small()
            },
            20 * scale,
        ),
        (
            "Photon-7B-proxy",
            ModelConfig {
                seq_len: 32,
                ..ModelConfig::proxy_medium()
            },
            20 * scale,
        ),
    ];

    let mut all_scores = Vec::new();
    for (label, model, rounds) in &tiers {
        eprintln!("[training {label} for {rounds} rounds...]");
        let trained = train_tier(*model, *rounds, 2025);
        all_scores.push((*label, downstream_report(&trained, 7)));
    }

    let benchmarks: Vec<&str> = all_scores[0].1.iter().map(|s| s.benchmark).collect();

    // Count how many benchmarks each tier wins (paper: biggest wins most).
    let mut wins = vec![0usize; all_scores.len()];
    for (bi, _) in benchmarks.iter().enumerate() {
        let best = all_scores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.1[bi]
                    .accuracy
                    .partial_cmp(&b.1[bi].accuracy)
                    .expect("no NaN accuracies")
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        wins[best] += 1;
    }

    // Print as two tables of seven, mirroring the paper's Tables 7 and 8.
    for (t, chunk) in benchmarks.chunks(7).enumerate() {
        rep.line(&format!("\nTable {} group:", 7 + t));
        let mut header = format!("{:<18}", "model");
        for b in chunk {
            header.push_str(&format!("{b:>17}"));
        }
        rep.line(&header);
        for (label, scores) in &all_scores {
            let mut row = format!("{label:<18}");
            for s in &scores[t * 7..t * 7 + chunk.len()] {
                row.push_str(&format!("{:>17.3}", s.accuracy));
            }
            rep.line(&row);
        }
    }
    rep.line("");
    for (i, (label, _)) in all_scores.iter().enumerate() {
        rep.line(&format!(
            "{label:<18} wins {:>2} of {}",
            wins[i],
            benchmarks.len()
        ));
    }
    rep.line("\npaper shape: downstream accuracy scales with model size; the");
    rep.line("largest model wins most benchmark comparisons (paper: 10 of 14).");
    rep.save();
}
