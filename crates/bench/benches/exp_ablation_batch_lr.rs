//! Ablation for the §3 claim "Exploiting Small Batches and High Learning
//! Rates": federated averaging tolerates much higher peak learning rates
//! than centralized small-batch training, which destabilizes unless the
//! learning rate shrinks with the batch (Appendix C.1).
//!
//! We sweep the peak LR for (a) centralized training at the small batch
//! B = 8 and (b) a 4-client federation whose clients use the same B_l = 8,
//! and report the final perplexity of each.

use photon_bench::{FedRun, Report};
use photon_core::experiments::{build_centralized, run_centralized};
use photon_optim::LrSchedule;

fn main() {
    let mut rep = Report::new(
        "ablation_batch_lr",
        "Ablation: small batches + high learning rates (paper section 3)",
    );
    let lrs = [1.5e-3f32, 3e-3, 6e-3, 1.2e-2, 2.4e-2, 4.8e-2];
    let (n, tau, b_l, rounds) = (4usize, 16u64, 8usize, 16u64);
    let steps = rounds * tau;

    rep.line(&format!(
        "\n{:>9} | {:>22} | {:>22}",
        "peak LR", "cent B=8 final ppl", "fed 4x B_l=8 final ppl"
    ));
    let mut best_cent = (f64::INFINITY, 0.0f32);
    let mut best_fed = (f64::INFINITY, 0.0f32);
    for &lr in &lrs {
        // Centralized at the *small* batch with this LR.
        let run = FedRun::tiny(n, tau, b_l);
        let mut cfg = run.config();
        cfg.schedule = LrSchedule::paper_cosine(lr, 10, steps);
        let (mut trainer, cval) = build_centralized(&cfg, b_l, cfg.schedule, 60_000, 5);
        let cent = run_centralized(&mut trainer, &cval, 4, steps / 4, 32, None);
        let cent_ppl = cent.final_ppl().unwrap_or(f64::INFINITY);

        // Federated with the same local batch and LR.
        let mut fed_run = FedRun::tiny(n, tau, b_l);
        fed_run.schedule = LrSchedule::paper_cosine(lr, 10, steps);
        fed_run.seed = 5;
        let fed = fed_run.run(rounds, rounds, None);
        let fed_ppl = fed.final_ppl().unwrap_or(f64::INFINITY);

        let show = |p: f64| {
            if p.is_finite() && p < 1e5 {
                format!("{p:>22.2}")
            } else {
                format!("{:>22}", "diverged")
            }
        };
        rep.line(&format!(
            "{lr:>9.4} | {} | {}",
            show(cent_ppl),
            show(fed_ppl)
        ));
        if cent_ppl < best_cent.0 {
            best_cent = (cent_ppl, lr);
        }
        if fed_ppl < best_fed.0 {
            best_fed = (fed_ppl, lr);
        }
    }
    rep.line(&format!(
        "\nbest centralized: ppl {:.2} at lr {:.4} | best federated: ppl {:.2} at lr {:.4}",
        best_cent.0, best_cent.1, best_fed.0, best_fed.1
    ));
    rep.line("\npaper shape: the federation's optimum sits at an equal or higher");
    rep.line("peak learning rate, and it degrades gracefully where centralized");
    rep.line("small-batch training becomes unstable — the averaging step damps");
    rep.line("the noise that wrecks the centralized run.");
    rep.save();
}
