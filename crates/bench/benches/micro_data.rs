//! Criterion micro-benchmarks for the data substrate: domain text
//! generation, tokenization, sharding and stream batching.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use photon_data::TokenStream;
use photon_data::{partition_iid, Batch, DomainKind, ShardStream, SyntheticDomain, TokenCorpus};
use photon_tensor::SeedStream;
use photon_tokenizer::{BpeTokenizer, BpeTrainConfig, ByteTokenizer, Tokenizer};
use std::hint::black_box;
use std::time::Duration;

fn bench_domain_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("domain_generation");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let mut rng = SeedStream::new(1);
    let domain = SyntheticDomain::preset(DomainKind::Web, &mut rng);
    group.throughput(Throughput::Bytes(16_384));
    group.bench_function("web_16kb", |b| {
        b.iter(|| domain.generate(black_box(16_384), &mut rng));
    });
    group.finish();
}

fn bench_tokenization(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenization");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let mut rng = SeedStream::new(2);
    let domain = SyntheticDomain::preset(DomainKind::Wiki, &mut rng);
    let text = domain.generate(16_384, &mut rng);
    group.throughput(Throughput::Bytes(text.len() as u64));

    let byte_tok = ByteTokenizer::new();
    group.bench_function("byte_encode_16kb", |b| {
        b.iter(|| byte_tok.encode(black_box(&text)));
    });

    let bpe = BpeTokenizer::train(
        &text,
        &BpeTrainConfig {
            vocab_size: 512,
            min_pair_freq: 2,
        },
    );
    group.bench_function("bpe_encode_16kb", |b| {
        b.iter(|| bpe.encode(black_box(&text)));
    });
    group.finish();
}

fn bench_sharding_and_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_pipeline");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let corpus = TokenCorpus::new("bench", (0..262_144u32).map(|i| i % 257).collect());
    group.bench_function("partition_iid_256k_into_16", |b| {
        b.iter(|| {
            let mut rng = SeedStream::new(3);
            partition_iid(black_box(&corpus), 16, 64, &mut rng)
        });
    });

    let mut rng = SeedStream::new(4);
    let shards = partition_iid(&corpus, 4, 64, &mut rng);
    let mut stream = ShardStream::new(shards[0].clone(), SeedStream::new(5));
    let mut batch = Batch::zeros(8, 64);
    group.throughput(Throughput::Elements(8 * 64));
    group.bench_function("shard_stream_batch_8x64", |b| {
        b.iter(|| stream.next_batch(black_box(&mut batch)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_domain_generation,
    bench_tokenization,
    bench_sharding_and_streams
);
criterion_main!(benches);
