//! Criterion micro-benchmarks for the compute substrate: GEMM, attention,
//! and a full training step of the tiny proxy model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use photon_data::Batch;
use photon_nn::{kernels, Activations, Gpt, ModelConfig};
use photon_tensor::{ops, SeedStream};
use std::hint::black_box;
use std::time::Duration;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.measurement_time(Duration::from_secs(2)).sample_size(20);
    let mut rng = SeedStream::new(1);
    for &(m, k, n) in &[(64usize, 64usize, 64usize), (256, 256, 256)] {
        let a: Vec<f32> = (0..m * k).map(|_| rng.next_normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.next_normal()).collect();
        let mut out = vec![0.0f32; m * n];
        group.bench_function(format!("{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                ops::gemm(ops::Gemm::new(m, k, n), black_box(&a), black_box(&b), &mut out)
            });
        });
        group.bench_function(format!("{m}x{k}x{n}-par4"), |bch| {
            bch.iter(|| {
                ops::par_gemm(ops::Gemm::new(m, k, n), black_box(&a), black_box(&b), &mut out, 4)
            });
        });
    }
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention");
    group.measurement_time(Duration::from_secs(2)).sample_size(20);
    let (b, t, ch, nh) = (4usize, 64usize, 64usize, 4usize);
    let mut rng = SeedStream::new(2);
    let inp: Vec<f32> = (0..b * t * 3 * ch).map(|_| rng.next_normal() * 0.1).collect();
    let mut out = vec![0.0f32; b * t * ch];
    let mut preatt = vec![0.0f32; b * nh * t * t];
    let mut att = vec![0.0f32; b * nh * t * t];
    group.bench_function("forward_b4_t64_c64", |bch| {
        bch.iter(|| {
            kernels::attention_forward(&mut out, &mut preatt, &mut att, black_box(&inp), b, t, ch, nh, true)
        });
    });
    kernels::attention_forward(&mut out, &mut preatt, &mut att, &inp, b, t, ch, nh, true);
    let dout: Vec<f32> = (0..b * t * ch).map(|_| rng.next_normal() * 0.1).collect();
    let mut dinp = vec![0.0f32; inp.len()];
    let mut dpre = vec![0.0f32; preatt.len()];
    let mut datt = vec![0.0f32; att.len()];
    group.bench_function("backward_b4_t64_c64", |bch| {
        bch.iter(|| {
            kernels::attention_backward(
                &mut dinp, &mut dpre, &mut datt, black_box(&dout), &inp, &att, b, t, ch, nh,
            )
        });
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);
    for (name, cfg) in [
        ("proxy_tiny", ModelConfig::proxy_tiny()),
        ("proxy_small", ModelConfig::proxy_small()),
    ] {
        let mut rng = SeedStream::new(3);
        let model = Gpt::new(cfg, &mut rng);
        let mut acts = Activations::new(&cfg, 8, cfg.seq_len);
        let mut grads = model.grad_buffer();
        let mut batch = Batch::zeros(8, cfg.seq_len);
        for (i, x) in batch.inputs.iter_mut().enumerate() {
            *x = (i % cfg.vocab_size) as u32;
        }
        for (i, y) in batch.targets.iter_mut().enumerate() {
            *y = ((i + 1) % cfg.vocab_size) as u32;
        }
        group.bench_function(format!("{name}_fwd_bwd_b8"), |bch| {
            bch.iter_batched(
                || (),
                |()| {
                    grads.iter_mut().for_each(|g| *g = 0.0);
                    model.forward(&batch.inputs, Some(&batch.targets), &mut acts);
                    model.backward(&batch.inputs, &batch.targets, &mut acts, &mut grads);
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_attention, bench_train_step);
criterion_main!(benches);
