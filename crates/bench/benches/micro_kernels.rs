//! Criterion micro-benchmarks for the compute substrate: GEMM, attention,
//! and a full training step of the tiny proxy model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use photon_data::Batch;
use photon_nn::{kernels, Activations, Gpt, ModelConfig};
use photon_tensor::backend::{set_backend, simd_available, BackendKind};
use photon_tensor::{ops, SeedStream};
use std::hint::black_box;
use std::time::Duration;

/// The pre-pool seed GEMM (ipj loop with value-dependent zero skips), kept
/// here verbatim as the `baseline-*` reference so BENCH_kernels.json records
/// baseline-vs-after from a single run on the same machine.
fn seed_gemm(spec: ops::Gemm, a: &[f32], b: &[f32], c: &mut [f32]) {
    let (m, k, n) = (spec.m, spec.k, spec.n);
    let alpha = spec.alpha;
    c[..m * n].iter_mut().for_each(|v| *v = 0.0);
    if !spec.trans_a && !spec.trans_b {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (p, &apv) in a_row.iter().enumerate() {
                if apv == 0.0 {
                    continue;
                }
                let s = alpha * apv;
                let b_row = &b[p * n..(p + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += s * bv;
                }
            }
        }
    } else if spec.trans_a && !spec.trans_b {
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let s = alpha * av;
                let c_row = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += s * bv;
                }
            }
        }
    } else if !spec.trans_a && spec.trans_b {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (j, cv) in c_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *cv += alpha * acc;
            }
        }
    } else {
        unreachable!("baseline bench only covers nn/ta/tb variants");
    }
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let mut rng = SeedStream::new(1);
    for &(m, k, n) in &[(64usize, 64usize, 64usize), (256, 256, 256)] {
        let a: Vec<f32> = (0..m * k).map(|_| rng.next_normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.next_normal()).collect();
        let mut out = vec![0.0f32; m * n];
        group.throughput(Throughput::Flops((2 * m * k * n) as u64));
        for (tag, spec) in [
            ("", ops::Gemm::new(m, k, n)),
            ("-ta", ops::Gemm::new(m, k, n).transpose_a()),
            ("-tb", ops::Gemm::new(m, k, n).transpose_b()),
        ] {
            group.bench_function(format!("{m}x{k}x{n}{tag}-baseline"), |bch| {
                bch.iter(|| seed_gemm(spec, black_box(&a), black_box(&b), &mut out));
            });
        }
        // Per-backend entries: `-scalar` pins the reference path, `-simd`
        // the vectorized one (only when the host supports it); unsuffixed
        // names run whatever dispatch resolved, matching production.
        let mut backends = vec![(Some(BackendKind::Scalar), "-scalar"), (None, "")];
        if simd_available() {
            backends.insert(1, (Some(BackendKind::Simd), "-simd"));
        }
        for (kind, suffix) in backends {
            if let Some(kind) = kind {
                set_backend(kind);
            }
            group.bench_function(format!("{m}x{k}x{n}{suffix}"), |bch| {
                bch.iter(|| {
                    ops::gemm(
                        ops::Gemm::new(m, k, n),
                        black_box(&a),
                        black_box(&b),
                        &mut out,
                    )
                });
            });
            group.bench_function(format!("{m}x{k}x{n}{suffix}-par4"), |bch| {
                bch.iter(|| {
                    ops::par_gemm(
                        ops::Gemm::new(m, k, n),
                        black_box(&a),
                        black_box(&b),
                        &mut out,
                        4,
                    )
                });
            });
            // Transposed variants as the training kernels use them: trans_b
            // is the matmul forward layout, trans_a is the dweight (split-k)
            // path.
            for (tag, spec) in [
                ("ta", ops::Gemm::new(m, k, n).transpose_a()),
                ("tb", ops::Gemm::new(m, k, n).transpose_b()),
            ] {
                group.bench_function(format!("{m}x{k}x{n}{suffix}-{tag}"), |bch| {
                    bch.iter(|| ops::gemm(spec, black_box(&a), black_box(&b), &mut out));
                });
                group.bench_function(format!("{m}x{k}x{n}{suffix}-{tag}-par4"), |bch| {
                    bch.iter(|| ops::par_gemm(spec, black_box(&a), black_box(&b), &mut out, 4));
                });
            }
        }
    }
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let (b, t, ch, nh) = (4usize, 64usize, 64usize, 4usize);
    let mut rng = SeedStream::new(2);
    let inp: Vec<f32> = (0..b * t * 3 * ch)
        .map(|_| rng.next_normal() * 0.1)
        .collect();
    let mut out = vec![0.0f32; b * t * ch];
    let mut preatt = vec![0.0f32; b * nh * t * t];
    let mut att = vec![0.0f32; b * nh * t * t];
    group.bench_function("forward_b4_t64_c64", |bch| {
        bch.iter(|| {
            ops::pool::with_parallelism(1, || {
                kernels::attention_forward(
                    &mut out,
                    &mut preatt,
                    &mut att,
                    black_box(&inp),
                    b,
                    t,
                    ch,
                    nh,
                    true,
                )
            })
        });
    });
    group.bench_function("forward_b4_t64_c64-par4", |bch| {
        bch.iter(|| {
            ops::pool::with_parallelism(4, || {
                kernels::attention_forward(
                    &mut out,
                    &mut preatt,
                    &mut att,
                    black_box(&inp),
                    b,
                    t,
                    ch,
                    nh,
                    true,
                )
            })
        });
    });
    kernels::attention_forward(&mut out, &mut preatt, &mut att, &inp, b, t, ch, nh, true);
    let dout: Vec<f32> = (0..b * t * ch).map(|_| rng.next_normal() * 0.1).collect();
    let mut dinp = vec![0.0f32; inp.len()];
    let mut dpre = vec![0.0f32; preatt.len()];
    let mut datt = vec![0.0f32; att.len()];
    group.bench_function("backward_b4_t64_c64", |bch| {
        bch.iter(|| {
            ops::pool::with_parallelism(1, || {
                kernels::attention_backward(
                    &mut dinp,
                    &mut dpre,
                    &mut datt,
                    black_box(&dout),
                    &inp,
                    &att,
                    b,
                    t,
                    ch,
                    nh,
                )
            })
        });
    });
    group.bench_function("backward_b4_t64_c64-par4", |bch| {
        bch.iter(|| {
            ops::pool::with_parallelism(4, || {
                kernels::attention_backward(
                    &mut dinp,
                    &mut dpre,
                    &mut datt,
                    black_box(&dout),
                    &inp,
                    &att,
                    b,
                    t,
                    ch,
                    nh,
                )
            })
        });
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for (name, cfg) in [
        ("proxy_tiny", ModelConfig::proxy_tiny()),
        ("proxy_small", ModelConfig::proxy_small()),
    ] {
        let mut rng = SeedStream::new(3);
        let model = Gpt::new(cfg, &mut rng);
        let mut acts = Activations::new(&cfg, 8, cfg.seq_len);
        let mut grads = model.grad_buffer();
        let mut batch = Batch::zeros(8, cfg.seq_len);
        for (i, x) in batch.inputs.iter_mut().enumerate() {
            *x = (i % cfg.vocab_size) as u32;
        }
        for (i, y) in batch.targets.iter_mut().enumerate() {
            *y = ((i + 1) % cfg.vocab_size) as u32;
        }
        group.bench_function(format!("{name}_fwd_bwd_b8"), |bch| {
            bch.iter_batched(
                || (),
                |()| {
                    grads.iter_mut().for_each(|g| *g = 0.0);
                    model.forward(&batch.inputs, Some(&batch.targets), &mut acts);
                    model.backward(&batch.inputs, &batch.targets, &mut acts, &mut grads);
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_attention, bench_train_step);
criterion_main!(benches);
