//! Fig. 7: robustness to data heterogeneity on Pile-style domains.
//!
//! Top panel: partial participation — 16 heterogeneous clients, sampling
//! 25% / 50% / 100% per round. Bottom panel: full participation with
//! {4, 8, 16} clients. An IID 4-client run is included for reference.

use photon_bench::Report;
use photon_core::experiments::{
    build_heterogeneous_federation, build_iid_federation, run_federation, RunOptions,
};
use photon_core::{CohortSpec, FederationConfig, TrainingHistory};
use photon_nn::ModelConfig;
use photon_optim::LrSchedule;

fn base_cfg(population: usize) -> FederationConfig {
    let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), population);
    cfg.local_steps = 8;
    cfg.local_batch = 4;
    cfg.schedule = LrSchedule::paper_cosine(6e-3, 10, 1200);
    cfg.seed = 77;
    cfg
}

fn ppl_series(h: &TrainingHistory) -> Vec<f64> {
    h.rounds.iter().filter_map(|r| r.eval_ppl).collect()
}

fn main() {
    let mut rep = Report::new("fig7_heterogeneity", "Fig. 7: data heterogeneity");
    let rounds = 14u64;
    let opts = RunOptions {
        rounds,
        eval_every: 1,
        eval_windows: 32,
        stop_below: None,
    };

    // Top: partial participation of 16 heterogeneous clients.
    let mut partial = Vec::new();
    for (label, frac) in [("25%", 0.25f64), ("50%", 0.5), ("100%", 1.0)] {
        let mut cfg = base_cfg(16);
        if frac < 1.0 {
            cfg.cohort = CohortSpec::Sample {
                k: ((16.0 * frac) as usize).max(1),
            };
        }
        let (mut fed, val) = build_heterogeneous_federation(&cfg, 30_000).unwrap();
        let h = run_federation(&mut fed, &val, &opts).unwrap();
        partial.push((label, ppl_series(&h)));
    }

    rep.line("\n(top) partial participation, 16 heterogeneous clients:");
    rep.line(&format!(
        "{:>6} {:>10} {:>10} {:>10}",
        "round", "25%", "50%", "100%"
    ));
    for r in 0..rounds as usize {
        rep.line(&format!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2}",
            r,
            partial[0].1.get(r).copied().unwrap_or(f64::NAN),
            partial[1].1.get(r).copied().unwrap_or(f64::NAN),
            partial[2].1.get(r).copied().unwrap_or(f64::NAN),
        ));
    }
    // Fluctuation metric: mean absolute round-to-round change.
    let roughness = |xs: &[f64]| {
        xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (xs.len() - 1).max(1) as f64
    };
    rep.line(&format!(
        "round-to-round fluctuation: 25% = {:.2}, 50% = {:.2}, 100% = {:.2}",
        roughness(&partial[0].1),
        roughness(&partial[1].1),
        roughness(&partial[2].1)
    ));

    // Bottom: full participation across cohort sizes, plus IID reference.
    let mut full = Vec::new();
    for n in [4usize, 8, 16] {
        let cfg = base_cfg(n);
        let (mut fed, val) = build_heterogeneous_federation(&cfg, 30_000).unwrap();
        let h = run_federation(&mut fed, &val, &opts).unwrap();
        full.push((format!("{n} het"), ppl_series(&h)));
    }
    let iid_cfg = base_cfg(4);
    let (mut iid_fed, iid_val) = build_iid_federation(&iid_cfg, 30_000).unwrap();
    let iid = ppl_series(&run_federation(&mut iid_fed, &iid_val, &opts).unwrap());

    rep.line("\n(bottom) full participation:");
    rep.line(&format!(
        "{:>6} {:>10} {:>10} {:>10} {:>12}",
        "round", "4 het", "8 het", "16 het", "4 IID (ref)"
    ));
    for r in 0..rounds as usize {
        rep.line(&format!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2} {:>12.2}",
            r,
            full[0].1.get(r).copied().unwrap_or(f64::NAN),
            full[1].1.get(r).copied().unwrap_or(f64::NAN),
            full[2].1.get(r).copied().unwrap_or(f64::NAN),
            iid.get(r).copied().unwrap_or(f64::NAN),
        ));
    }
    rep.line("\npaper shape: higher sampling ratios converge faster and more");
    rep.line("smoothly; under full participation, heterogeneous data behaves");
    rep.line("like the IID reference, with larger cohorts converging faster.");
    rep.save();
}
