//! Table 4: architecture details for the paper model family, with exact
//! parameter counts from our tied-embedding implementation, plus the
//! CPU-trainable proxy family and its mapping.

use photon_bench::Report;
use photon_nn::ModelConfig;

fn row(rep: &mut Report, label: &str, cfg: &ModelConfig) {
    rep.line(&format!(
        "{:<10} {:>7} {:>6} {:>7} {:>6} {:>8} {:>6} {:>14} {:>12}",
        label,
        cfg.n_layers,
        cfg.d_model,
        cfg.n_heads,
        cfg.exp_ratio,
        cfg.vocab_size,
        cfg.seq_len,
        cfg.param_count(),
        format!("{:.1}", cfg.flops_per_token() / 1e9),
    ));
}

fn main() {
    let mut rep = Report::new("table4_architectures", "Table 4: architecture details");
    rep.line(&format!(
        "{:<10} {:>7} {:>6} {:>7} {:>6} {:>8} {:>6} {:>14} {:>12}",
        "model", "#blocks", "d", "#heads", "ratio", "vocab", "seq", "params", "GF/token"
    ));
    rep.line("\npaper family (analytic; Adam betas (0.9, 0.95) throughout):");
    row(&mut rep, "75M", &ModelConfig::paper_75m());
    row(&mut rep, "125M", &ModelConfig::paper_125m());
    row(&mut rep, "350M", &ModelConfig::paper_350m());
    row(&mut rep, "1.3B", &ModelConfig::paper_1_3b());
    row(&mut rep, "3B", &ModelConfig::paper_3b());
    row(&mut rep, "7B", &ModelConfig::paper_7b());

    rep.line("\nCPU-trainable proxy family (convergence experiments):");
    row(&mut rep, "tiny", &ModelConfig::proxy_tiny());
    row(&mut rep, "small", &ModelConfig::proxy_small());
    row(&mut rep, "medium", &ModelConfig::proxy_medium());
    row(&mut rep, "large", &ModelConfig::proxy_large());

    rep.line("\nproxy -> paper mapping used by the convergence benches:");
    rep.line("  tiny ~ 125M/1.3B | small ~ 3B | medium ~ 7B (see EXPERIMENTS.md)");
    rep.save();
}
