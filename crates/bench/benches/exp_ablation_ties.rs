//! Ablation for §5.5's suggestion: aggregation methods designed for
//! heterogeneous data (TIES-merging, Yadav et al.) versus plain mean
//! aggregation, on the Pile-style four-domain federation with partial
//! participation — the setting where conflicting pseudo-gradients hurt
//! plain averaging the most.

use photon_bench::Report;
use photon_core::experiments::{build_heterogeneous_federation, run_federation, RunOptions};
use photon_core::{CohortSpec, FederationConfig};
use photon_fedopt::AggregationKind;
use photon_nn::ModelConfig;
use photon_optim::LrSchedule;

fn run(aggregation: AggregationKind) -> Vec<f64> {
    let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 8);
    cfg.local_steps = 8;
    cfg.local_batch = 4;
    cfg.cohort = CohortSpec::Sample { k: 4 };
    cfg.aggregation = aggregation;
    cfg.schedule = LrSchedule::paper_cosine(6e-3, 10, 1000);
    cfg.seed = 404;
    let (mut fed, val) = build_heterogeneous_federation(&cfg, 20_000).expect("valid config");
    let opts = RunOptions {
        rounds: 14,
        eval_every: 1,
        eval_windows: 32,
        stop_below: None,
    };
    run_federation(&mut fed, &val, &opts)
        .expect("run failed")
        .rounds
        .iter()
        .filter_map(|r| r.eval_ppl)
        .collect()
}

fn main() {
    let mut rep = Report::new(
        "ablation_ties",
        "Ablation: TIES-merging vs mean aggregation on heterogeneous data",
    );
    rep.line("\nsetting: 8 heterogeneous clients (4 Pile-style domains),");
    rep.line("50% partial participation, tiny proxy.\n");

    let configs = [
        ("mean", AggregationKind::Mean),
        ("ties d=0.5", AggregationKind::Ties { density: 0.5 }),
        ("ties d=0.2", AggregationKind::Ties { density: 0.2 }),
    ];
    let series: Vec<(&str, Vec<f64>)> = configs
        .iter()
        .map(|(name, kind)| (*name, run(*kind)))
        .collect();

    let mut header = format!("{:>6}", "round");
    for (name, _) in &series {
        header.push_str(&format!("{name:>13}"));
    }
    rep.line(&header);
    let rounds = series[0].1.len();
    for r in 0..rounds {
        let mut row = format!("{r:>6}");
        for (_, s) in &series {
            row.push_str(&format!("{:>13.2}", s.get(r).copied().unwrap_or(f64::NAN)));
        }
        rep.line(&row);
    }
    let roughness = |xs: &[f64]| {
        xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (xs.len() - 1).max(1) as f64
    };
    for (name, s) in &series {
        rep.line(&format!(
            "{name}: final ppl {:.2}, round-to-round fluctuation {:.2}",
            s.last().copied().unwrap_or(f64::NAN),
            roughness(s)
        ));
    }
    rep.line("\nmeasured shape: moderate trimming (d=0.5) reaches a lower final");
    rep.line("perplexity than plain mean aggregation by damping conflicting");
    rep.line("domain updates, while aggressive trimming (d=0.2) discards too");
    rep.line("much signal and ends worse — the TIES paper's density sweet-spot");
    rep.line("behaviour. Round-to-round fluctuation under 50% participation is");
    rep.line("dominated by which domains were sampled, so it is similar across");
    rep.line("aggregators at this scale.");
    rep.save();
}
