//! Criterion micro-benchmarks for the communication substrate:
//! compression, Link framing, aggregation and the threaded ring-allreduce.

use criterion::{criterion_group, criterion_main, Criterion};
use photon_comms::{compress_f32s, decompress_f32s, mask_update, ring_allreduce_group, Message};
use photon_fedopt::{aggregate_deltas, ClientUpdate};
use photon_tensor::SeedStream;
use std::hint::black_box;
use std::time::Duration;

const PAYLOAD: usize = 65_536; // ~ a tiny-proxy model's parameter count

fn payload() -> Vec<f32> {
    let mut rng = SeedStream::new(9);
    (0..PAYLOAD).map(|_| rng.next_normal() * 0.02).collect()
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let xs = payload();
    group.throughput(criterion::Throughput::Bytes((PAYLOAD * 4) as u64));
    group.bench_function("compress_64k_f32", |b| {
        b.iter(|| compress_f32s(black_box(&xs)));
    });
    let compressed = compress_f32s(&xs);
    group.bench_function("decompress_64k_f32", |b| {
        b.iter(|| decompress_f32s(black_box(compressed.clone())).unwrap());
    });
    group.finish();
}

fn bench_framing(c: &mut Criterion) {
    let mut group = c.benchmark_group("framing");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let msg = Message::ModelBroadcast {
        round: 1,
        params: payload(),
    };
    group.bench_function("encode_frame_64k", |b| {
        b.iter(|| msg.to_frame(false));
    });
    let frame = msg.to_frame(false);
    group.bench_function("decode_frame_64k", |b| {
        b.iter(|| Message::from_frame(black_box(frame.clone())).unwrap());
    });
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for k in [4usize, 16] {
        let updates: Vec<ClientUpdate> = (0..k)
            .map(|i| {
                let mut rng = SeedStream::new(i as u64);
                ClientUpdate::new(
                    (0..PAYLOAD).map(|_| rng.next_normal() * 1e-3).collect(),
                    1.0,
                )
                .unwrap()
            })
            .collect();
        group.bench_function(format!("fedavg_{k}x64k"), |b| {
            b.iter(|| aggregate_deltas(black_box(&updates)));
        });
    }
    let cohort: Vec<u32> = (0..8).collect();
    group.bench_function("secure_mask_8clients_64k", |b| {
        let mut update = payload();
        b.iter(|| mask_update(&mut update, 3, black_box(&cohort), 42).unwrap());
    });
    group.finish();
}

fn bench_ring_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_allreduce");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for n in [2usize, 4] {
        group.bench_function(format!("{n}workers_64k"), |b| {
            b.iter(|| {
                let workers = ring_allreduce_group(n);
                let handles: Vec<_> = workers
                    .into_iter()
                    .map(|mut w| {
                        std::thread::spawn(move || {
                            let mut data = vec![1.0f32; PAYLOAD];
                            w.allreduce_mean(&mut data);
                            data[0]
                        })
                    })
                    .collect();
                for h in handles {
                    black_box(h.join().unwrap());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compression,
    bench_framing,
    bench_aggregation,
    bench_ring_allreduce
);
criterion_main!(benches);
