//! Fig. 8: tuning DiLoCo's outer learning rate η_s ∈ {0.1, 0.3, 0.5, 0.7}
//! (Nesterov momentum 0.9) on a federation of N = 4 clients, compared with
//! Photon's FedAvg on the same data and seeds.

use photon_bench::{FedRun, Report};
use photon_fedopt::ServerOptKind;
use photon_optim::LrSchedule;

fn main() {
    let mut rep = Report::new("fig8_diloco_lr", "Fig. 8: DiLoCo outer-LR sweep");
    let (n, tau, b_l, rounds) = (4usize, 16u64, 8usize, 14u64);
    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();

    let mut configs: Vec<(String, ServerOptKind)> = [0.1f32, 0.3, 0.5, 0.7]
        .iter()
        .map(|&lr| {
            (
                format!("eta={lr}"),
                ServerOptKind::DiLoCo { lr, momentum: 0.9 },
            )
        })
        .collect();
    configs.push(("photon".to_string(), ServerOptKind::photon_default()));

    for (label, server_opt) in configs {
        let mut run = FedRun::tiny(n, tau, b_l);
        run.server_opt = server_opt;
        run.schedule = LrSchedule::paper_cosine(6e-3, 10, 1500);
        run.seed = 91;
        let history = run.run(rounds, 1, None);
        let series = history
            .rounds
            .iter()
            .map(|r| r.eval_ppl.unwrap_or(f64::NAN))
            .collect();
        columns.push((label, series));
    }

    let mut header = format!("{:>6}", "round");
    for (label, _) in &columns {
        header.push_str(&format!("{label:>12}"));
    }
    rep.line(&header);
    for r in 0..rounds as usize {
        let mut row = format!("{r:>6}");
        for (_, series) in &columns {
            let v = series.get(r).copied().unwrap_or(f64::NAN);
            if v.is_finite() && v < 1e6 {
                row.push_str(&format!("{v:>12.2}"));
            } else {
                row.push_str(&format!("{:>12}", "diverged"));
            }
        }
        rep.line(&row);
    }

    let finals: Vec<String> = columns
        .iter()
        .map(|(l, s)| format!("{l}: {:.2}", s.last().copied().unwrap_or(f64::NAN)))
        .collect();
    rep.line(&format!("\nfinal perplexities: {}", finals.join(" | ")));
    rep.line("\npaper shape: larger eta_s accelerates the early rounds (visible in");
    rep.line("round 0-1 above) but fails to keep descending; the paper's 125M runs");
    rep.line("additionally diverge outright at eta_s >= 0.3, which our smaller,");
    rep.line("f32 proxy is too stable to reproduce — it stalls instead (eta = 0.7");
    rep.line("plateaus above eta = 0.5). Photon's FedAvg (eta_s = 1, no outer");
    rep.line("momentum) reaches roughly half the perplexity of every DiLoCo");
    rep.line("setting in the same rounds.");
    rep.save();
}
