//! Shared harness utilities for the paper-reproduction experiment benches.
//!
//! Every table and figure in the paper's evaluation has a `[[bench]]`
//! target (with `harness = false`) under `benches/`; each prints the same
//! rows/series the paper reports and mirrors its output into
//! `target/experiments/<name>.txt`. Run them all with
//! `cargo bench --workspace`, or one with `cargo bench -p photon-bench
//! --bench exp_table2_system_metrics`.
//!
//! Setting `PHOTON_FULL=1` enlarges the training-based experiments
//! (more rounds, bigger proxies); the default "quick" scale finishes the
//! whole suite in minutes on a laptop.

use photon_core::experiments::{build_iid_federation, run_federation, RunOptions};
use photon_core::{FederationConfig, TrainingHistory};
use photon_fedopt::ServerOptKind;
use photon_nn::ModelConfig;
use photon_optim::LrSchedule;
use std::io::Write;
use std::path::PathBuf;

/// Whether the suite runs at the enlarged `PHOTON_FULL=1` scale.
pub fn full_scale() -> bool {
    std::env::var("PHOTON_FULL").is_ok_and(|v| v == "1")
}

/// A printed-and-saved experiment report.
#[derive(Debug)]
pub struct Report {
    name: String,
    lines: Vec<String>,
}

impl Report {
    /// Starts a report, printing a header.
    pub fn new(name: &str, title: &str) -> Self {
        let mut r = Report {
            name: name.to_string(),
            lines: Vec::new(),
        };
        r.line(&format!("=== {title} ==="));
        r
    }

    /// Prints a line and records it for the saved report.
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        self.lines.push(s.to_string());
    }

    /// Saves the report under `target/experiments/<name>.txt`.
    pub fn save(&self) {
        let dir = experiments_dir();
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.txt", self.name));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(self.lines.join("\n").as_bytes());
            let _ = f.write_all(b"\n");
            println!("[saved {}]", path.display());
        }
    }
}

fn experiments_dir() -> PathBuf {
    // CARGO_TARGET_DIR may relocate the target directory; otherwise anchor
    // at the workspace root (bench binaries run with cwd = crates/bench).
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        })
        .join("experiments")
}

/// The standard quick federated training run used across experiments:
/// IID web-domain shards, FedAvg unless overridden, tiny proxy model.
#[derive(Debug, Clone)]
pub struct FedRun {
    /// Model architecture.
    pub model: ModelConfig,
    /// Number of clients (full participation unless sampled).
    pub clients: usize,
    /// Local steps per round τ.
    pub tau: u64,
    /// Local batch size.
    pub local_batch: usize,
    /// Server optimizer.
    pub server_opt: ServerOptKind,
    /// LR schedule.
    pub schedule: LrSchedule,
    /// Root seed.
    pub seed: u64,
    /// Tokens per client.
    pub tokens_per_client: usize,
}

impl FedRun {
    /// A standard tiny-proxy run.
    pub fn tiny(clients: usize, tau: u64, local_batch: usize) -> Self {
        FedRun {
            model: ModelConfig::proxy_tiny(),
            clients,
            tau,
            local_batch,
            server_opt: ServerOptKind::photon_default(),
            schedule: LrSchedule::paper_cosine(6e-3, 10, 2000),
            seed: 42,
            tokens_per_client: 12_000,
        }
    }

    /// Materializes the federation config.
    pub fn config(&self) -> FederationConfig {
        let mut cfg = FederationConfig::quick_demo(self.model, self.clients);
        cfg.local_steps = self.tau;
        cfg.local_batch = self.local_batch;
        cfg.server_opt = self.server_opt;
        cfg.schedule = self.schedule;
        cfg.seed = self.seed;
        cfg
    }

    /// Runs for up to `rounds` rounds with an optional early-stop target.
    ///
    /// # Panics
    /// Panics if the federation cannot be built (configuration bug).
    pub fn run(&self, rounds: u64, eval_every: u64, stop_below: Option<f64>) -> TrainingHistory {
        let cfg = self.config();
        let (mut fed, val) =
            build_iid_federation(&cfg, self.tokens_per_client).expect("valid experiment config");
        let opts = RunOptions {
            rounds,
            eval_every,
            eval_windows: 48,
            stop_below,
        };
        run_federation(&mut fed, &val, &opts).expect("federated run failed")
    }
}

/// Shared driver for the topology wall-time figures (Fig. 6 at 512 local
/// steps; Figs. 9–10 at 64 / 128): measures rounds-to-target on the tiny
/// proxy, then prints the local-compute / communication breakdown for all
/// three aggregation topologies via the Appendix-B.1 model (ν = 2,
/// 10 Gbps bottleneck, 125M payload).
pub fn run_comm_breakdown(rep: &mut Report, tau: u64, tau_paper: u64, cap: u64) {
    use photon_comms::{Topology, WallTimeModel};
    let b_l = 8usize;
    let target = 16.0f64;
    let s_mb = ModelConfig::paper_125m().param_bytes(2) as f64 / 1e6;

    rep.line(&format!(
        "\ntau = {tau_paper} paper steps (measured at proxy tau = {tau}), target ppl {target}"
    ));
    rep.line(&format!(
        "{:>3} {:>7} | {:>10} | {:>22} {:>22} {:>22}",
        "N", "rounds", "LC [s]", "PS comm [s] (%)", "AR comm [s] (%)", "RAR comm [s] (%)"
    ));
    for n in [2usize, 4, 8, 16] {
        let mut run = FedRun::tiny(n, tau, b_l);
        run.schedule = LrSchedule::paper_cosine(6e-3, 10, 1500);
        run.seed = 55;
        let history = run.run(cap, 1, Some(target));
        let Some(rounds) = history.rounds_to_target(target) else {
            rep.line(&format!(
                "{n:>3} {:>7} | target not reached",
                format!(">{cap}")
            ));
            continue;
        };
        let mut cells = Vec::new();
        let mut lc = 0.0;
        for topology in Topology::all() {
            let wt = WallTimeModel::new(2.0, tau_paper, s_mb, 1250.0, topology);
            let total = wt.total_time(n, rounds);
            lc = total.compute_s;
            cells.push(format!(
                "{:>12.1} ({:>4.1}%)",
                total.comm_s,
                100.0 * total.comm_fraction()
            ));
        }
        rep.line(&format!(
            "{:>3} {:>7} | {:>10.0} | {:>22} {:>22} {:>22}",
            n, rounds, lc, cells[0], cells[1], cells[2]
        ));
    }
}

/// Formats seconds as `1234.5 s (0.34 h)`.
pub fn fmt_time(seconds: f64) -> String {
    format!("{seconds:>9.1} s ({:>6.2} h)", seconds / 3600.0)
}

/// Formats an optional round count, printing `>N` when the target was not
/// reached within the round budget.
pub fn fmt_rounds(r: Option<u64>, budget: u64) -> String {
    match r {
        Some(r) => format!("{r:>5}"),
        None => format!(">{budget:>4}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_saves_to_experiments_dir() {
        let mut r = Report::new("selftest", "self test");
        r.line("row 1");
        r.save();
        let path = experiments_dir().join("selftest.txt");
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.contains("self test"));
        assert!(contents.contains("row 1"));
    }

    #[test]
    fn fed_run_builds_valid_config() {
        let run = FedRun::tiny(4, 8, 4);
        run.config().validate().unwrap();
        assert_eq!(run.config().global_batch(), 16);
    }

    #[test]
    fn formatters() {
        assert!(fmt_time(3600.0).contains("1.00 h"));
        assert_eq!(fmt_rounds(Some(7), 50).trim(), "7");
        assert_eq!(fmt_rounds(None, 50).trim(), ">  50");
    }
}
