use crate::{Shard, TokenCorpus};
use photon_tensor::SeedStream;
use photon_tokenizer::TokenId;

/// One training batch of next-token-prediction examples.
///
/// `inputs` and `targets` are `(batch, seq)` row-major: `targets[b, t]` is
/// the token following `inputs[b, t]` in the source stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Number of sequences.
    pub batch: usize,
    /// Tokens per sequence.
    pub seq: usize,
    /// Input tokens, `batch * seq` elements.
    pub inputs: Vec<TokenId>,
    /// Shifted-by-one target tokens, `batch * seq` elements.
    pub targets: Vec<TokenId>,
}

impl Batch {
    /// Allocates an empty batch of the given geometry.
    pub fn zeros(batch: usize, seq: usize) -> Self {
        Batch {
            batch,
            seq,
            inputs: vec![0; batch * seq],
            targets: vec![0; batch * seq],
        }
    }

    /// Number of supervised tokens in the batch.
    pub fn token_count(&self) -> usize {
        self.batch * self.seq
    }
}

/// An endless source of training batches — Photon's DS-to-client stream.
///
/// Streams are infinite by design: pre-training consumes windows sampled
/// from the shard for as many steps as the recipe demands, exactly like the
/// paper's `BindStream` (Algorithm 1, L.14).
pub trait TokenStream: Send {
    /// Fills `out` with the next batch. `out` keeps its geometry.
    fn next_batch(&mut self, out: &mut Batch);

    /// A human-readable description of the stream's provenance.
    fn describe(&self) -> String;
}

/// Uniform random-window sampling over a [`Shard`].
#[derive(Debug, Clone)]
pub struct ShardStream {
    shard: Shard,
    rng: SeedStream,
}

impl ShardStream {
    /// Creates a stream over a shard with its own RNG.
    ///
    /// # Panics
    /// Panics if the shard is empty.
    pub fn new(shard: Shard, rng: SeedStream) -> Self {
        assert!(!shard.is_empty(), "cannot stream from an empty shard");
        ShardStream { shard, rng }
    }

    /// The underlying shard.
    pub fn shard(&self) -> &Shard {
        &self.shard
    }
}

impl TokenStream for ShardStream {
    fn next_batch(&mut self, out: &mut Batch) {
        let window = out.seq + 1;
        assert!(
            self.shard.len() >= window,
            "shard {} shorter than one window ({} < {})",
            self.shard.name,
            self.shard.len(),
            window
        );
        let max_start = self.shard.len() - window;
        let mut scratch = vec![0 as TokenId; window];
        for b in 0..out.batch {
            let start = if max_start == 0 {
                0
            } else {
                self.rng.next_below(max_start + 1)
            };
            self.shard.copy_window(start, &mut scratch);
            out.inputs[b * out.seq..(b + 1) * out.seq].copy_from_slice(&scratch[..out.seq]);
            out.targets[b * out.seq..(b + 1) * out.seq].copy_from_slice(&scratch[1..]);
        }
    }

    fn describe(&self) -> String {
        format!(
            "shard-stream({}, {} tokens)",
            self.shard.name,
            self.shard.len()
        )
    }
}

/// Mixes several streams with explicit sampling weights, reproducing the
/// paper's DS design: "mixing arbitrary data streams with precise control
/// over sampling across such streams" (§4).
pub struct StreamMixer {
    streams: Vec<Box<dyn TokenStream>>,
    /// Cumulative sampling probabilities.
    cum_weights: Vec<f64>,
    rng: SeedStream,
}

impl std::fmt::Debug for StreamMixer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamMixer")
            .field("n_streams", &self.streams.len())
            .field("cum_weights", &self.cum_weights)
            .finish()
    }
}

impl StreamMixer {
    /// Creates a mixer. Weights are normalized internally.
    ///
    /// # Panics
    /// Panics if the inputs are empty, lengths differ, or weights are not
    /// all positive.
    pub fn new(streams: Vec<Box<dyn TokenStream>>, weights: &[f64], rng: SeedStream) -> Self {
        assert!(!streams.is_empty(), "mixer requires at least one stream");
        assert_eq!(streams.len(), weights.len(), "one weight per stream");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let total: f64 = weights.iter().sum();
        let mut cum = 0.0;
        let cum_weights = weights
            .iter()
            .map(|w| {
                cum += w / total;
                cum
            })
            .collect();
        StreamMixer {
            streams,
            cum_weights,
            rng,
        }
    }

    fn pick(&mut self) -> usize {
        let u = self.rng.next_f64();
        self.cum_weights
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.streams.len() - 1)
    }
}

impl TokenStream for StreamMixer {
    fn next_batch(&mut self, out: &mut Batch) {
        // Sample each sequence's source independently for fine-grained mixing.
        let mut row = Batch::zeros(1, out.seq);
        for b in 0..out.batch {
            let s = self.pick();
            self.streams[s].next_batch(&mut row);
            out.inputs[b * out.seq..(b + 1) * out.seq].copy_from_slice(&row.inputs);
            out.targets[b * out.seq..(b + 1) * out.seq].copy_from_slice(&row.targets);
        }
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.streams.iter().map(|s| s.describe()).collect();
        format!("mixer[{}]", parts.join(", "))
    }
}

/// Deterministic, sequential, non-overlapping evaluation windows over a
/// validation corpus. Iteration ends when the corpus is exhausted.
#[derive(Debug, Clone)]
pub struct EvalStream {
    tokens: Vec<TokenId>,
    seq: usize,
    pos: usize,
}

impl EvalStream {
    /// Creates an evaluation stream with the given sequence length.
    ///
    /// # Panics
    /// Panics if the corpus is shorter than one `seq + 1` window.
    pub fn new(corpus: &TokenCorpus, seq: usize) -> Self {
        assert!(
            corpus.len() > seq,
            "validation corpus shorter than one window"
        );
        EvalStream {
            tokens: corpus.tokens().to_vec(),
            seq,
            pos: 0,
        }
    }

    /// Number of non-overlapping windows available.
    pub fn n_windows(&self) -> usize {
        (self.tokens.len() - 1) / self.seq
    }

    /// Restarts iteration from the beginning.
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// Returns the next `(inputs, targets)` window, or `None` at the end.
    pub fn next_window(&mut self) -> Option<(&[TokenId], &[TokenId])> {
        if self.pos + self.seq + 1 > self.tokens.len() {
            return None;
        }
        let inputs = &self.tokens[self.pos..self.pos + self.seq];
        let targets = &self.tokens[self.pos + 1..self.pos + self.seq + 1];
        self.pos += self.seq;
        Some((inputs, targets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn shard(n: usize, offset: TokenId) -> Shard {
        Shard::from_range(
            format!("s{offset}"),
            Arc::new((offset..offset + n as TokenId).collect()),
            0,
            n,
        )
    }

    #[test]
    fn shard_stream_targets_shift_by_one() {
        let mut stream = ShardStream::new(shard(100, 0), SeedStream::new(1));
        let mut b = Batch::zeros(4, 8);
        stream.next_batch(&mut b);
        for i in 0..4 {
            for t in 0..8 {
                assert_eq!(b.targets[i * 8 + t], b.inputs[i * 8 + t] + 1);
            }
        }
        assert!(stream.describe().contains("s0"));
    }

    #[test]
    fn shard_stream_is_deterministic() {
        let mut s1 = ShardStream::new(shard(64, 0), SeedStream::new(9));
        let mut s2 = ShardStream::new(shard(64, 0), SeedStream::new(9));
        let mut b1 = Batch::zeros(2, 4);
        let mut b2 = Batch::zeros(2, 4);
        s1.next_batch(&mut b1);
        s2.next_batch(&mut b2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn mixer_respects_weights() {
        // Stream A yields tokens < 1000, stream B yields tokens >= 1000.
        let a = Box::new(ShardStream::new(shard(50, 0), SeedStream::new(1)));
        let b = Box::new(ShardStream::new(shard(50, 1000), SeedStream::new(2)));
        let mut mixer = StreamMixer::new(vec![a, b], &[9.0, 1.0], SeedStream::new(3));
        let mut batch = Batch::zeros(1, 4);
        let mut from_a = 0;
        const N: usize = 400;
        for _ in 0..N {
            mixer.next_batch(&mut batch);
            if batch.inputs[0] < 1000 {
                from_a += 1;
            }
        }
        let frac = from_a as f64 / N as f64;
        assert!((frac - 0.9).abs() < 0.07, "frac={frac}");
    }

    #[test]
    fn eval_stream_covers_corpus_once() {
        let corpus = TokenCorpus::new("v", (0..33).collect());
        let mut ev = EvalStream::new(&corpus, 8);
        assert_eq!(ev.n_windows(), 4);
        let mut count = 0;
        let mut last_first = None;
        while let Some((x, y)) = ev.next_window() {
            assert_eq!(x.len(), 8);
            assert_eq!(y[0], x[0] + 1);
            if let Some(prev) = last_first {
                assert_eq!(x[0], prev + 8); // non-overlapping, sequential
            }
            last_first = Some(x[0]);
            count += 1;
        }
        assert_eq!(count, 4);
        ev.reset();
        assert!(ev.next_window().is_some());
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        let a: Box<dyn TokenStream> = Box::new(ShardStream::new(shard(10, 0), SeedStream::new(1)));
        StreamMixer::new(vec![a], &[0.0], SeedStream::new(2));
    }

    #[test]
    #[should_panic(expected = "shorter than one window")]
    fn undersized_shard_cannot_fill_window() {
        let mut stream = ShardStream::new(shard(4, 0), SeedStream::new(1));
        let mut b = Batch::zeros(1, 8);
        stream.next_batch(&mut b);
    }
}
