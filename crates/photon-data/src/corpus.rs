use crate::{DomainKind, SyntheticDomain};
use photon_tensor::SeedStream;
use photon_tokenizer::{TokenId, Tokenizer};
use serde::{Deserialize, Serialize};

/// A pre-tokenized corpus with provenance metadata.
///
/// Photon's Data Sources "leverage low-hanging fruit local storage
/// optimizations, such as data pre-tokenization" (§2.3): `TokenCorpus` is
/// that pre-tokenized representation, produced once and then streamed to
/// clients without re-tokenizing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenCorpus {
    name: String,
    tokens: Vec<TokenId>,
}

impl TokenCorpus {
    /// Creates a corpus from raw tokens.
    pub fn new(name: impl Into<String>, tokens: Vec<TokenId>) -> Self {
        TokenCorpus {
            name: name.into(),
            tokens,
        }
    }

    /// Generates and tokenizes `min_tokens` of text from a synthetic domain.
    ///
    /// Oversamples text as needed until the token target is met, then
    /// truncates, so the returned corpus has exactly `min_tokens` tokens.
    pub fn from_domain(
        domain: &SyntheticDomain,
        tokenizer: &dyn Tokenizer,
        min_tokens: usize,
        rng: &mut SeedStream,
    ) -> Self {
        let mut tokens = Vec::with_capacity(min_tokens + 1024);
        while tokens.len() < min_tokens {
            // Byte-level tokenizers yield ~1 token/char; BPE fewer. Generate
            // in chunks and keep going until we have enough.
            let remaining = min_tokens - tokens.len();
            let text = domain.generate(remaining.max(512), rng);
            tokens.extend(tokenizer.encode(&text));
            tokens.push(tokenizer.eot_id());
        }
        tokens.truncate(min_tokens);
        TokenCorpus {
            name: domain.kind().name().to_string(),
            tokens,
        }
    }

    /// Corpus name (domain name or dataset label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The token buffer.
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the corpus holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Splits off the final `n` tokens as a held-out validation corpus.
    ///
    /// # Panics
    /// Panics if `n >= len()`.
    pub fn split_validation(&mut self, n: usize) -> TokenCorpus {
        assert!(n < self.tokens.len(), "validation split larger than corpus");
        let split = self.tokens.len() - n;
        let val = self.tokens.split_off(split);
        TokenCorpus {
            name: format!("{}-val", self.name),
            tokens: val,
        }
    }

    /// Concatenates several corpora into one (used to form the union
    /// validation set across domains).
    pub fn concat(name: impl Into<String>, parts: &[&TokenCorpus]) -> Self {
        let mut tokens = Vec::with_capacity(parts.iter().map(|c| c.len()).sum());
        for part in parts {
            tokens.extend_from_slice(&part.tokens);
        }
        TokenCorpus {
            name: name.into(),
            tokens,
        }
    }
}

/// Builds one corpus per Pile-style domain, each with `tokens_per_domain`
/// tokens, using independent child seeds per domain.
pub fn build_domain_corpora(
    tokenizer: &dyn Tokenizer,
    tokens_per_domain: usize,
    rng: &mut SeedStream,
) -> Vec<TokenCorpus> {
    DomainKind::all()
        .iter()
        .map(|&kind| {
            let mut drng = rng.split(kind.name());
            let domain = SyntheticDomain::preset(kind, &mut drng);
            TokenCorpus::from_domain(&domain, tokenizer, tokens_per_domain, &mut drng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_tokenizer::ByteTokenizer;

    #[test]
    fn from_domain_hits_exact_token_count() {
        let mut rng = SeedStream::new(1);
        let tok = ByteTokenizer::new();
        let domain = SyntheticDomain::preset(DomainKind::Web, &mut rng);
        let corpus = TokenCorpus::from_domain(&domain, &tok, 10_000, &mut rng);
        assert_eq!(corpus.len(), 10_000);
        assert_eq!(corpus.name(), "web");
        assert!(!corpus.is_empty());
    }

    #[test]
    fn validation_split() {
        let mut c = TokenCorpus::new("x", (0..100).collect());
        let val = c.split_validation(20);
        assert_eq!(c.len(), 80);
        assert_eq!(val.len(), 20);
        assert_eq!(val.tokens()[0], 80);
        assert_eq!(val.name(), "x-val");
    }

    #[test]
    #[should_panic(expected = "validation split larger")]
    fn oversized_split_panics() {
        let mut c = TokenCorpus::new("x", vec![1, 2, 3]);
        c.split_validation(3);
    }

    #[test]
    fn concat_preserves_order() {
        let a = TokenCorpus::new("a", vec![1, 2]);
        let b = TokenCorpus::new("b", vec![3]);
        let c = TokenCorpus::concat("ab", &[&a, &b]);
        assert_eq!(c.tokens(), &[1, 2, 3]);
        assert_eq!(c.name(), "ab");
    }

    #[test]
    fn build_domain_corpora_covers_all_domains() {
        let mut rng = SeedStream::new(2);
        let tok = ByteTokenizer::new();
        let corpora = build_domain_corpora(&tok, 2000, &mut rng);
        assert_eq!(corpora.len(), 4);
        let names: Vec<&str> = corpora.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["arxiv", "web", "wiki", "prose"]);
        assert!(corpora.iter().all(|c| c.len() == 2000));
        // Domain corpora must differ.
        assert_ne!(corpora[0].tokens(), corpora[1].tokens());
    }
}
