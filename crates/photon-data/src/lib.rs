//! # photon-data
//!
//! Data substrate for Photon-RS federated LLM pre-training.
//!
//! The Photon paper trains on C4 (64 uniform shards) and on The Pile
//! (heterogeneous domains: ArXiv, C4, Wikipedia, Gutenberg). Neither corpus
//! is available offline, so this crate provides the closest synthetic
//! equivalent: seeded Markov-chain text generators with per-domain word
//! inventories, letter distributions and punctuation styles
//! ([`SyntheticDomain`]). What matters to federated optimization is the
//! *distributional divergence between client shards*, which these domains
//! control directly — IID sharding reproduces the C4 setup, per-domain
//! sharding reproduces the Pile heterogeneity experiments.
//!
//! The crate also provides the streaming machinery of Photon's Data Sources
//! (DS): token shards, infinite sampling streams, weighted stream mixers and
//! a pre-tokenization cache.
//!
//! ```
//! use photon_data::{DomainKind, SyntheticDomain};
//! use photon_tensor::SeedStream;
//!
//! let mut rng = SeedStream::new(7);
//! let domain = SyntheticDomain::preset(DomainKind::Web, &mut rng);
//! let text = domain.generate(200, &mut rng);
//! assert!(text.len() >= 200);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cache;
mod corpus;
mod divergence;
mod domains;
mod partition;
mod stream;

pub use cache::TokenCache;
pub use corpus::{build_domain_corpora, TokenCorpus};
pub use divergence::{heterogeneity_index, js_divergence, kl_divergence, unigram_distribution};
pub use domains::{DomainKind, SyntheticDomain};
pub use partition::{partition_by_domain, partition_iid, Shard};
pub use stream::{Batch, EvalStream, ShardStream, StreamMixer, TokenStream};
