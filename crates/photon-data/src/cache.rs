//! Pre-tokenization cache: the on-disk format Photon Data Sources use to
//! avoid re-tokenizing text on every training run (§2.3, §4).

use photon_tokenizer::TokenId;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PHTNTOK1";

/// Reader/writer for cached pre-tokenized corpora.
///
/// Format: 8-byte magic, u64 LE token count, then little-endian `u32`
/// tokens. The magic guards against feeding arbitrary files into training.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenCache;

impl TokenCache {
    /// Writes tokens to `path`, overwriting any existing file.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn store(path: &Path, tokens: &[TokenId]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(16 + tokens.len() * 4);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(tokens.len() as u64).to_le_bytes());
        for &t in tokens {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        let mut f = fs::File::create(path)?;
        f.write_all(&buf)?;
        Ok(())
    }

    /// Loads tokens previously written by [`TokenCache::store`].
    ///
    /// # Errors
    /// Returns `InvalidData` if the magic or length is wrong, and propagates
    /// filesystem errors.
    pub fn load(path: &Path) -> io::Result<Vec<TokenId>> {
        let mut f = fs::File::open(path)?;
        let mut raw = Vec::new();
        f.read_to_end(&mut raw)?;
        if raw.len() < 16 || &raw[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a photon token cache",
            ));
        }
        let n = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")) as usize;
        if raw.len() != 16 + n * 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("token cache truncated: expected {n} tokens"),
            ));
        }
        let mut tokens = Vec::with_capacity(n);
        for chunk in raw[16..].chunks_exact(4) {
            tokens.push(TokenId::from_le_bytes(chunk.try_into().expect("4 bytes")));
        }
        Ok(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("photon-data-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip.tok");
        let tokens: Vec<TokenId> = (0..1000).map(|i| i * 7 % 50_368).collect();
        TokenCache::store(&path, &tokens).unwrap();
        assert_eq!(TokenCache::load(&path).unwrap(), tokens);
    }

    #[test]
    fn empty_roundtrip() {
        let path = tmp("empty.tok");
        TokenCache::store(&path, &[]).unwrap();
        assert!(TokenCache::load(&path).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("bad.tok");
        fs::write(&path, b"NOTATOKENCACHEFILE").unwrap();
        let err = TokenCache::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let path = tmp("trunc.tok");
        TokenCache::store(&path, &[1, 2, 3, 4]).unwrap();
        let mut raw = fs::read(&path).unwrap();
        raw.truncate(raw.len() - 3);
        fs::write(&path, &raw).unwrap();
        assert!(TokenCache::load(&path).is_err());
    }

    #[test]
    fn missing_file_errors() {
        assert!(TokenCache::load(Path::new("/nonexistent/x.tok")).is_err());
    }
}
