use photon_tensor::SeedStream;
use serde::{Deserialize, Serialize};

/// The text-domain presets used to emulate The Pile's heterogeneous sources.
///
/// Each preset produces text with a distinct word inventory, letter
/// distribution, word-length profile and punctuation style, so the byte- and
/// token-level statistics of the domains genuinely diverge — the property
/// federated-heterogeneity experiments depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainKind {
    /// Academic prose stand-in (long words, bracketed citations) — "ArXiv".
    Arxiv,
    /// Internet text stand-in (short words, informal punctuation) — "C4".
    Web,
    /// Encyclopedic stand-in (medium words, structured sentences) — "Wikipedia".
    Wiki,
    /// Literary prose stand-in (long sentences, dialogue marks) — "Gutenberg".
    Prose,
}

impl DomainKind {
    /// All four preset kinds in Pile order.
    pub fn all() -> [DomainKind; 4] {
        [
            DomainKind::Arxiv,
            DomainKind::Web,
            DomainKind::Wiki,
            DomainKind::Prose,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DomainKind::Arxiv => "arxiv",
            DomainKind::Web => "web",
            DomainKind::Wiki => "wiki",
            DomainKind::Prose => "prose",
        }
    }
}

impl std::fmt::Display for DomainKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct DomainParams {
    /// Letter-frequency skew: higher concentrates mass on fewer letters.
    letter_temp: f64,
    /// Offset rotating which letters are common (differentiates domains).
    letter_rotation: usize,
    word_len_min: usize,
    word_len_max: usize,
    sent_len_min: usize,
    sent_len_max: usize,
    n_words: usize,
    successors_per_word: usize,
    /// Probability a sentence ends with the domain's alternate punctuation.
    alt_punct_prob: f64,
    alt_punct: char,
}

fn params_for(kind: DomainKind) -> DomainParams {
    match kind {
        DomainKind::Arxiv => DomainParams {
            letter_temp: 1.4,
            letter_rotation: 0,
            word_len_min: 5,
            word_len_max: 11,
            sent_len_min: 10,
            sent_len_max: 24,
            n_words: 160,
            successors_per_word: 6,
            alt_punct_prob: 0.25,
            alt_punct: ']',
        },
        DomainKind::Web => DomainParams {
            letter_temp: 0.8,
            letter_rotation: 7,
            word_len_min: 2,
            word_len_max: 6,
            sent_len_min: 4,
            sent_len_max: 12,
            n_words: 120,
            successors_per_word: 10,
            alt_punct_prob: 0.4,
            alt_punct: '!',
        },
        DomainKind::Wiki => DomainParams {
            letter_temp: 1.1,
            letter_rotation: 13,
            word_len_min: 3,
            word_len_max: 9,
            sent_len_min: 8,
            sent_len_max: 16,
            n_words: 200,
            successors_per_word: 8,
            alt_punct_prob: 0.1,
            alt_punct: ';',
        },
        DomainKind::Prose => DomainParams {
            letter_temp: 1.0,
            letter_rotation: 19,
            word_len_min: 2,
            word_len_max: 8,
            sent_len_min: 12,
            sent_len_max: 30,
            n_words: 140,
            successors_per_word: 5,
            alt_punct_prob: 0.3,
            alt_punct: '"',
        },
    }
}

/// A seeded Markov-chain text generator for one synthetic domain.
///
/// Construction synthesizes a word inventory (letters drawn from a
/// domain-skewed distribution) and a sparse first-order Markov transition
/// graph over words. Generation walks the chain, assembling sentences with
/// domain-specific length and punctuation. Two domains built from different
/// [`DomainKind`]s or seeds produce measurably different byte statistics;
/// the same kind and seed reproduce identical text.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticDomain {
    kind: DomainKind,
    words: Vec<String>,
    /// For each word, candidate successors and cumulative probabilities.
    successors: Vec<Vec<(usize, f64)>>,
    params: DomainParams,
}

impl SyntheticDomain {
    /// Builds a domain from a preset, consuming entropy from `rng` so the
    /// inventory is reproducible given the same stream state.
    pub fn preset(kind: DomainKind, rng: &mut SeedStream) -> Self {
        let params = params_for(kind);
        let letter_probs = letter_distribution(params.letter_temp, params.letter_rotation);
        let mut words = Vec::with_capacity(params.n_words);
        while words.len() < params.n_words {
            let len =
                params.word_len_min + rng.next_below(params.word_len_max - params.word_len_min + 1);
            let w: String = (0..len)
                .map(|_| sample_letter(&letter_probs, rng))
                .collect();
            if !words.contains(&w) {
                words.push(w);
            }
        }
        let mut successors = Vec::with_capacity(params.n_words);
        for _ in 0..params.n_words {
            let mut cands = Vec::with_capacity(params.successors_per_word);
            let mut weights = Vec::with_capacity(params.successors_per_word);
            let mut total = 0.0f64;
            for _ in 0..params.successors_per_word {
                let idx = rng.next_below(params.n_words);
                // Zipf-ish weights: a few successors dominate, making the
                // chain genuinely learnable rather than near-uniform.
                let w = 1.0 / (1.0 + weights.len() as f64).powi(2);
                cands.push(idx);
                weights.push(w);
                total += w;
            }
            let mut cum = 0.0;
            let table: Vec<(usize, f64)> = cands
                .into_iter()
                .zip(weights)
                .map(|(idx, w)| {
                    cum += w / total;
                    (idx, cum)
                })
                .collect();
            successors.push(table);
        }
        SyntheticDomain {
            kind,
            words,
            successors,
            params,
        }
    }

    /// The preset kind this domain was built from.
    pub fn kind(&self) -> DomainKind {
        self.kind
    }

    /// Generates at least `min_chars` characters of domain text.
    pub fn generate(&self, min_chars: usize, rng: &mut SeedStream) -> String {
        let mut out = String::with_capacity(min_chars + 64);
        let mut word = rng.next_below(self.words.len());
        while out.len() < min_chars {
            let sent_len = self.params.sent_len_min
                + rng.next_below(self.params.sent_len_max - self.params.sent_len_min + 1);
            for i in 0..sent_len {
                let w = &self.words[word];
                if i == 0 {
                    // Capitalize the sentence start.
                    let mut cs = w.chars();
                    if let Some(first) = cs.next() {
                        out.extend(first.to_uppercase());
                        out.push_str(cs.as_str());
                    }
                } else {
                    out.push(' ');
                    out.push_str(w);
                }
                word = self.next_word(word, rng);
            }
            if rng.next_f64() < self.params.alt_punct_prob {
                out.push(self.params.alt_punct);
            } else {
                out.push('.');
            }
            out.push(' ');
        }
        out
    }

    fn next_word(&self, current: usize, rng: &mut SeedStream) -> usize {
        let table = &self.successors[current];
        let u = rng.next_f64();
        for &(idx, cum) in table {
            if u <= cum {
                return idx;
            }
        }
        table.last().map(|&(idx, _)| idx).unwrap_or(0)
    }
}

fn letter_distribution(temp: f64, rotation: usize) -> Vec<(char, f64)> {
    // English-like base frequencies, rotated so domains favour different letters.
    const BASE: [f64; 26] = [
        8.2, 1.5, 2.8, 4.3, 12.7, 2.2, 2.0, 6.1, 7.0, 0.15, 0.77, 4.0, 2.4, 6.7, 7.5, 1.9, 0.095,
        6.0, 6.3, 9.1, 2.8, 0.98, 2.4, 0.15, 2.0, 0.074,
    ];
    let mut probs: Vec<f64> = (0..26)
        .map(|i| BASE[(i + rotation) % 26].powf(temp))
        .collect();
    let total: f64 = probs.iter().sum();
    probs.iter_mut().for_each(|p| *p /= total);
    let mut cum = 0.0;
    (0..26)
        .map(|i| {
            cum += probs[i];
            ((b'a' + i as u8) as char, cum)
        })
        .collect()
}

fn sample_letter(dist: &[(char, f64)], rng: &mut SeedStream) -> char {
    let u = rng.next_f64();
    for &(c, cum) in dist {
        if u <= cum {
            return c;
        }
    }
    'z'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn byte_histogram(text: &str) -> [f64; 256] {
        let mut h = [0.0f64; 256];
        for b in text.bytes() {
            h[b as usize] += 1.0;
        }
        let total: f64 = h.iter().sum();
        h.iter_mut().for_each(|v| *v /= total.max(1.0));
        h
    }

    fn l1_distance(a: &[f64; 256], b: &[f64; 256]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = SeedStream::new(5);
        let mut r2 = SeedStream::new(5);
        let d1 = SyntheticDomain::preset(DomainKind::Wiki, &mut r1);
        let d2 = SyntheticDomain::preset(DomainKind::Wiki, &mut r2);
        assert_eq!(d1.generate(500, &mut r1), d2.generate(500, &mut r2));
    }

    #[test]
    fn domains_have_divergent_statistics() {
        let mut rng = SeedStream::new(11);
        let texts: Vec<String> = DomainKind::all()
            .iter()
            .map(|&k| {
                let d = SyntheticDomain::preset(k, &mut rng);
                d.generate(20_000, &mut rng)
            })
            .collect();
        // Every pair of domains must differ substantially in byte statistics.
        for i in 0..texts.len() {
            for j in (i + 1)..texts.len() {
                let d = l1_distance(&byte_histogram(&texts[i]), &byte_histogram(&texts[j]));
                assert!(d > 0.15, "domains {i} and {j} too similar: L1={d:.3}");
            }
        }
        // While two samples from the same domain stay close.
        let mut rng2 = SeedStream::new(11);
        let d = SyntheticDomain::preset(DomainKind::Arxiv, &mut rng2);
        let a = d.generate(20_000, &mut rng2);
        let b = d.generate(20_000, &mut rng2);
        assert!(l1_distance(&byte_histogram(&a), &byte_histogram(&b)) < 0.05);
    }

    #[test]
    fn generates_requested_length() {
        let mut rng = SeedStream::new(3);
        let d = SyntheticDomain::preset(DomainKind::Prose, &mut rng);
        for n in [1, 100, 5000] {
            assert!(d.generate(n, &mut rng).len() >= n);
        }
    }

    #[test]
    fn text_is_sentence_structured() {
        let mut rng = SeedStream::new(9);
        let d = SyntheticDomain::preset(DomainKind::Web, &mut rng);
        let text = d.generate(2000, &mut rng);
        assert!(text.contains(". ") || text.contains("! "));
        assert!(text.chars().next().unwrap().is_uppercase());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(DomainKind::Arxiv.to_string(), "arxiv");
        assert_eq!(DomainKind::all().len(), 4);
    }
}
