use crate::TokenCorpus;
use photon_tensor::SeedStream;
use photon_tokenizer::TokenId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A client's private slice of training data.
///
/// Shards share the underlying token buffers via `Arc`, so a 64-way split
/// of a corpus does not copy the corpus 64 times — mirroring the paper's
/// Data Sources, where a shard is a *view* a client streams from, not a
/// replica.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Shard {
    /// Identifying label, e.g. `c4-shard-07` or `wiki-part-1`.
    pub name: String,
    segments: Vec<Segment>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Segment {
    #[serde(with = "arc_tokens")]
    tokens: Arc<Vec<TokenId>>,
    start: usize,
    end: usize,
}

mod arc_tokens {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &Arc<Vec<TokenId>>, s: S) -> Result<S::Ok, S::Error> {
        serde::Serialize::serialize(v.as_ref(), s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Arc<Vec<TokenId>>, D::Error> {
        let v: Vec<TokenId> = serde::Deserialize::deserialize(d)?;
        Ok(Arc::new(v))
    }
}

impl Shard {
    /// Creates a shard from one contiguous range of a shared buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or empty.
    pub fn from_range(
        name: impl Into<String>,
        tokens: Arc<Vec<TokenId>>,
        start: usize,
        end: usize,
    ) -> Self {
        assert!(start < end && end <= tokens.len(), "invalid shard range");
        Shard {
            name: name.into(),
            segments: vec![Segment { tokens, start, end }],
        }
    }

    /// Total number of tokens visible through this shard.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.end - s.start).sum()
    }

    /// Whether the shard holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Token at a logical position within the shard.
    ///
    /// # Panics
    /// Panics if `pos >= len()`.
    pub fn token_at(&self, pos: usize) -> TokenId {
        let mut rem = pos;
        for seg in &self.segments {
            let n = seg.end - seg.start;
            if rem < n {
                return seg.tokens[seg.start + rem];
            }
            rem -= n;
        }
        panic!("shard position {pos} out of bounds (len {})", self.len());
    }

    /// Copies a logical window `[pos, pos + out.len())` into `out`.
    ///
    /// # Panics
    /// Panics if the window exceeds the shard.
    pub fn copy_window(&self, pos: usize, out: &mut [TokenId]) {
        assert!(pos + out.len() <= self.len(), "window exceeds shard");
        let mut written = 0usize;
        let mut skip = pos;
        for seg in &self.segments {
            let n = seg.end - seg.start;
            if skip >= n {
                skip -= n;
                continue;
            }
            let avail = n - skip;
            let take = avail.min(out.len() - written);
            out[written..written + take]
                .copy_from_slice(&seg.tokens[seg.start + skip..seg.start + skip + take]);
            written += take;
            skip = 0;
            if written == out.len() {
                return;
            }
        }
    }

    /// Splits this shard into `n` nearly equal sub-shards (used when one
    /// data source feeds several nodes inside a client — Algorithm 1, L.22).
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > len()`.
    pub fn split(&self, n: usize) -> Vec<Shard> {
        assert!(n > 0 && n <= self.len(), "cannot split shard into {n}");
        let total = self.len();
        let base = total / n;
        let mut out = Vec::with_capacity(n);
        let mut pos = 0usize;
        for i in 0..n {
            let sz = if i < total % n { base + 1 } else { base };
            out.push(self.sub_shard(format!("{}-part-{i}", self.name), pos, pos + sz));
            pos += sz;
        }
        out
    }

    fn sub_shard(&self, name: String, start: usize, end: usize) -> Shard {
        let mut segments = Vec::new();
        let mut seg_base = 0usize;
        for seg in &self.segments {
            let n = seg.end - seg.start;
            let lo = start.max(seg_base);
            let hi = end.min(seg_base + n);
            if lo < hi {
                segments.push(Segment {
                    tokens: Arc::clone(&seg.tokens),
                    start: seg.start + (lo - seg_base),
                    end: seg.start + (hi - seg_base),
                });
            }
            seg_base += n;
        }
        Shard { name, segments }
    }
}

/// Uniformly partitions a corpus into `n_shards` equal shards, reproducing
/// the paper's "randomly partitioning the C4 dataset uniformly into 64
/// equally sized shards" (§5.1). Block-level shuffling (blocks of
/// `block_tokens`) randomizes shard contents while preserving local token
/// order within blocks, as dataset shard formats do in practice.
///
/// # Panics
/// Panics if the corpus has fewer than `n_shards * block_tokens` tokens.
pub fn partition_iid(
    corpus: &TokenCorpus,
    n_shards: usize,
    block_tokens: usize,
    rng: &mut SeedStream,
) -> Vec<Shard> {
    assert!(n_shards > 0 && block_tokens > 0);
    let tokens = corpus.tokens();
    let n_blocks = tokens.len() / block_tokens;
    assert!(
        n_blocks >= n_shards,
        "corpus too small: {} blocks for {} shards",
        n_blocks,
        n_shards
    );
    let mut block_ids: Vec<usize> = (0..n_blocks).collect();
    rng.shuffle(&mut block_ids);

    let blocks_per = n_blocks / n_shards;
    let mut out = Vec::with_capacity(n_shards);
    for s in 0..n_shards {
        let mut buf = Vec::with_capacity(blocks_per * block_tokens);
        for &b in &block_ids[s * blocks_per..(s + 1) * blocks_per] {
            buf.extend_from_slice(&tokens[b * block_tokens..(b + 1) * block_tokens]);
        }
        let len = buf.len();
        out.push(Shard::from_range(
            format!("{}-shard-{s:02}", corpus.name()),
            Arc::new(buf),
            0,
            len,
        ));
    }
    out
}

/// Pile-style heterogeneous partitioning: assigns each domain corpus to
/// `clients_per_domain` clients by splitting it evenly (paper §5.1: four
/// clients = one source each; eight = two splits; sixteen = four splits).
pub fn partition_by_domain(corpora: &[TokenCorpus], clients_per_domain: usize) -> Vec<Shard> {
    let mut out = Vec::with_capacity(corpora.len() * clients_per_domain);
    for corpus in corpora {
        let tokens = Arc::new(corpus.tokens().to_vec());
        let len = tokens.len();
        let whole = Shard::from_range(corpus.name().to_string(), tokens, 0, len);
        out.extend(whole.split(clients_per_domain));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize) -> TokenCorpus {
        TokenCorpus::new("test", (0..n as TokenId).collect())
    }

    #[test]
    fn iid_partition_is_equal_and_disjoint() {
        let c = corpus(64 * 16);
        let mut rng = SeedStream::new(1);
        let shards = partition_iid(&c, 8, 16, &mut rng);
        assert_eq!(shards.len(), 8);
        assert!(shards.iter().all(|s| s.len() == 128));
        // Disjoint coverage: union of tokens = original set.
        let mut seen: Vec<TokenId> = shards
            .iter()
            .flat_map(|s| (0..s.len()).map(|i| s.token_at(i)).collect::<Vec<_>>())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..1024).collect::<Vec<_>>());
    }

    #[test]
    fn iid_partition_is_shuffled() {
        let c = corpus(1024);
        let mut rng = SeedStream::new(2);
        let shards = partition_iid(&c, 4, 16, &mut rng);
        // With a shuffle, shard 0 should not just be the first quarter.
        let first: Vec<TokenId> = (0..256).map(|i| shards[0].token_at(i)).collect();
        assert_ne!(first, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn domain_partition_shapes() {
        let corpora = vec![corpus(100), TokenCorpus::new("b", (0..100).collect())];
        let shards = partition_by_domain(&corpora, 2);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards[0].len() + shards[1].len(), 100);
    }

    #[test]
    fn window_copy_across_segments() {
        let c = corpus(100);
        let whole = Shard::from_range("x", Arc::new(c.tokens().to_vec()), 0, 100);
        let parts = whole.split(3);
        assert_eq!(parts.iter().map(Shard::len).sum::<usize>(), 100);
        let mut buf = vec![0; 10];
        parts[1].copy_window(5, &mut buf);
        let expect: Vec<TokenId> = (0..10).map(|i| parts[1].token_at(5 + i)).collect();
        assert_eq!(buf, expect);
    }

    #[test]
    #[should_panic(expected = "window exceeds shard")]
    fn oversized_window_panics() {
        let whole = Shard::from_range("x", Arc::new(vec![1, 2, 3]), 0, 3);
        let mut buf = vec![0; 4];
        whole.copy_window(0, &mut buf);
    }

    #[test]
    fn shard_split_uneven() {
        let whole = Shard::from_range("x", Arc::new((0..10).collect()), 0, 10);
        let parts = whole.split(3);
        let lens: Vec<usize> = parts.iter().map(Shard::len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        assert_eq!(parts[2].token_at(0), 7);
    }

    #[test]
    fn serde_roundtrip() {
        let whole = Shard::from_range("x", Arc::new((0..10).collect()), 2, 8);
        let json = serde_json::to_string(&whole).unwrap();
        let back: Shard = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), whole.len());
        assert_eq!(back.token_at(0), whole.token_at(0));
    }
}
