//! Distributional divergence between client shards — the quantitative side
//! of the paper's data-heterogeneity experiments (§5.5). The federated
//! literature characterizes non-IID-ness by the divergence between client
//! data distributions; these helpers measure it on token unigram
//! statistics so experiments can report *how* heterogeneous a split is.

use crate::Shard;

/// Unigram token distribution over a shard (add-one smoothed over the
/// given vocabulary size).
pub fn unigram_distribution(shard: &Shard, vocab_size: usize) -> Vec<f64> {
    let mut counts = vec![1.0f64; vocab_size]; // Laplace smoothing
    for i in 0..shard.len() {
        let t = shard.token_at(i) as usize;
        if t < vocab_size {
            counts[t] += 1.0;
        }
    }
    let total: f64 = counts.iter().sum();
    counts.iter_mut().for_each(|c| *c /= total);
    counts
}

/// Kullback-Leibler divergence `KL(p || q)` in nats.
///
/// # Panics
/// Panics if the distributions have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    p.iter()
        .zip(q)
        .filter(|&(&pi, _)| pi > 0.0)
        .map(|(&pi, &qi)| pi * (pi / qi.max(1e-300)).ln())
        .sum()
}

/// Jensen-Shannon divergence (symmetric, bounded by ln 2).
///
/// # Panics
/// Panics if the distributions have different lengths.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Mean pairwise Jensen-Shannon divergence across a set of shards — a
/// single scalar heterogeneity index for a federation (0 for IID splits,
/// approaching ln 2 for fully disjoint vocabularies).
pub fn heterogeneity_index(shards: &[Shard], vocab_size: usize) -> f64 {
    if shards.len() < 2 {
        return 0.0;
    }
    let dists: Vec<Vec<f64>> = shards
        .iter()
        .map(|s| unigram_distribution(s, vocab_size))
        .collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..dists.len() {
        for j in (i + 1)..dists.len() {
            total += js_divergence(&dists[i], &dists[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn shard_of(tokens: Vec<u32>) -> Shard {
        let len = tokens.len();
        Shard::from_range("t", Arc::new(tokens), 0, len)
    }

    #[test]
    fn identical_shards_have_zero_divergence() {
        let a = shard_of(vec![0, 1, 2, 3, 0, 1]);
        let b = shard_of(vec![0, 1, 2, 3, 0, 1]);
        let p = unigram_distribution(&a, 8);
        let q = unigram_distribution(&b, 8);
        assert!(kl_divergence(&p, &q).abs() < 1e-12);
        assert!(js_divergence(&p, &q).abs() < 1e-12);
    }

    #[test]
    fn disjoint_shards_approach_ln2() {
        let a = shard_of(vec![0; 5000]);
        let b = shard_of(vec![1; 5000]);
        let p = unigram_distribution(&a, 2);
        let q = unigram_distribution(&b, 2);
        let js = js_divergence(&p, &q);
        assert!(js > 0.6 && js <= std::f64::consts::LN_2 + 1e-9, "{js}");
    }

    #[test]
    fn js_is_symmetric_kl_is_not() {
        // Deliberately non-permutation-related distributions (swapping two
        // masses produces a symmetric KL pair, which would be a weak test).
        let p = vec![0.7, 0.2, 0.1];
        let q = vec![0.5, 0.3, 0.2];
        assert!((js_divergence(&p, &q) - js_divergence(&q, &p)).abs() < 1e-12);
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-4);
    }

    #[test]
    fn heterogeneity_index_orders_splits() {
        // IID-ish split vs fully domain-separated split.
        let iid = vec![
            shard_of((0..400).map(|i| i % 7).collect()),
            shard_of((0..400).map(|i| (i + 3) % 7).collect()),
        ];
        let separated = vec![shard_of(vec![0; 400]), shard_of(vec![6; 400])];
        let h_iid = heterogeneity_index(&iid, 7);
        let h_sep = heterogeneity_index(&separated, 7);
        assert!(h_iid < 0.05, "iid index {h_iid}");
        assert!(h_sep > 0.4, "separated index {h_sep}");
        assert_eq!(heterogeneity_index(&iid[..1], 7), 0.0);
    }
}
