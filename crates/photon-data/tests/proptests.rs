//! Property-based tests for sharding and streaming invariants.

use photon_data::{
    partition_by_domain, partition_iid, Batch, ShardStream, TokenCorpus, TokenStream,
};
use photon_tensor::SeedStream;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// IID partitioning is a disjoint, equal-size cover of the shuffled
    /// block set for any compatible geometry.
    #[test]
    fn iid_partition_is_a_partition(
        n_shards in 1usize..8,
        block in 1usize..16,
        extra_blocks in 0usize..8,
        seed in any::<u64>(),
    ) {
        let n_blocks = n_shards * (1 + extra_blocks);
        let total = n_blocks * block;
        let corpus = TokenCorpus::new("p", (0..total as u32).collect());
        let mut rng = SeedStream::new(seed);
        let shards = partition_iid(&corpus, n_shards, block, &mut rng);
        prop_assert_eq!(shards.len(), n_shards);
        // Equal sizes.
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        prop_assert!(sizes.windows(2).all(|w| w[0] == w[1]));
        // Disjoint: collect all tokens, no duplicates.
        let mut seen: Vec<u32> = shards
            .iter()
            .flat_map(|s| (0..s.len()).map(|i| s.token_at(i)).collect::<Vec<_>>())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), n_shards * (n_blocks / n_shards) * block);
    }

    /// Domain partitioning preserves every domain's tokens exactly, in
    /// order, across its splits.
    #[test]
    fn domain_partition_preserves_tokens(
        n_domains in 1usize..4,
        clients_per in 1usize..4,
        len in 8usize..64,
    ) {
        let corpora: Vec<TokenCorpus> = (0..n_domains)
            .map(|d| {
                TokenCorpus::new(
                    format!("d{d}"),
                    (0..len as u32).map(|i| i + 1000 * d as u32).collect(),
                )
            })
            .collect();
        let shards = partition_by_domain(&corpora, clients_per);
        prop_assert_eq!(shards.len(), n_domains * clients_per);
        for (d, corpus) in corpora.iter().enumerate() {
            let mine = &shards[d * clients_per..(d + 1) * clients_per];
            let rebuilt: Vec<u32> = mine
                .iter()
                .flat_map(|s| (0..s.len()).map(|i| s.token_at(i)).collect::<Vec<_>>())
                .collect();
            prop_assert_eq!(&rebuilt[..], corpus.tokens());
        }
    }

    /// Every batch from a shard stream satisfies the next-token property
    /// relative to the shard contents.
    #[test]
    fn stream_batches_are_windows_of_the_shard(
        len in 40usize..200,
        batch in 1usize..4,
        seq in 2usize..16,
        seed in any::<u64>(),
    ) {
        prop_assume!(len > seq + 1);
        let tokens: Vec<u32> = (0..len as u32).map(|i| i * 7 % 1001).collect();
        let shard = photon_data::Shard::from_range("s", Arc::new(tokens.clone()), 0, len);
        let mut stream = ShardStream::new(shard, SeedStream::new(seed));
        let mut b = Batch::zeros(batch, seq);
        stream.next_batch(&mut b);
        for row in 0..batch {
            let inputs = &b.inputs[row * seq..(row + 1) * seq];
            let targets = &b.targets[row * seq..(row + 1) * seq];
            // The window must appear contiguously in the shard.
            let start = tokens
                .windows(seq)
                .position(|w| w == inputs)
                .expect("window not found in shard");
            prop_assert_eq!(targets, &tokens[start + 1..start + 1 + seq]);
        }
    }
}
