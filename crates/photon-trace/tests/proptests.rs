//! Property tests for the recorder's determinism guarantees: histogram
//! and counter merge are order-invariant, and a multi-threaded Sim-clock
//! workload flushes to byte-identical JSONL regardless of scheduling.

use std::sync::Mutex;

use photon_trace::{
    counter_add, flush_to_string, init, observe, reset_for_tests, set_actor, set_sim_time_us, span,
    CounterSet, LogHistogram, Phase, TraceConfig,
};
use proptest::prelude::*;

/// The recorder is process-global; tests that touch it must not overlap.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// Runs a deterministic synthetic federation-shaped workload: `rounds`
/// rounds, each advancing the sim clock, with `clients` worker threads
/// recording spans, counters and histogram samples derived only from
/// `seed`, the round and the client id.
fn run_workload(seed: u64, rounds: u64, clients: u32) -> String {
    init(TraceConfig::default()).expect("recorder init");
    set_actor(0);
    let mut out = String::new();
    for round in 0..rounds {
        set_sim_time_us(round * 1_000_000);
        let mut round_span = span(Phase::Round).arg("round", round);
        round_span.set_sim_dur_us(1_000_000);
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                std::thread::spawn(move || {
                    set_actor(1 + client);
                    let mix = seed ^ (round << 8) ^ client as u64;
                    let mut step = span(Phase::LocalStep)
                        .arg("client", client as u64)
                        .arg("tokens", 128 + (mix % 997));
                    step.set_sim_dur_us(900_000);
                    counter_add("client.steps", 1 + (mix % 3));
                    observe("client.delta_bytes", 1 + (mix % 100_000));
                    drop(step);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        {
            let _merge = span(Phase::RobustMerge).arg("admitted", clients as u64);
        }
        drop(round_span);
        out.push_str(&flush_to_string());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two same-seed Sim-clock runs produce byte-identical JSONL even
    /// though thread scheduling and real timings differ.
    #[test]
    fn same_seed_traces_are_byte_identical(
        seed in any::<u64>(),
        rounds in 1u64..4,
        clients in 1u32..5,
    ) {
        let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_for_tests();
        let first = run_workload(seed, rounds, clients);
        reset_for_tests();
        let second = run_workload(seed, rounds, clients);
        reset_for_tests();
        prop_assert!(!first.is_empty());
        prop_assert_eq!(first, second);
    }

    /// Histogram merge is order-invariant: merging per-thread shards in
    /// any order equals recording the concatenated samples directly.
    #[test]
    fn histogram_merge_is_order_invariant(
        samples in proptest::collection::vec(any::<u64>(), 1..64),
        split in 0usize..64,
    ) {
        let split = split % samples.len();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i < split { left.record(v); } else { right.record(v); }
            whole.record(v);
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        prop_assert_eq!(&lr, &rl);
        prop_assert_eq!(&lr, &whole);
        prop_assert_eq!(lr.quantile(0.5), whole.quantile(0.5));
    }

    /// Counter merge is order-invariant.
    #[test]
    fn counter_merge_is_order_invariant(
        a_vals in proptest::collection::vec(0u64..1_000, 3),
        b_vals in proptest::collection::vec(0u64..1_000, 3),
    ) {
        const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
        let mut a = CounterSet::new();
        let mut b = CounterSet::new();
        for (i, name) in NAMES.iter().enumerate() {
            a.add(name, a_vals[i]);
            b.add(name, b_vals[i]);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        for (i, name) in NAMES.iter().enumerate() {
            prop_assert_eq!(ab.get(name), a_vals[i] + b_vals[i]);
        }
    }
}
