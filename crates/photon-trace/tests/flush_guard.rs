//! Regression tests for the flush-on-drop guard and the flight recorder:
//! a process that aborts a round mid-way (early return, error path) and
//! never reaches its round-boundary flush must still leave every
//! recorded event on disk, as complete lines.

use std::sync::Mutex;

use photon_trace::{
    flight_dump, flight_init, flush, flush_guard, init, instant, reset_for_tests, set_actor,
    set_process_meta, set_sim_time_us, span, Phase, TraceConfig,
};

/// The recorder is process-global; tests that touch it must not overlap.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("photon-fg-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn guard_flushes_partial_round_on_drop() {
    let _lock = RECORDER_LOCK.lock().unwrap();
    reset_for_tests();
    let dir = scratch("guard");
    let path = dir.join("trace.jsonl");
    init(TraceConfig {
        jsonl: Some(path.clone()),
        ..TraceConfig::default()
    })
    .expect("init");
    {
        let _guard = flush_guard();
        set_actor(0);
        set_sim_time_us(1_000);
        // A partial round: the span closes but the driver aborts before
        // its round-boundary flush() call.
        let mut s = span(Phase::Round).arg("round", 0);
        s.set_sim_dur_us(500);
        drop(s);
        instant(Phase::Rollback, "abort_marker", &[("round", 0)]);
        // No explicit flush: the guard drop below is the only flush.
    }
    let text = std::fs::read_to_string(&path).expect("trace file");
    assert!(
        text.lines().any(|l| l.contains("\"name\":\"round\"")),
        "round span missing: {text}"
    );
    assert!(
        text.lines().any(|l| l.contains("abort_marker")),
        "abort marker missing: {text}"
    );
    // Every line is complete JSON-shaped (balanced braces, newline-terminated).
    assert!(text.ends_with('\n'));
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "torn: {line}");
    }
    reset_for_tests();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flight_dump_carries_unflushed_final_round() {
    let _lock = RECORDER_LOCK.lock().unwrap();
    reset_for_tests();
    let dir = scratch("flight");
    let flight_path = dir.join("flight-self.jsonl");
    init(TraceConfig::default()).expect("init");
    flight_init(&flight_path);
    set_process_meta(0xfeed, 4242);
    set_actor(0);
    // Round 0 reaches its flush (lands in the ring)...
    set_sim_time_us(1_000);
    drop(span(Phase::Round).arg("round", 0));
    flush().expect("flush");
    // ...round 1 is cut down before any flush.
    set_sim_time_us(2_000);
    drop(span(Phase::Round).arg("round", 1));
    instant(Phase::CoordRestart, "killed_here", &[]);
    let written = flight_dump().expect("dump").expect("armed");
    assert_eq!(written, flight_path);
    let text = std::fs::read_to_string(&flight_path).expect("flight file");
    // Metadata line first, stamped with the declared pid.
    assert!(text.lines().next().unwrap().contains("process_meta"));
    assert!(text.contains("\"pid\":4242"));
    // Both the flushed round and the unflushed final round are present.
    assert!(
        text.contains("\"ts\":1000,"),
        "flushed round missing: {text}"
    );
    assert!(text.contains("\"ts\":2000,"), "final round missing: {text}");
    assert!(text.contains("killed_here"));
    // The dump was non-consuming: the final round still flushes normally.
    let summary = flush().expect("post-dump flush");
    assert!(summary.events_written >= 3);
    reset_for_tests();
    let _ = std::fs::remove_dir_all(&dir);
}
