//! Property tests for `merge_shards`: merge order-invariance, clock-offset
//! alignment, idempotence of re-merging, and send/recv edge pairing over
//! synthetic multi-process shard sets.

use photon_trace::{merge_shards, net_edge_stats};
use proptest::prelude::*;

/// Builds a synthetic shard for one process: a `process_meta` line plus
/// interleaved net_send/net_recv/span lines at local timestamps. `sends`
/// lists `(seq, local_ts)` frames this process sent; `recvs` lists
/// `(origin, seq, local_ts)` frames it received.
fn shard(
    pid: u32,
    actor: u32,
    offset_us: i64,
    sends: &[(u64, u64)],
    recvs: &[(u32, u64, u64)],
) -> String {
    let mut out = format!(
        "{{\"name\":\"process_meta\",\"cat\":\"orchestration\",\"ph\":\"M\",\"ts\":0,\
         \"pid\":{pid},\"tid\":0,\"args\":{{\"trace_id\":7,\"clock_offset_us\":{offset_us}}}}}\n"
    );
    for &(seq, ts) in sends {
        out.push_str(&format!(
            "{{\"name\":\"net_send\",\"cat\":\"comms\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\
             \"tid\":{actor},\"args\":{{\"origin\":{actor},\"seq\":{seq},\"bytes\":64}}}}\n"
        ));
    }
    for &(origin, seq, ts) in recvs {
        out.push_str(&format!(
            "{{\"name\":\"net_recv\",\"cat\":\"comms\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\
             \"tid\":{actor},\"args\":{{\"origin\":{origin},\"seq\":{seq},\"bytes\":64}}}}\n"
        ));
    }
    out
}

/// Deterministic synthetic run: a coordinator (actor 0) plus `clients`
/// client processes exchanging `frames` frames each way. Every send on
/// one side appears as a recv on the other, so pairing must be complete.
fn synthetic_shards(clients: u32, frames: u64, skews: &[i64]) -> Vec<String> {
    let mut shards = Vec::new();
    let mut coord_sends = Vec::new();
    let mut coord_recvs = Vec::new();
    let mut seq = 0u64;
    for c in 0..clients {
        let actor = c + 1;
        let skew = skews[c as usize % skews.len()];
        let mut client_sends = Vec::new();
        let mut client_recvs = Vec::new();
        for f in 0..frames {
            let coord_ts = 1_000 + u64::from(c) * 10 + f * 100;
            // Coordinator -> client frame.
            coord_sends.push((seq, coord_ts));
            client_recvs.push((0u32, seq, (coord_ts as i64 + 5 - skew).max(0) as u64));
            seq += 1;
            // Client -> coordinator frame (client-local send timestamp).
            let local_send = (coord_ts as i64 + 20 - skew).max(0) as u64;
            client_sends.push((seq, local_send));
            coord_recvs.push((actor, seq, coord_ts + 30));
            seq += 1;
        }
        shards.push(shard(
            2000 + actor,
            actor,
            skew,
            &client_sends,
            &client_recvs,
        ));
    }
    shards.insert(0, shard(1000, 0, 0, &coord_sends, &coord_recvs));
    shards
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merging is invariant to the order shards are passed in.
    #[test]
    fn merge_is_input_order_invariant(
        clients in 1u32..5,
        frames in 1u64..8,
        skews in proptest::collection::vec(-50_000i64..50_000, 1..4),
        rotate in 0usize..5,
    ) {
        let shards = synthetic_shards(clients, frames, &skews);
        let forward = merge_shards(&shards).unwrap();
        let mut rotated = shards.clone();
        let by = rotate % rotated.len();
        rotated.rotate_left(by);
        prop_assert_eq!(&forward, &merge_shards(&rotated).unwrap());
        let mut reversed = shards;
        reversed.reverse();
        prop_assert_eq!(&forward, &merge_shards(&reversed).unwrap());
    }

    /// Every send has its recv endpoint after the merge, and clock skew
    /// (absorbed by the per-shard offset) never breaks the pairing.
    #[test]
    fn every_edge_pairs_after_merge(
        clients in 1u32..5,
        frames in 1u64..8,
        skews in proptest::collection::vec(-50_000i64..50_000, 1..4),
    ) {
        let shards = synthetic_shards(clients, frames, &skews);
        let merged = merge_shards(&shards).unwrap();
        let stats = net_edge_stats(&merged);
        let expect = (clients as usize) * (frames as usize) * 2;
        prop_assert_eq!(stats.sends, expect);
        prop_assert_eq!(stats.recvs, expect);
        prop_assert_eq!(stats.matched, expect);
        prop_assert!((stats.matched_frac() - 1.0).abs() < 1e-12);
    }

    /// A merged timeline is a fixed point: re-merging it changes nothing,
    /// and its timestamps are sorted.
    #[test]
    fn merge_is_idempotent_and_sorted(
        clients in 1u32..4,
        frames in 1u64..6,
        skew in -20_000i64..20_000,
    ) {
        let shards = synthetic_shards(clients, frames, &[skew]);
        let merged = merge_shards(&shards).unwrap();
        // Offsets were already applied; the merged file's meta lines keep
        // their offset args but every ts is aligned, so re-merging must
        // not shift anything twice — strip metas first to model a pure
        // timeline re-merge.
        let timeline: String = merged
            .lines()
            .filter(|l| !l.contains("process_meta"))
            .map(|l| format!("{l}\n"))
            .collect();
        prop_assert_eq!(&merge_shards(std::slice::from_ref(&timeline)).unwrap(), &timeline);
        let ts: Vec<i64> = timeline
            .lines()
            .map(|l| {
                let at = l.find("\"ts\":").unwrap() + 5;
                l[at..].chars().take_while(|c| c.is_ascii_digit() || *c == '-')
                    .collect::<String>().parse().unwrap()
            })
            .collect();
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
