//! The global recorder: per-thread shards, a background drainer thread,
//! and deterministic flush into the sinks.
//!
//! ## Hot path
//!
//! Every public entry point starts with one `Relaxed` load of a global
//! `AtomicBool`. When tracing is disabled that is the entire cost — no
//! clock read, no allocation, no lock. When enabled, a thread records
//! into its own shard behind a mutex nothing else contends on (the
//! drainer touches each shard for microseconds every ~25ms).
//!
//! ## Determinism
//!
//! Shards are drained in registry order into one collector, but the
//! collector sorts pending events by their full field set (timestamp,
//! actor lane, per-shard sequence, content) before writing, and counter/
//! histogram/profile merging is commutative — so the flushed output is
//! independent of thread scheduling and drain timing. With the Sim clock
//! this makes trace files byte-identical across same-seed runs.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::io;
use std::mem;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::clock::{self, ClockMode};
use crate::counters::CounterSet;
use crate::event::{Event, EventKind, Phase, MAX_ARGS};
use crate::hist::LogHistogram;
use crate::profile::PhaseProfile;
use crate::sink::{atomic_write, render_prometheus, JsonlSink};

/// Per-shard event ring capacity. Beyond this, events are counted as
/// dropped rather than grown without bound; profile/counter accounting
/// is never dropped.
const SHARD_EVENT_CAP: usize = 1 << 18;

/// How often the background drainer migrates shard data.
const DRAIN_INTERVAL: Duration = Duration::from_millis(25);

static ENABLED: AtomicBool = AtomicBool::new(false);
static KERNEL_EVENTS: AtomicBool = AtomicBool::new(false);
static DRAINER_STARTED: AtomicBool = AtomicBool::new(false);

struct ShardData {
    events: Vec<Event>,
    seq: u64,
    profile: PhaseProfile,
    counters: CounterSet,
    hists: BTreeMap<&'static str, LogHistogram>,
    dropped: u64,
}

struct Shard {
    data: Mutex<ShardData>,
}

static REGISTRY: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());

struct Collector {
    pending: Vec<Event>,
    profile: PhaseProfile,
    counters: CounterSet,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, LogHistogram>,
    written: u64,
    dropped: u64,
    jsonl: Option<JsonlSink>,
    prometheus: Option<PathBuf>,
    /// OS pid stamped on JSONL lines; 0 until [`set_process_meta`] is
    /// called, which keeps single-process traces byte-identical to the
    /// historical shape.
    pid: u32,
    /// Run-wide trace id ([`set_process_meta`]).
    trace_id: u64,
    /// Estimated offset of this process's trace clock from the
    /// coordinator's, in microseconds ([`set_clock_offset_us`]).
    clock_offset_us: i64,
    /// Process metadata has been set and the next flush should (re)write
    /// the `process_meta` line.
    meta_dirty: bool,
    /// Process metadata was ever set (controls pid stamping).
    meta_set: bool,
}

static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

thread_local! {
    static SHARD: RefCell<Option<Arc<Shard>>> = const { RefCell::new(None) };
    static ACTOR: Cell<u32> = const { Cell::new(0) };
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Recorder configuration passed to [`init`].
#[derive(Debug, Clone, Default)]
pub struct TraceConfig {
    /// JSONL trace file path (`--trace-jsonl`); `None` disables the
    /// trace sink (events are still collected for [`flush_to_string`]).
    pub jsonl: Option<PathBuf>,
    /// Prometheus text snapshot path (`--metrics-text`), rewritten
    /// atomically on every [`flush`].
    pub prometheus: Option<PathBuf>,
    /// Emit per-kernel spans (GEMM/attention/layernorm) as JSONL events
    /// too. They always feed the profiler; as events they dominate trace
    /// volume, so this is opt-in (`--trace-kernels`).
    pub kernel_events: bool,
    /// Which clock stamps events. Defaults to [`ClockMode::Sim`].
    pub clock: ClockMode,
}

/// Everything the recorder knows at a flush boundary.
#[derive(Debug, Clone, Default)]
pub struct FlushSummary {
    /// Cumulative JSONL events written (or rendered) so far.
    pub events_written: u64,
    /// Cumulative events dropped to shard ring-buffer overflow.
    pub events_dropped: u64,
    /// Merged per-phase wall-time profile.
    pub profile: PhaseProfile,
    /// Merged named counters.
    pub counters: CounterSet,
    /// Last-set named gauges.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Merged named histograms.
    pub hists: BTreeMap<&'static str, LogHistogram>,
}

/// True when tracing is enabled (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables tracing with the given sinks and clock. Idempotent per
/// process in normal use; calling again replaces the sink configuration
/// and keeps already-collected data.
pub fn init(config: TraceConfig) -> io::Result<()> {
    let jsonl = match &config.jsonl {
        Some(path) => Some(JsonlSink::create(path)?),
        None => None,
    };
    {
        let mut guard = COLLECTOR.lock();
        let collector = guard.get_or_insert_with(Collector::empty);
        collector.jsonl = jsonl;
        collector.prometheus = config.prometheus.clone();
    }
    clock::set_mode(config.clock);
    KERNEL_EVENTS.store(config.kernel_events, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    if !DRAINER_STARTED.swap(true, Ordering::SeqCst) {
        std::thread::Builder::new()
            .name("photon-trace-drain".into())
            .spawn(|| loop {
                std::thread::sleep(DRAIN_INTERVAL);
                if enabled() {
                    drain_shards();
                }
            })
            .map(|_| ())
            .unwrap_or(());
    }
    Ok(())
}

/// Sets this thread's logical actor lane: 0 is the aggregator/driver,
/// `1 + c` is client `c`. Events and spans recorded by the thread carry
/// this lane as their `tid`.
pub fn set_actor(actor: u32) {
    ACTOR.with(|a| a.set(actor));
}

/// Declares this process's identity in a distributed run: the run-wide
/// trace id (derived from the run seed) and the OS pid to stamp on JSONL
/// lines. Until this is called, lines carry `pid: 0` and no metadata line
/// is written — single-process traces keep their historical byte-identical
/// shape. The next [`flush`] after this call writes a `process_meta`
/// metadata line that `photon trace merge` uses to align shards.
pub fn set_process_meta(trace_id: u64, pid: u32) {
    let mut guard = COLLECTOR.lock();
    let collector = guard.get_or_insert_with(Collector::empty);
    collector.trace_id = trace_id;
    collector.pid = pid;
    collector.meta_set = true;
    collector.meta_dirty = true;
}

/// Publishes this process's estimated trace-clock offset from the
/// coordinator's clock (microseconds; positive means the coordinator's
/// clock reads ahead of ours). Clients derive it from the session
/// handshake round trip; `photon trace merge` adds it to every timestamp
/// in this process's shard. No-op until [`set_process_meta`] declares the
/// process.
pub fn set_clock_offset_us(offset_us: i64) {
    let mut guard = COLLECTOR.lock();
    let collector = guard.get_or_insert_with(Collector::empty);
    collector.clock_offset_us = offset_us;
    if collector.meta_set {
        collector.meta_dirty = true;
    }
}

/// An RAII guard that flushes the recorder when dropped, so a process
/// exiting between round flushes (early return, error path, end of main)
/// never loses its final events. Obtain one with [`flush_guard`].
#[must_use = "the guard flushes on drop; binding it to `_` drops it immediately"]
pub struct FlushGuard {
    _private: (),
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        let _ = flush();
    }
}

/// Returns a [`FlushGuard`] that flushes all sinks when dropped.
pub fn flush_guard() -> FlushGuard {
    FlushGuard { _private: () }
}

impl Collector {
    fn empty() -> Self {
        Self {
            pending: Vec::new(),
            profile: PhaseProfile::new(),
            counters: CounterSet::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            written: 0,
            dropped: 0,
            jsonl: None,
            prometheus: None,
            pid: 0,
            trace_id: 0,
            clock_offset_us: 0,
            meta_dirty: false,
            meta_set: false,
        }
    }

    /// The `process_meta` metadata line `photon trace merge` reads to
    /// learn this shard's pid, trace id and clock offset.
    fn meta_line(&self) -> String {
        format!(
            "{{\"name\":\"process_meta\",\"cat\":\"orchestration\",\"ph\":\"M\",\"ts\":0,\
             \"pid\":{},\"tid\":0,\"args\":{{\"trace_id\":{},\"clock_offset_us\":{}}}}}",
            self.pid, self.trace_id, self.clock_offset_us
        )
    }

    fn summary(&self) -> FlushSummary {
        FlushSummary {
            events_written: self.written,
            events_dropped: self.dropped,
            profile: self.profile.clone(),
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
        }
    }
}

fn with_shard<R>(f: impl FnOnce(&mut ShardData) -> R) -> R {
    SHARD.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let shard = Arc::new(Shard {
                data: Mutex::new(ShardData {
                    events: Vec::new(),
                    seq: 0,
                    profile: PhaseProfile::new(),
                    counters: CounterSet::new(),
                    hists: BTreeMap::new(),
                    dropped: 0,
                }),
            });
            REGISTRY.lock().push(Arc::clone(&shard));
            *slot = Some(shard);
        }
        let shard = slot.as_ref().map(Arc::clone);
        drop(slot);
        let shard = shard.unwrap_or_else(|| unreachable!("shard installed above"));
        let mut data = shard.data.lock();
        f(&mut data)
    })
}

/// Migrates every shard's data into the collector. Dead threads' shards
/// (only referenced by the registry, fully drained) are pruned.
fn drain_shards() {
    let shards: Vec<Arc<Shard>> = REGISTRY.lock().iter().map(Arc::clone).collect();
    let mut events: Vec<Event> = Vec::new();
    let mut profile = PhaseProfile::new();
    let mut counters = CounterSet::new();
    let mut hists: BTreeMap<&'static str, LogHistogram> = BTreeMap::new();
    let mut dropped = 0u64;
    for shard in &shards {
        let mut data = shard.data.lock();
        events.append(&mut data.events);
        profile.merge(&data.profile);
        data.profile = PhaseProfile::new();
        counters.merge(&data.counters);
        data.counters.clear();
        for (name, hist) in mem::take(&mut data.hists) {
            hists.entry(name).or_default().merge(&hist);
        }
        dropped += mem::take(&mut data.dropped);
    }
    {
        let mut guard = COLLECTOR.lock();
        let collector = guard.get_or_insert_with(Collector::empty);
        collector.pending.append(&mut events);
        collector.profile.merge(&profile);
        collector.counters.merge(&counters);
        for (name, hist) in hists {
            collector.hists.entry(name).or_default().merge(&hist);
        }
        collector.dropped += dropped;
    }
    REGISTRY
        .lock()
        .retain(|shard| Arc::strong_count(shard) > 1 || !shard_is_empty(shard));
}

fn shard_is_empty(shard: &Shard) -> bool {
    let data = shard.data.lock();
    data.events.is_empty()
        && data.counters.is_empty()
        && data.hists.is_empty()
        && data.profile.is_empty()
        && data.dropped == 0
}

/// An in-flight span. Records its phase timing (and, for event-emitting
/// phases, a JSONL event) when dropped. Must be dropped on the thread
/// that created it — self-time accounting is thread-local.
#[must_use = "a span records on drop; binding it to `_` ends it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    phase: Phase,
    name: &'static str,
    ts_us: u64,
    start: Instant,
    sim_dur_us: u64,
    args: [(&'static str, u64); MAX_ARGS],
    nargs: usize,
}

/// Opens a span for `phase`. No-op (and allocation-free) when tracing is
/// disabled.
#[inline]
pub fn span(phase: Phase) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    CHILD_NS.with(|stack| stack.borrow_mut().push(0));
    Span {
        inner: Some(SpanInner {
            phase,
            name: phase.name(),
            ts_us: clock::now_us(),
            start: Instant::now(),
            sim_dur_us: 0,
            args: [("", 0); MAX_ARGS],
            nargs: 0,
        }),
    }
}

impl Span {
    /// Overrides the event name (defaults to the phase name).
    pub fn named(mut self, name: &'static str) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.name = name;
        }
        self
    }

    /// Attaches a numeric arg (builder form; capped at 4 args).
    pub fn arg(mut self, key: &'static str, value: u64) -> Self {
        self.set_arg(key, value);
        self
    }

    /// Attaches a numeric arg after creation (capped at 4 args).
    pub fn set_arg(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = self.inner.as_mut() {
            if inner.nargs < MAX_ARGS {
                inner.args[inner.nargs] = (key, value);
                inner.nargs += 1;
            }
        }
    }

    /// Sets the deterministic simulated duration (µs) this span reports
    /// in Sim-clock traces. Without it, Sim-mode events have `dur: 0`;
    /// measured wall time always feeds the profiler either way.
    pub fn set_sim_dur_us(&mut self, us: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.sim_dur_us = us;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed_ns = inner.start.elapsed().as_nanos() as u64;
        let child_ns = CHILD_NS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent = parent.saturating_add(elapsed_ns);
            }
            child
        });
        let self_ns = elapsed_ns.saturating_sub(child_ns);
        let emit = inner
            .phase
            .emits_event(KERNEL_EVENTS.load(Ordering::Relaxed));
        let actor = ACTOR.with(|a| a.get());
        let dur_us = if clock::is_sim() {
            inner.sim_dur_us
        } else {
            elapsed_ns / 1_000
        };
        with_shard(|data| {
            data.profile.record_span(inner.phase, elapsed_ns, self_ns);
            if emit {
                if data.events.len() < SHARD_EVENT_CAP {
                    let seq = data.seq;
                    data.seq += 1;
                    data.events.push(Event {
                        ts_us: inner.ts_us,
                        actor,
                        seq,
                        phase: inner.phase,
                        name: inner.name,
                        kind: EventKind::Span,
                        dur_us,
                        args: inner.args,
                    });
                } else {
                    data.dropped += 1;
                }
            }
        });
    }
}

/// Records an instantaneous marker event with up to 4 numeric args.
#[inline]
pub fn instant(phase: Phase, name: &'static str, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let ts_us = clock::now_us();
    let actor = ACTOR.with(|a| a.get());
    let mut packed = [("", 0u64); MAX_ARGS];
    for (slot, kv) in packed.iter_mut().zip(args.iter()) {
        *slot = *kv;
    }
    with_shard(|data| {
        if data.events.len() < SHARD_EVENT_CAP {
            let seq = data.seq;
            data.seq += 1;
            data.events.push(Event {
                ts_us,
                actor,
                seq,
                phase,
                name,
                kind: EventKind::Instant,
                dur_us: 0,
                args: packed,
            });
        } else {
            data.dropped += 1;
        }
    });
}

/// Adds `delta` to the named global counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_shard(|data| data.counters.add(name, delta));
}

/// Sets a named gauge (last write wins; call from the driver thread for
/// deterministic snapshots).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let mut guard = COLLECTOR.lock();
    guard
        .get_or_insert_with(Collector::empty)
        .gauges
        .insert(name, value);
}

/// Records one sample into the named global histogram.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_shard(|data| {
        data.hists.entry(name).or_default().record(value);
    });
}

/// Drains all shards into the collector and returns the merged state
/// without touching any sink.
pub fn drain_now() -> FlushSummary {
    drain_shards();
    COLLECTOR
        .lock()
        .get_or_insert_with(Collector::empty)
        .summary()
}

/// Drains all shards, writes pending events to the JSONL sink (sorted
/// deterministically), rewrites the Prometheus snapshot atomically, and
/// returns the merged state. Called by drivers at every round boundary.
pub fn flush() -> io::Result<FlushSummary> {
    if !enabled() {
        return Ok(FlushSummary::default());
    }
    drain_shards();
    let mut guard = COLLECTOR.lock();
    let collector = guard.get_or_insert_with(Collector::empty);
    let mut batch = mem::take(&mut collector.pending);
    batch.sort();
    collector.written += batch.len() as u64;
    let pid = collector.pid;
    if collector.meta_dirty {
        collector.meta_dirty = false;
        let meta = collector.meta_line();
        if let Some(sink) = collector.jsonl.as_mut() {
            sink.write_line(&meta)?;
        }
        crate::flight::note_meta(meta);
    }
    if let Some(sink) = collector.jsonl.as_mut() {
        for event in &batch {
            sink.write_line(&event.to_json_line_with_pid(pid))?;
        }
        sink.flush()?;
    }
    crate::flight::note_events(&batch);
    if let Some(path) = collector.prometheus.clone() {
        let text = render_prometheus(
            &collector.counters,
            &collector.gauges,
            &collector.hists,
            &collector.profile,
        );
        atomic_write(&path, &text)?;
    }
    Ok(collector.summary())
}

/// Drains all shards and renders every pending event as sorted JSONL
/// into a string (consuming them), without touching file sinks. Intended
/// for determinism tests.
pub fn flush_to_string() -> String {
    drain_shards();
    let mut guard = COLLECTOR.lock();
    let collector = guard.get_or_insert_with(Collector::empty);
    let mut batch = mem::take(&mut collector.pending);
    batch.sort();
    collector.written += batch.len() as u64;
    let mut out = String::new();
    for event in &batch {
        out.push_str(&event.to_json_line());
        out.push('\n');
    }
    out
}

/// Disables tracing and discards all recorder state (shards, collector,
/// sinks, sim clock). Tests that exercise the global recorder must
/// serialize on their own lock, call this first, and not hold spans
/// across the reset.
pub fn reset_for_tests() {
    ENABLED.store(false, Ordering::SeqCst);
    KERNEL_EVENTS.store(false, Ordering::SeqCst);
    let shards: Vec<Arc<Shard>> = mem::take(&mut *REGISTRY.lock());
    for shard in shards {
        let mut data = shard.data.lock();
        data.events.clear();
        data.profile = PhaseProfile::new();
        data.counters.clear();
        data.hists.clear();
        data.dropped = 0;
        data.seq = 0;
    }
    SHARD.with(|slot| *slot.borrow_mut() = None);
    *COLLECTOR.lock() = None;
    crate::flight::reset_for_tests();
    clock::set_sim_time_us(0);
    clock::set_mode(ClockMode::Sim);
}

/// Snapshot used by the flight recorder: the process pid, the metadata
/// line (when process identity was declared) and a clone of every event
/// drained but not yet flushed. Non-consuming, so a dump never steals
/// events from a later flush.
pub(crate) fn flight_snapshot() -> (u32, Option<String>, Vec<Event>) {
    drain_shards();
    let mut guard = COLLECTOR.lock();
    let collector = guard.get_or_insert_with(Collector::empty);
    let mut pending = collector.pending.clone();
    pending.sort();
    let meta = collector.meta_set.then(|| collector.meta_line());
    (collector.pid, meta, pending)
}

#[cfg(test)]
pub(crate) static TEST_GUARD: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let _guard = TEST_GUARD.lock();
        reset_for_tests();
        counter_add("never", 1);
        observe("never_hist", 5);
        let s = span(Phase::Round).arg("round", 1);
        drop(s);
        let summary = drain_now();
        assert_eq!(summary.counters.len(), 0);
        assert_eq!(summary.events_written, 0);
        assert!(summary.profile.is_empty());
    }

    #[test]
    fn spans_nest_with_self_time_accounting() {
        let _guard = TEST_GUARD.lock();
        reset_for_tests();
        init(TraceConfig::default()).expect("init");
        set_actor(0);
        clock::set_sim_time_us(1_000_000);
        {
            let mut outer = span(Phase::Round).arg("round", 3);
            {
                let _inner = span(Phase::GuardScreen);
                std::thread::sleep(Duration::from_millis(2));
            }
            outer.set_sim_dur_us(500);
        }
        let text = flush_to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "two span events: {text}");
        // Sorted output: both share ts/actor, guard_screen closed first.
        assert!(lines[0].contains("guard_screen"));
        assert!(lines[1].contains("\"name\":\"round\""));
        assert!(lines[1].contains("\"dur\":500"));
        assert!(lines[1].contains("\"ts\":1000000"));
        let summary = drain_now();
        let round = summary.profile.get(Phase::Round).expect("round stat");
        let guard = summary.profile.get(Phase::GuardScreen).expect("guard stat");
        assert!(guard.total_ns >= 2_000_000);
        assert!(round.total_ns >= guard.total_ns);
        assert!(round.self_ns <= round.total_ns - guard.total_ns + 1_000_000);
        reset_for_tests();
    }

    #[test]
    fn counters_and_hists_merge_across_threads() {
        let _guard = TEST_GUARD.lock();
        reset_for_tests();
        init(TraceConfig::default()).expect("init");
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    set_actor(1 + i);
                    counter_add("work.items", 10);
                    observe("work.latency_ns", 1_000 * (i as u64 + 1));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let summary = drain_now();
        assert_eq!(summary.counters.get("work.items"), 40);
        let hist = summary.hists.get("work.latency_ns").expect("hist");
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.max(), 4_000);
        reset_for_tests();
    }

    #[test]
    fn kernel_spans_are_profile_only_by_default() {
        let _guard = TEST_GUARD.lock();
        reset_for_tests();
        init(TraceConfig::default()).expect("init");
        drop(span(Phase::KernelGemm));
        drop(span(Phase::PoolDispatch));
        let text = flush_to_string();
        assert!(text.is_empty(), "no kernel events expected: {text}");
        let summary = drain_now();
        assert!(summary.profile.get(Phase::KernelGemm).is_some());
        assert!(summary.profile.get(Phase::PoolDispatch).is_some());
        reset_for_tests();
    }
}
