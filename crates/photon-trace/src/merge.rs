//! Merging per-process trace shards into one chrome://tracing timeline.
//!
//! Each process in a multi-process run writes its own JSONL shard whose
//! `process_meta` metadata line carries the process pid, the run trace id
//! and the process's estimated clock offset from the coordinator (the
//! session-handshake estimate; 0 under the Sim clock, where every process
//! already shares the simulated timeline). [`merge_shards`] shifts every
//! event timestamp by its shard's offset and sorts the union with a key
//! that is independent of shard input order, so the merged timeline is
//! deterministic. [`net_edge_stats`] then pairs `net_send`/`net_recv`
//! events by `(origin, seq)` to measure how many wire-frame spans have
//! both endpoints in the merged view.

/// Send/recv endpoint pairing statistics over a merged timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetEdgeStats {
    /// `net_send` events in the timeline.
    pub sends: usize,
    /// `net_recv` events in the timeline.
    pub recvs: usize,
    /// Sends whose `(origin, seq)` key also appears on a recv.
    pub matched: usize,
}

impl NetEdgeStats {
    /// Fraction of sends with a matching recv endpoint (1.0 when there
    /// are no sends at all).
    pub fn matched_frac(&self) -> f64 {
        if self.sends == 0 {
            1.0
        } else {
            self.matched as f64 / self.sends as f64
        }
    }
}

/// Extracts the integer value of `"key":<digits>` from a JSON line
/// (first occurrence; the writer emits unescaped fixed-shape lines, so
/// textual scanning is exact).
fn field_i64(line: &str, key: &str) -> Option<i64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line.as_bytes()[at..];
    let mut end = 0;
    if rest.first() == Some(&b'-') {
        end = 1;
    }
    while end < rest.len() && rest[end].is_ascii_digit() {
        end += 1;
    }
    line[at..at + end].parse().ok()
}

/// Rewrites the first `"ts":<n>` field of `line` to `new_ts`.
fn rewrite_ts(line: &str, new_ts: i64) -> String {
    let needle = "\"ts\":";
    let Some(at) = line.find(needle).map(|i| i + needle.len()) else {
        return line.to_string();
    };
    let rest = &line.as_bytes()[at..];
    let mut end = 0;
    if rest.first() == Some(&b'-') {
        end = 1;
    }
    while end < rest.len() && rest[end].is_ascii_digit() {
        end += 1;
    }
    format!("{}{}{}", &line[..at], new_ts, &line[at + end..])
}

/// Merges per-process JSONL trace shards (file *contents*, one string per
/// shard) into a single chrome://tracing timeline.
///
/// Each shard's `process_meta` line (when present) supplies a clock
/// offset added to every event timestamp in that shard, aligning all
/// shards to the coordinator's clock; shards without metadata (single
/// process, Sim clock) pass through unshifted, so merging one sim shard
/// reproduces it byte-identically. The merged output is sorted by
/// (aligned timestamp, pid, position within the shard, line content) —
/// a key independent of the order shards are passed in.
///
/// # Errors
/// Returns a description of the first malformed line (an event line with
/// no parsable `"ts"` field).
pub fn merge_shards(shards: &[String]) -> Result<String, String> {
    // (ts, pid, idx_in_shard, line)
    let mut entries: Vec<(i64, i64, usize, String)> = Vec::new();
    for shard in shards {
        // The offset and pid come from the shard's last process_meta line
        // (a later handshake refines the estimate).
        let mut offset = 0i64;
        let mut pid = 0i64;
        let mut meta: Option<String> = None;
        for line in shard.lines() {
            if line.contains("\"name\":\"process_meta\"") {
                offset = field_i64(line, "clock_offset_us").unwrap_or(0);
                pid = field_i64(line, "pid").unwrap_or(0);
                meta = Some(line.to_string());
            }
        }
        if let Some(meta) = meta {
            entries.push((i64::MIN, pid, 0, meta));
        }
        for (idx, line) in shard.lines().enumerate() {
            if line.is_empty() || line.contains("\"name\":\"process_meta\"") {
                continue;
            }
            let ts = field_i64(line, "ts")
                .ok_or_else(|| format!("shard line has no \"ts\" field: {line}"))?;
            let aligned = ts.saturating_add(offset).max(0);
            let line = if aligned == ts {
                line.to_string()
            } else {
                rewrite_ts(line, aligned)
            };
            entries.push((aligned, pid, idx, line));
        }
    }
    entries.sort();
    let mut out = String::new();
    for (_, _, _, line) in entries {
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// Scans a merged timeline for `net_send`/`net_recv` events and pairs
/// them by their `(origin, seq)` args.
pub fn net_edge_stats(merged: &str) -> NetEdgeStats {
    let mut sends: Vec<(i64, i64)> = Vec::new();
    let mut recvs: Vec<(i64, i64)> = Vec::new();
    for line in merged.lines() {
        let bucket = if line.contains("\"name\":\"net_send\"") {
            &mut sends
        } else if line.contains("\"name\":\"net_recv\"") {
            &mut recvs
        } else {
            continue;
        };
        if let (Some(origin), Some(seq)) = (field_i64(line, "origin"), field_i64(line, "seq")) {
            bucket.push((origin, seq));
        }
    }
    let recv_set: std::collections::BTreeSet<(i64, i64)> = recvs.iter().copied().collect();
    let matched = sends.iter().filter(|k| recv_set.contains(k)).count();
    NetEdgeStats {
        sends: sends.len(),
        recvs: recvs.len(),
        matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_handles_negative_and_missing() {
        let line = r#"{"name":"process_meta","ts":0,"pid":77,"args":{"clock_offset_us":-1250}}"#;
        assert_eq!(field_i64(line, "clock_offset_us"), Some(-1250));
        assert_eq!(field_i64(line, "pid"), Some(77));
        assert_eq!(field_i64(line, "absent"), None);
    }

    #[test]
    fn single_sim_shard_merges_byte_identically() {
        let shard = "{\"name\":\"round\",\"cat\":\"orchestration\",\"ph\":\"X\",\"ts\":10,\
                     \"dur\":5,\"pid\":0,\"tid\":0}\n\
                     {\"name\":\"round\",\"cat\":\"orchestration\",\"ph\":\"X\",\"ts\":20,\
                     \"dur\":5,\"pid\":0,\"tid\":0}\n"
            .to_string();
        assert_eq!(merge_shards(std::slice::from_ref(&shard)).unwrap(), shard);
    }

    #[test]
    fn offsets_shift_and_order_is_input_invariant() {
        let coord = "{\"name\":\"process_meta\",\"cat\":\"orchestration\",\"ph\":\"M\",\"ts\":0,\
                     \"pid\":100,\"tid\":0,\"args\":{\"trace_id\":9,\"clock_offset_us\":0}}\n\
                     {\"name\":\"a\",\"cat\":\"comms\",\"ph\":\"i\",\"ts\":500,\"pid\":100,\"tid\":0}\n"
            .to_string();
        let client = "{\"name\":\"process_meta\",\"cat\":\"orchestration\",\"ph\":\"M\",\"ts\":0,\
                      \"pid\":200,\"tid\":1,\"args\":{\"trace_id\":9,\"clock_offset_us\":400}}\n\
                      {\"name\":\"b\",\"cat\":\"comms\",\"ph\":\"i\",\"ts\":50,\"pid\":200,\"tid\":1}\n"
            .to_string();
        let ab = merge_shards(&[coord.clone(), client.clone()]).unwrap();
        let ba = merge_shards(&[client, coord]).unwrap();
        assert_eq!(ab, ba);
        // Client event shifted to ts 450, so it sorts before the coordinator's 500.
        let events: Vec<&str> = ab.lines().filter(|l| !l.contains("process_meta")).collect();
        assert!(events[0].contains("\"name\":\"b\"") && events[0].contains("\"ts\":450"));
        assert!(events[1].contains("\"name\":\"a\""));
    }

    #[test]
    fn edge_stats_pair_by_origin_seq() {
        let merged = "{\"name\":\"net_send\",\"ts\":1,\"args\":{\"origin\":0,\"seq\":1,\"bytes\":8}}\n\
                      {\"name\":\"net_send\",\"ts\":2,\"args\":{\"origin\":0,\"seq\":2,\"bytes\":8}}\n\
                      {\"name\":\"net_recv\",\"ts\":3,\"args\":{\"origin\":0,\"seq\":1,\"bytes\":8}}\n";
        let stats = net_edge_stats(merged);
        assert_eq!(stats.sends, 2);
        assert_eq!(stats.recvs, 1);
        assert_eq!(stats.matched, 1);
        assert!((stats.matched_frac() - 0.5).abs() < 1e-12);
        assert!((NetEdgeStats::default().matched_frac() - 1.0).abs() < 1e-12);
    }
}
