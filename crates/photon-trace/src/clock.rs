//! The trace clock: simulated walltime (deterministic replay) or a real
//! monotonic clock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Which clock stamps trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Timestamps are the simulated federation walltime last published
    /// through [`set_sim_time_us`] — a pure function of the round index,
    /// so traces replay bit-identically. This is the default for every
    /// simulation driver.
    #[default]
    Sim,
    /// Timestamps are real microseconds since tracing was enabled.
    Monotonic,
}

static SIM_MODE: AtomicBool = AtomicBool::new(true);
static SIM_NOW_US: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

pub(crate) fn set_mode(mode: ClockMode) {
    SIM_MODE.store(mode == ClockMode::Sim, Ordering::SeqCst);
    if mode == ClockMode::Monotonic {
        // Re-anchor the epoch lazily on first read after enabling.
        let _ = EPOCH.get_or_init(Instant::now);
    }
}

pub(crate) fn is_sim() -> bool {
    SIM_MODE.load(Ordering::Relaxed)
}

/// Publishes the current simulated walltime in microseconds. Federation
/// drivers call this at every round boundary with
/// `SimClock::now_ms(round) * 1000`; all events recorded until the next
/// update are stamped with this value.
pub fn set_sim_time_us(us: u64) {
    SIM_NOW_US.store(us, Ordering::SeqCst);
}

/// The most recently published simulated walltime in microseconds.
pub fn sim_time_us() -> u64 {
    SIM_NOW_US.load(Ordering::Relaxed)
}

/// The timestamp for an event recorded right now, per the active mode:
/// the published simulated walltime under [`ClockMode::Sim`], real
/// microseconds since tracing was enabled under [`ClockMode::Monotonic`].
/// Distributed callers (photon-net) stamp wire-frame trace contexts with
/// this so the receiver can estimate a cross-process clock offset.
pub fn now_us() -> u64 {
    if is_sim() {
        sim_time_us()
    } else {
        EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_is_what_was_published() {
        let _guard = crate::recorder::TEST_GUARD.lock();
        set_mode(ClockMode::Sim);
        set_sim_time_us(42_000);
        assert_eq!(sim_time_us(), 42_000);
        assert_eq!(now_us(), 42_000);
        set_sim_time_us(0);
    }
}
