//! Log-scale histograms with a deterministic, order-invariant merge.

/// Number of log2 buckets. Bucket `i` counts values `v` with
/// `bucket_index(v) == i`, i.e. `v == 0` lands in bucket 0 and otherwise
/// `i = 64 - leading_zeros(v)` clamped to the last bucket, covering the
/// full `u64` range.
pub(crate) const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (latencies in ns, byte
/// sizes, ...).
///
/// Merging two histograms is bucket-wise addition plus min/min, max/max
/// and sum/count addition — all commutative and associative — so the
/// merged result is independent of the order threads are drained in.
/// Quantiles are approximate (resolved to the upper edge of the bucket
/// the rank falls in) but deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper edge of bucket `i` (`2^i - 1`; the last bucket is
/// clamped to `u64::MAX`).
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self` (order-invariant).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper edge of the bucket
    /// containing the rank, clamped to the observed min/max. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive_upper_edge, cumulative_count)`
    /// pairs, for Prometheus `le` rendering.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cum += n;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 1, 7, 100, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 100_109);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100_000);
        assert!(h.quantile(0.5) <= 7);
        assert_eq!(h.quantile(1.0), 100_000);
    }

    #[test]
    fn empty_is_zeroed() {
        let h = LogHistogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for (i, v) in [3u64, 9, 27, 81, 243, 729, 2187].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            whole.record(*v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn cumulative_buckets_are_monotonic() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 4, 8, 16, 1024] {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        assert_eq!(cum.last().map(|(_, c)| *c), Some(h.count()));
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
        }
    }
}
