//! Crash flight recorder: a bounded in-memory ring of the most recently
//! flushed events, dumped to a JSONL file when the process dies abnormally
//! (panic, `COORDKILL`, signal-driven shutdown).
//!
//! The JSONL sink only sees events at flush boundaries, and a killed
//! process loses whatever a crash interrupts; the flight recorder keeps
//! the recent past in memory — [`crate::flush`] feeds every flushed batch
//! into the ring — and [`flight_dump`] writes ring + still-pending events
//! atomically, so post-mortem debugging always has the final round's
//! spans. Lock order is collector before ring ([`crate::flush`] holds the
//! collector lock while feeding the ring; the dump path snapshots the
//! collector first), so the two paths cannot deadlock.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::event::Event;
use crate::sink::atomic_write;

/// Maximum events retained in the flight ring; older events are evicted
/// first. Sized to hold several rounds of control-plane spans.
pub const FLIGHT_RING_CAP: usize = 4096;

struct FlightState {
    path: PathBuf,
    ring: VecDeque<Event>,
    meta: Option<String>,
}

static FLIGHT: Mutex<Option<FlightState>> = Mutex::new(None);

/// Arms the flight recorder: recent events are retained in a bounded ring
/// and [`flight_dump`] (or the panic hook) writes them to `path`.
/// Idempotent; calling again moves the dump path and keeps the ring.
pub fn flight_init(path: &Path) {
    let mut guard = FLIGHT.lock();
    match guard.as_mut() {
        Some(state) => state.path = path.to_path_buf(),
        None => {
            *guard = Some(FlightState {
                path: path.to_path_buf(),
                ring: VecDeque::with_capacity(128),
                meta: None,
            });
        }
    }
}

/// Feeds a flushed batch into the ring (no-op until [`flight_init`]).
pub(crate) fn note_events(batch: &[Event]) {
    let mut guard = FLIGHT.lock();
    let Some(state) = guard.as_mut() else {
        return;
    };
    for event in batch {
        if state.ring.len() == FLIGHT_RING_CAP {
            state.ring.pop_front();
        }
        state.ring.push_back(event.clone());
    }
}

/// Records the most recent `process_meta` line (no-op until
/// [`flight_init`]).
pub(crate) fn note_meta(line: String) {
    let mut guard = FLIGHT.lock();
    if let Some(state) = guard.as_mut() {
        state.meta = Some(line);
    }
}

/// Dumps the flight ring plus every drained-but-unflushed event to the
/// armed path, atomically. Returns the path written, or `None` when
/// [`flight_init`] was never called. Safe to call at any point — the dump
/// is non-consuming, so a process that survives keeps flushing normally.
///
/// # Errors
/// Propagates I/O errors from the atomic write.
pub fn flight_dump() -> io::Result<Option<PathBuf>> {
    // Snapshot the collector before taking the ring lock (lock order:
    // collector, then ring).
    let (pid, meta, pending) = crate::recorder::flight_snapshot();
    let guard = FLIGHT.lock();
    let Some(state) = guard.as_ref() else {
        return Ok(None);
    };
    let mut text = String::new();
    if let Some(line) = state.meta.as_ref().or(meta.as_ref()) {
        text.push_str(line);
        text.push('\n');
    }
    for event in state.ring.iter().chain(pending.iter()) {
        text.push_str(&event.to_json_line_with_pid(pid));
        text.push('\n');
    }
    let path = state.path.clone();
    atomic_write(&path, &text)?;
    Ok(Some(path))
}

/// Chains a panic hook that dumps the flight ring before the default
/// hook runs, so a panicking process leaves its post-mortem file behind.
/// Call once after [`flight_init`].
pub fn flight_install_panic_hook() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = flight_dump();
        prev(info);
    }));
}

pub(crate) fn reset_for_tests() {
    *FLIGHT.lock() = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase, MAX_ARGS};

    fn mk(ts: u64, seq: u64) -> Event {
        Event {
            ts_us: ts,
            actor: 0,
            seq,
            phase: Phase::Round,
            name: "round",
            kind: EventKind::Span,
            dur_us: 1,
            args: [("", 0); MAX_ARGS],
        }
    }

    #[test]
    fn ring_is_bounded_and_dump_writes_jsonl() {
        let _guard = crate::recorder::TEST_GUARD.lock();
        crate::reset_for_tests();
        let dir = std::env::temp_dir().join(format!("photon-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight-test.jsonl");
        flight_init(&path);
        let batch: Vec<Event> = (0..FLIGHT_RING_CAP as u64 + 10).map(|i| mk(i, i)).collect();
        note_events(&batch);
        let written = flight_dump().unwrap().expect("armed");
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), FLIGHT_RING_CAP, "ring bounded");
        // Oldest events evicted: the first retained line is ts 10.
        assert!(lines[0].contains("\"ts\":10,"), "got {}", lines[0]);
        let _ = std::fs::remove_dir_all(&dir);
        crate::reset_for_tests();
    }

    #[test]
    fn dump_without_init_is_none() {
        let _guard = crate::recorder::TEST_GUARD.lock();
        crate::reset_for_tests();
        assert_eq!(flight_dump().unwrap(), None);
        crate::reset_for_tests();
    }
}
