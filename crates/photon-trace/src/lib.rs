//! # photon-trace
//!
//! End-to-end observability for the Photon federation: a lock-light,
//! thread-safe structured event/span recorder with a phase profiler and
//! three export sinks.
//!
//! ## Architecture
//!
//! Every instrumented thread records into its **own shard** — a small
//! ring buffer of [`Event`]s plus per-phase profile accumulators and a
//! [`CounterSet`] — behind an uncontended mutex, so the hot path never
//! touches a global lock. A background drainer thread (plus every
//! explicit [`flush`]) migrates shard contents into a central collector,
//! where counters and log-scale histograms merge deterministically
//! (bucket-wise addition is order-invariant).
//!
//! When tracing is **off** the entire API costs one relaxed atomic load
//! per call site — no allocation, no clock read, no lock.
//!
//! ## Clocks and determinism
//!
//! Event timestamps come from one of two clocks ([`ClockMode`]):
//!
//! * **Sim** — the federation driver publishes simulated walltime
//!   (`photon_comms::SimClock` semantics: `round × round_ms`) via
//!   [`set_sim_time_us`]. Timestamps, durations and args are then pure
//!   functions of the run seed, and [`flush`] sorts events by their full
//!   field set before writing, so two runs with the same seed produce
//!   **byte-identical** JSONL traces regardless of thread interleaving.
//! * **Monotonic** — real elapsed microseconds since tracing was
//!   enabled; suited to live profiling, not replay comparison.
//!
//! Real (monotonic) span durations always feed the [`PhaseProfile`] and
//! latency histograms — that is what the CLI phase report and the
//! Prometheus snapshot show — but in Sim mode they never leak into the
//! JSONL trace.
//!
//! ## Sinks
//!
//! 1. **JSONL trace** — one chrome://tracing-compatible event per line
//!    (`name`/`cat`/`ph`/`ts`/`dur`/`pid`/`tid`/`args`), loadable via
//!    chrome://tracing "Load" or Perfetto after wrapping in `[...]`.
//! 2. **Prometheus text snapshot** — counters, gauges, histograms and
//!    per-phase self time in exposition format, rewritten atomically
//!    (temp file + rename) on every flush so a crashed run still leaves
//!    a readable last state.
//! 3. **Phase profile report** — an end-of-run table ([`PhaseProfile`])
//!    of self-time percentages (summing to ~100% by construction),
//!    per-span p50/p95 latencies and on-wire byte totals.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod clock;
mod counters;
mod event;
mod flight;
mod hist;
mod merge;
mod profile;
mod recorder;
mod sink;

pub use clock::{now_us, set_sim_time_us, sim_time_us, ClockMode};
pub use counters::CounterSet;
pub use event::{Event, EventKind, Phase, PhaseGroup};
pub use flight::{flight_dump, flight_init, flight_install_panic_hook, FLIGHT_RING_CAP};
pub use hist::LogHistogram;
pub use merge::{merge_shards, net_edge_stats, NetEdgeStats};
pub use profile::{PhaseProfile, PhaseStat};
pub use recorder::{
    counter_add, drain_now, enabled, flush, flush_guard, flush_to_string, gauge_set, init, instant,
    observe, reset_for_tests, set_actor, set_clock_offset_us, set_process_meta, span, FlushGuard,
    FlushSummary, Span, TraceConfig,
};
pub use sink::{atomic_write, lint_prometheus, render_prometheus};
