//! Export sinks: JSONL trace writer, Prometheus text exposition, and
//! atomic file replacement.
//!
//! None of the I/O here panics on failure: every fallible call returns
//! `io::Result` and callers (the recorder, the CLI) degrade to a warning
//! so a full metrics disk never kills a training run.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::counters::CounterSet;
use crate::event::Phase;
use crate::hist::LogHistogram;
use crate::profile::PhaseProfile;

/// Append-only JSONL trace writer (one chrome://tracing event per line).
pub(crate) struct JsonlSink {
    writer: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file.
    pub(crate) fn create(path: &Path) -> io::Result<Self> {
        Ok(Self {
            writer: BufWriter::new(File::create(path)?),
        })
    }

    /// Writes one event line (adds the trailing newline). The line and
    /// its newline go to the writer in a single call, so even an abort
    /// mid-stream leaves only whole lines behind the `BufWriter` boundary.
    pub(crate) fn write_line(&mut self, line: &str) -> io::Result<()> {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        self.writer.write_all(buf.as_bytes())
    }

    /// Flushes buffered lines to disk.
    pub(crate) fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

impl Drop for JsonlSink {
    /// Last-chance flush so a sink dropped between round flushes (process
    /// exit, recorder reset) never truncates its final events mid-line.
    /// (`BufWriter` also flushes on drop, but silently; doing it here
    /// keeps the guarantee explicit and ahead of the file close.)
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// temp file first and are `rename`d over the target, so readers (and
/// crashed runs) only ever observe a complete snapshot.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp: PathBuf = path.to_path_buf();
    let mut name = tmp
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| ".snapshot".into());
    name.push(".tmp");
    tmp.set_file_name(name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

/// Renders the full recorder state as a Prometheus text exposition
/// snapshot: counters, gauges, named histograms and per-phase self time.
pub fn render_prometheus(
    counters: &CounterSet,
    gauges: &BTreeMap<&'static str, f64>,
    hists: &BTreeMap<&'static str, LogHistogram>,
    profile: &PhaseProfile,
) -> String {
    let mut out = String::new();

    if !counters.is_empty() {
        out.push_str("# HELP photon_counter_total Monotonic event counters.\n");
        out.push_str("# TYPE photon_counter_total counter\n");
        for (name, value) in counters.iter() {
            out.push_str(&format!(
                "photon_counter_total{{name=\"{name}\"}} {value}\n"
            ));
        }
    }

    if !gauges.is_empty() {
        out.push_str("# HELP photon_gauge Last-set instantaneous values.\n");
        out.push_str("# TYPE photon_gauge gauge\n");
        for (name, value) in gauges {
            out.push_str(&format!("photon_gauge{{name=\"{name}\"}} "));
            push_f64(&mut out, *value);
            out.push('\n');
        }
    }

    if hists.values().any(|h| !h.is_empty()) {
        out.push_str("# HELP photon_hist Log2-bucketed sample distributions.\n");
        out.push_str("# TYPE photon_hist histogram\n");
        for (name, hist) in hists {
            if hist.is_empty() {
                continue;
            }
            for (upper, cum) in hist.cumulative_buckets() {
                out.push_str(&format!(
                    "photon_hist_bucket{{name=\"{name}\",le=\"{upper}\"}} {cum}\n"
                ));
            }
            out.push_str(&format!(
                "photon_hist_bucket{{name=\"{name}\",le=\"+Inf\"}} {}\n",
                hist.count()
            ));
            out.push_str(&format!(
                "photon_hist_sum{{name=\"{name}\"}} {}\n",
                hist.sum()
            ));
            out.push_str(&format!(
                "photon_hist_count{{name=\"{name}\"}} {}\n",
                hist.count()
            ));
        }
    }

    if !profile.is_empty() {
        out.push_str("# HELP photon_phase_self_seconds Exclusive wall time per phase.\n");
        out.push_str("# TYPE photon_phase_self_seconds counter\n");
        for (phase, stat) in profile.iter() {
            out.push_str(&format!(
                "photon_phase_self_seconds{{group=\"{}\",phase=\"{}\"}} ",
                phase.group().name(),
                phase.name()
            ));
            push_f64(&mut out, stat.self_ns as f64 / 1e9);
            out.push('\n');
        }
        out.push_str("# HELP photon_phase_spans_total Completed spans per phase.\n");
        out.push_str("# TYPE photon_phase_spans_total counter\n");
        for (phase, stat) in profile.iter() {
            out.push_str(&format!(
                "photon_phase_spans_total{{phase=\"{}\"}} {}\n",
                phase.name(),
                stat.count
            ));
        }
    }

    let _ = Phase::ALL; // exhaustiveness anchor: phases render via profile.iter()
    out
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_key(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

fn parse_labels(body: &str) -> Result<(), String> {
    // body is the text between '{' and '}'.
    if body.is_empty() {
        return Err("empty label set".into());
    }
    for pair in body.split(',') {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(format!("label `{pair}` missing `=`"));
        };
        if !valid_label_key(key) {
            return Err(format!("invalid label key `{key}`"));
        }
        if value.len() < 2 || !value.starts_with('"') || !value.ends_with('"') {
            return Err(format!("label value for `{key}` not quoted"));
        }
        let inner = &value[1..value.len() - 1];
        if inner.contains('"') || inner.contains('\\') || inner.contains('\n') {
            return Err(format!(
                "label value for `{key}` contains unescaped characters"
            ));
        }
    }
    Ok(())
}

fn valid_sample_value(v: &str) -> bool {
    matches!(v, "+Inf" | "-Inf" | "NaN") || v.parse::<f64>().is_ok()
}

/// Histogram sample suffixes that resolve to the bare family name.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

/// Validates Prometheus text exposition format: `# HELP`/`# TYPE`
/// comment shape, metric and label name charsets, quoted label values,
/// parseable sample values, and that every sample belongs to a family
/// declared by a preceding `# TYPE` line. Returns the first violation as
/// `Err("line N: ...")`.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    if !text.is_empty() && !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut typed_families: Vec<String> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(type_body) = rest.strip_prefix("TYPE ") {
                let mut parts = type_body.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: invalid TYPE metric name `{name}`"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown TYPE kind `{kind}`"));
                }
                if typed_families.iter().any(|f| f == name) {
                    return Err(format!("line {lineno}: duplicate TYPE for `{name}`"));
                }
                typed_families.push(name.to_string());
            } else if rest.strip_prefix("HELP ").is_none() {
                return Err(format!("line {lineno}: comment is neither HELP nor TYPE"));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_and_labels, value) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return Err(format!("line {lineno}: sample has no value")),
        };
        if !valid_sample_value(value) {
            return Err(format!("line {lineno}: unparseable value `{value}`"));
        }
        let name = if let Some(open) = name_and_labels.find('{') {
            if !name_and_labels.ends_with('}') {
                return Err(format!("line {lineno}: unterminated label set"));
            }
            let body = &name_and_labels[open + 1..name_and_labels.len() - 1];
            parse_labels(body).map_err(|e| format!("line {lineno}: {e}"))?;
            &name_and_labels[..open]
        } else {
            name_and_labels
        };
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: invalid metric name `{name}`"));
        }
        let family = family_of(name);
        if !typed_families.iter().any(|f| f == family || f == name) {
            return Err(format!(
                "line {lineno}: sample `{name}` has no preceding TYPE declaration"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_snapshot_passes_the_lint() {
        let mut counters = CounterSet::new();
        counters.add("link.retransmits", 3);
        counters.add("wire_bytes", 123_456);
        let mut gauges = BTreeMap::new();
        gauges.insert("compute_threads", 8.0);
        gauges.insert("participation_skew", 1.25);
        let mut hists = BTreeMap::new();
        let mut h = LogHistogram::new();
        for v in [100u64, 250, 900, 5_000] {
            h.record(v);
        }
        hists.insert("round_wall_ns", h);
        let mut profile = PhaseProfile::new();
        profile.record_span(Phase::Round, 1_000_000, 50_000);
        profile.record_span(Phase::LocalStep, 900_000, 900_000);
        let text = render_prometheus(&counters, &gauges, &hists, &profile);
        lint_prometheus(&text).expect("rendered snapshot must lint clean");
        assert!(text.contains("photon_counter_total{name=\"link.retransmits\"} 3"));
        assert!(text.contains("photon_hist_bucket{name=\"round_wall_ns\",le=\"+Inf\"} 4"));
        assert!(text.contains("photon_phase_self_seconds{group=\"compute\",phase=\"local_step\"}"));
    }

    #[test]
    fn lint_rejects_malformed_lines() {
        assert!(lint_prometheus("no_type_decl 1\n").is_err());
        assert!(lint_prometheus("# TYPE m counter\nm{bad-key=\"v\"} 1\n").is_err());
        assert!(lint_prometheus("# TYPE m counter\nm notanumber\n").is_err());
        assert!(lint_prometheus("# TYPE m bogus\n").is_err());
        assert!(lint_prometheus("# TYPE m counter\nm 1").is_err()); // missing newline
        assert!(lint_prometheus("# TYPE m counter\nm{a=\"b\"} 1\n").is_ok());
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = std::env::temp_dir().join("photon_trace_sink_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let target = dir.join("metrics.prom");
        atomic_write(&target, "first\n").expect("first write");
        atomic_write(&target, "second\n").expect("second write");
        let body = std::fs::read_to_string(&target).expect("read back");
        assert_eq!(body, "second\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
