//! Per-phase wall-time accounting and the end-of-run report.

use std::collections::BTreeMap;

use crate::event::{Phase, PhaseGroup};
use crate::hist::LogHistogram;

/// Accumulated timing for one phase.
///
/// `total_ns` is wall time including child spans; `self_ns` excludes
/// time spent in nested instrumented spans, so summing `self_ns` across
/// all phases reproduces total traced wall time exactly once — which is
/// what makes the report percentages sum to ~100%.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans recorded for this phase.
    pub count: u64,
    /// Inclusive wall time in nanoseconds.
    pub total_ns: u64,
    /// Exclusive (self) wall time in nanoseconds.
    pub self_ns: u64,
    /// Distribution of per-span inclusive durations in nanoseconds.
    pub hist: LogHistogram,
}

impl PhaseStat {
    /// Folds `other` into `self` (order-invariant).
    pub fn merge(&mut self, other: &PhaseStat) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.self_ns = self.self_ns.saturating_add(other.self_ns);
        self.hist.merge(&other.hist);
    }
}

/// Wall-time accounting across every [`Phase`], merged from all threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    stats: BTreeMap<Phase, PhaseStat>,
}

/// Formats a nanosecond quantity with an adaptive unit.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed span.
    pub fn record_span(&mut self, phase: Phase, total_ns: u64, self_ns: u64) {
        let stat = self.stats.entry(phase).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(total_ns);
        stat.self_ns = stat.self_ns.saturating_add(self_ns);
        stat.hist.record(total_ns);
    }

    /// Folds `other` into `self` (order-invariant).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (phase, stat) in &other.stats {
            self.stats.entry(*phase).or_default().merge(stat);
        }
    }

    /// The accumulated stat for `phase`, if any spans were recorded.
    pub fn get(&self, phase: Phase) -> Option<&PhaseStat> {
        self.stats.get(&phase)
    }

    /// Iterates `(phase, stat)` in [`Phase`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, &PhaseStat)> + '_ {
        self.stats.iter().map(|(p, s)| (*p, s))
    }

    /// Total traced self time in nanoseconds across all phases.
    pub fn total_self_ns(&self) -> u64 {
        self.stats.values().map(|s| s.self_ns).sum()
    }

    /// Self-time share of `group` as a fraction in `[0, 1]`.
    pub fn group_fraction(&self, group: PhaseGroup) -> f64 {
        let total = self.total_self_ns();
        if total == 0 {
            return 0.0;
        }
        let group_ns: u64 = self
            .stats
            .iter()
            .filter(|(p, _)| p.group() == group)
            .map(|(_, s)| s.self_ns)
            .sum();
        group_ns as f64 / total as f64
    }

    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Renders the end-of-run phase table: self-time percentage (summing
    /// to ~100%), span count, and per-span p50/p95/total per phase, plus
    /// a per-group roll-up line.
    pub fn render_report(&self) -> String {
        let total = self.total_self_ns();
        let mut out = String::new();
        out.push_str("phase profile (self-time share of traced wall time):\n");
        out.push_str(&format!(
            "  {:<13} {:<18} {:>7} {:>8} {:>9} {:>9} {:>9}\n",
            "group", "phase", "%", "count", "p50", "p95", "total"
        ));
        for phase in Phase::ALL {
            let Some(stat) = self.stats.get(&phase) else {
                continue;
            };
            let pct = if total == 0 {
                0.0
            } else {
                stat.self_ns as f64 / total as f64 * 100.0
            };
            out.push_str(&format!(
                "  {:<13} {:<18} {:>6.1}% {:>8} {:>9} {:>9} {:>9}\n",
                phase.group().name(),
                phase.name(),
                pct,
                stat.count,
                fmt_ns(stat.hist.quantile(0.5)),
                fmt_ns(stat.hist.quantile(0.95)),
                fmt_ns(stat.total_ns),
            ));
        }
        let groups: Vec<String> = PhaseGroup::ALL
            .iter()
            .map(|g| format!("{} {:.1}%", g.name(), self.group_fraction(*g) * 100.0))
            .collect();
        out.push_str(&format!("  groups: {}\n", groups.join(" | ")));
        out.push_str(&format!("  traced wall time: {}\n", fmt_ns(total)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_time_shares_sum_to_one() {
        let mut p = PhaseProfile::new();
        p.record_span(Phase::Round, 100_000, 10_000);
        p.record_span(Phase::LocalStep, 60_000, 60_000);
        p.record_span(Phase::LinkDeliver, 20_000, 20_000);
        p.record_span(Phase::RobustMerge, 10_000, 10_000);
        let sum: f64 = PhaseGroup::ALL.iter().map(|g| p.group_fraction(*g)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(p.total_self_ns(), 100_000);
    }

    #[test]
    fn merge_is_order_invariant() {
        let mut a = PhaseProfile::new();
        a.record_span(Phase::Round, 10, 5);
        a.record_span(Phase::Eval, 7, 7);
        let mut b = PhaseProfile::new();
        b.record_span(Phase::Round, 20, 15);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(Phase::Round).map(|s| s.count), Some(2));
        assert_eq!(ab.get(Phase::Round).map(|s| s.total_ns), Some(30));
    }

    #[test]
    fn report_lists_recorded_phases() {
        let mut p = PhaseProfile::new();
        p.record_span(Phase::GuardScreen, 1_500, 1_500);
        let report = p.render_report();
        assert!(report.contains("guard_screen"));
        assert!(report.contains("100.0%"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20s");
    }
}
