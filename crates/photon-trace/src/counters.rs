//! Named monotonic counters with deterministic merge.

use std::collections::BTreeMap;

/// A set of named `u64` counters keyed by `&'static str`.
///
/// Backed by a `BTreeMap` so iteration order — and therefore every sink
/// rendering — is deterministic, and merge (per-key addition) is
/// order-invariant. This is the same structure the global recorder
/// aggregates into, and `photon_core::Telemetry` reuses it as its own
/// storage so both views stay consistent by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    inner: BTreeMap<&'static str, u64>,
}

impl CounterSet {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.inner.entry(name).or_insert(0) += delta;
    }

    /// Sets counter `name` to `max(current, value)`.
    pub fn record_max(&mut self, name: &'static str, value: u64) {
        let slot = self.inner.entry(name).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Current value of `name`, or 0 if never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.inner.get(name).copied().unwrap_or(0)
    }

    /// Folds `other` into `self` by per-key addition (order-invariant).
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in &other.inner {
            *self.inner.entry(k).or_insert(0) += *v;
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.inner.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no counters exist.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Removes every counter.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge() {
        let mut a = CounterSet::new();
        a.add("x", 2);
        a.add("x", 3);
        a.add("y", 1);
        let mut b = CounterSet::new();
        b.add("y", 4);
        b.add("z", 9);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("x"), 5);
        assert_eq!(ab.get("y"), 5);
        assert_eq!(ab.get("z"), 9);
        assert_eq!(ab.get("missing"), 0);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = CounterSet::new();
        c.add("b", 1);
        c.add("a", 1);
        c.add("c", 1);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn record_max_keeps_high_water_mark() {
        let mut c = CounterSet::new();
        c.record_max("hwm", 5);
        c.record_max("hwm", 3);
        c.record_max("hwm", 8);
        assert_eq!(c.get("hwm"), 8);
    }
}
