//! Trace phases and the fixed-size event record.

/// Maximum number of numeric args an event carries.
pub(crate) const MAX_ARGS: usize = 4;

/// Every instrumented phase of a federated run. The variants cover the
/// full round anatomy: orchestration, per-client local compute (down to
/// individual kernels), Link traffic, aggregation-side screening and
/// merging, and durability operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// One federated round, end to end (driver thread).
    Round,
    /// One client's local training for a round (client thread).
    LocalStep,
    /// A GEMM kernel dispatch.
    KernelGemm,
    /// An attention forward/backward kernel.
    KernelAttention,
    /// A layernorm forward/backward kernel.
    KernelLayerNorm,
    /// A worker-pool task batch (dispatch + barrier wait).
    PoolDispatch,
    /// Model broadcast framing on the aggregator side.
    Broadcast,
    /// One result-frame delivery across the lossy Link (incl. retries).
    LinkDeliver,
    /// A Link retransmission after a CRC failure.
    LinkRetransmit,
    /// Guard admission screening of a cohort.
    GuardScreen,
    /// Robust (or plain) aggregation of admitted updates.
    RobustMerge,
    /// A staleness-aware buffered-aggregation commit.
    BufferCommit,
    /// Server-optimizer application of the aggregated delta.
    ServerOpt,
    /// Checkpoint save.
    CheckpointSave,
    /// Checkpoint restore.
    CheckpointRestore,
    /// A watchdog rollback to the last-good checkpoint.
    Rollback,
    /// Validation-perplexity evaluation.
    Eval,
    /// A delivery severed by an active network partition.
    NetPartition,
    /// A round run in degraded mode (below the reachability quorum).
    DegradedRound,
    /// A reconnecting client resumed its session (lease and in-flight
    /// round carried over instead of re-admission).
    SessionResume,
    /// A coordinator crash-restart: state machine restored from the
    /// checkpoint and live clients re-synchronized.
    CoordRestart,
    /// One sub-aggregator shard's streaming merge of its cohort slice.
    ShardMerge,
    /// A shard slice dropped this round (crash, hang or quorum miss).
    ShardDegraded,
    /// A traced wire frame leaving this process (`photon-net` send).
    NetSend,
    /// A traced wire frame arriving at this process (`photon-net` recv).
    NetRecv,
}

/// Coarse roll-up groups for the phase-profile report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseGroup {
    /// Local training compute (client steps and kernels).
    Compute,
    /// Link traffic (broadcast, delivery, retransmits).
    Comms,
    /// Aggregator-side screening, merging and optimizer application.
    Aggregation,
    /// Checkpoint save/restore and rollbacks.
    Durability,
    /// Validation evaluation.
    Eval,
    /// Round orchestration overhead (everything not in a child span).
    Orchestration,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 25] = [
        Phase::Round,
        Phase::LocalStep,
        Phase::KernelGemm,
        Phase::KernelAttention,
        Phase::KernelLayerNorm,
        Phase::PoolDispatch,
        Phase::Broadcast,
        Phase::LinkDeliver,
        Phase::LinkRetransmit,
        Phase::GuardScreen,
        Phase::RobustMerge,
        Phase::BufferCommit,
        Phase::ServerOpt,
        Phase::CheckpointSave,
        Phase::CheckpointRestore,
        Phase::Rollback,
        Phase::Eval,
        Phase::NetPartition,
        Phase::DegradedRound,
        Phase::SessionResume,
        Phase::CoordRestart,
        Phase::ShardMerge,
        Phase::ShardDegraded,
        Phase::NetSend,
        Phase::NetRecv,
    ];

    /// Stable snake_case name (used as the JSONL `name` default, the
    /// Prometheus `phase` label and the report row).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Round => "round",
            Phase::LocalStep => "local_step",
            Phase::KernelGemm => "kernel_gemm",
            Phase::KernelAttention => "kernel_attention",
            Phase::KernelLayerNorm => "kernel_layernorm",
            Phase::PoolDispatch => "pool_dispatch",
            Phase::Broadcast => "broadcast",
            Phase::LinkDeliver => "link_deliver",
            Phase::LinkRetransmit => "link_retransmit",
            Phase::GuardScreen => "guard_screen",
            Phase::RobustMerge => "robust_merge",
            Phase::BufferCommit => "buffer_commit",
            Phase::ServerOpt => "server_opt",
            Phase::CheckpointSave => "checkpoint_save",
            Phase::CheckpointRestore => "checkpoint_restore",
            Phase::Rollback => "rollback",
            Phase::Eval => "eval",
            Phase::NetPartition => "net_partition",
            Phase::DegradedRound => "degraded_round",
            Phase::SessionResume => "session_resume",
            Phase::CoordRestart => "coord_restart",
            Phase::ShardMerge => "shard_merge",
            Phase::ShardDegraded => "shard_degraded",
            Phase::NetSend => "net_send",
            Phase::NetRecv => "net_recv",
        }
    }

    /// The roll-up group this phase reports under.
    pub fn group(self) -> PhaseGroup {
        match self {
            Phase::Round | Phase::DegradedRound => PhaseGroup::Orchestration,
            Phase::LocalStep
            | Phase::KernelGemm
            | Phase::KernelAttention
            | Phase::KernelLayerNorm
            | Phase::PoolDispatch => PhaseGroup::Compute,
            Phase::Broadcast
            | Phase::LinkDeliver
            | Phase::LinkRetransmit
            | Phase::NetPartition
            | Phase::SessionResume
            | Phase::NetSend
            | Phase::NetRecv => PhaseGroup::Comms,
            Phase::GuardScreen
            | Phase::RobustMerge
            | Phase::BufferCommit
            | Phase::ServerOpt
            | Phase::ShardMerge
            | Phase::ShardDegraded => PhaseGroup::Aggregation,
            Phase::CheckpointSave
            | Phase::CheckpointRestore
            | Phase::Rollback
            | Phase::CoordRestart => PhaseGroup::Durability,
            Phase::Eval => PhaseGroup::Eval,
        }
    }

    /// Whether spans of this phase emit JSONL events. Kernel-level spans
    /// are profile-only unless `kernel_events` is enabled (they dominate
    /// event volume); pool dispatch batches are always profile-only.
    pub(crate) fn emits_event(self, kernel_events: bool) -> bool {
        match self {
            Phase::KernelGemm | Phase::KernelAttention | Phase::KernelLayerNorm => kernel_events,
            Phase::PoolDispatch => false,
            _ => true,
        }
    }
}

impl PhaseGroup {
    /// Every group, in report order.
    pub const ALL: [PhaseGroup; 6] = [
        PhaseGroup::Compute,
        PhaseGroup::Comms,
        PhaseGroup::Aggregation,
        PhaseGroup::Durability,
        PhaseGroup::Eval,
        PhaseGroup::Orchestration,
    ];

    /// Stable name (the JSONL `cat` field and report row).
    pub fn name(self) -> &'static str {
        match self {
            PhaseGroup::Compute => "compute",
            PhaseGroup::Comms => "comms",
            PhaseGroup::Aggregation => "aggregation",
            PhaseGroup::Durability => "durability",
            PhaseGroup::Eval => "eval",
            PhaseGroup::Orchestration => "orchestration",
        }
    }
}

/// Chrome-tracing event kind (`ph` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A complete span (`ph: "X"`).
    Span,
    /// An instantaneous marker (`ph: "i"`).
    Instant,
}

impl EventKind {
    fn ph(self) -> char {
        match self {
            EventKind::Span => 'X',
            EventKind::Instant => 'i',
        }
    }
}

/// One recorded trace event. Fixed-size (no heap) so the hot path never
/// allocates; names are `&'static str` identifiers (no JSON escaping).
///
/// The derived `Ord` compares fields in declaration order — timestamp,
/// actor lane, per-shard sequence, then content — which is exactly the
/// deterministic order [`crate::flush`] sorts by before writing, so a
/// simulated run's trace file is independent of thread interleaving.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Timestamp in microseconds (simulated or monotonic).
    pub ts_us: u64,
    /// Logical lane: 0 = aggregator/driver, `1 + c` = client `c`.
    pub actor: u32,
    /// Per-shard emission sequence (deterministic tie-break; the trace
    /// line itself does not include it).
    pub seq: u64,
    /// Phase bucket.
    pub phase: Phase,
    /// Event name.
    pub name: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Duration in microseconds (0 for instants; in Sim mode the
    /// deterministic simulated duration, not the measured one).
    pub dur_us: u64,
    /// Up to [`MAX_ARGS`] numeric args; unused slots are `("", 0)`.
    pub args: [(&'static str, u64); MAX_ARGS],
}

impl Event {
    /// Serializes the event as one chrome://tracing JSON object line
    /// (no trailing newline) with `pid: 0` — single-process traces keep
    /// their historical byte-identical shape.
    pub fn to_json_line(&self) -> String {
        self.to_json_line_with_pid(0)
    }

    /// [`Event::to_json_line`] with an explicit `pid` field, so each
    /// process in a multi-process run writes shard lines under its own
    /// OS pid and `photon trace merge` can lane the merged timeline.
    pub fn to_json_line_with_pid(&self, pid: u32) -> String {
        let mut line = String::with_capacity(128);
        line.push_str("{\"name\":\"");
        line.push_str(self.name);
        line.push_str("\",\"cat\":\"");
        line.push_str(self.phase.group().name());
        line.push_str("\",\"ph\":\"");
        line.push(self.kind.ph());
        line.push_str("\",\"ts\":");
        line.push_str(&self.ts_us.to_string());
        if self.kind == EventKind::Span {
            line.push_str(",\"dur\":");
            line.push_str(&self.dur_us.to_string());
        }
        line.push_str(",\"pid\":");
        line.push_str(&pid.to_string());
        line.push_str(",\"tid\":");
        line.push_str(&self.actor.to_string());
        let mut first = true;
        for (k, v) in self.args.iter().filter(|(k, _)| !k.is_empty()) {
            line.push_str(if first { ",\"args\":{" } else { "," });
            first = false;
            line.push('"');
            line.push_str(k);
            line.push_str("\":");
            line.push_str(&v.to_string());
        }
        if !first {
            line.push('}');
        }
        line.push('}');
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let e = Event {
            ts_us: 1_000,
            actor: 3,
            seq: 7,
            phase: Phase::LocalStep,
            name: "local_step",
            kind: EventKind::Span,
            dur_us: 250,
            args: [("tokens", 2048), ("steps", 16), ("", 0), ("", 0)],
        };
        assert_eq!(
            e.to_json_line(),
            "{\"name\":\"local_step\",\"cat\":\"compute\",\"ph\":\"X\",\"ts\":1000,\
             \"dur\":250,\"pid\":0,\"tid\":3,\"args\":{\"tokens\":2048,\"steps\":16}}"
        );
    }

    #[test]
    fn pid_aware_line_differs_only_in_pid() {
        let e = Event {
            ts_us: 9,
            actor: 1,
            seq: 0,
            phase: Phase::NetSend,
            name: "net_send",
            kind: EventKind::Instant,
            dur_us: 0,
            args: [("seq", 4), ("", 0), ("", 0), ("", 0)],
        };
        let with_pid = e.to_json_line_with_pid(4242);
        assert!(with_pid.contains("\"pid\":4242"));
        assert_eq!(
            with_pid.replace("\"pid\":4242", "\"pid\":0"),
            e.to_json_line()
        );
        assert!(e.to_json_line().contains("\"cat\":\"comms\""));
    }

    #[test]
    fn instant_has_no_dur_and_no_args_key_when_empty() {
        let e = Event {
            ts_us: 5,
            actor: 0,
            seq: 0,
            phase: Phase::Rollback,
            name: "rollback",
            kind: EventKind::Instant,
            dur_us: 0,
            args: [("", 0); MAX_ARGS],
        };
        let line = e.to_json_line();
        assert!(!line.contains("\"dur\":"));
        assert!(!line.contains("args"));
        assert!(line.contains("\"ph\":\"i\""));
    }

    #[test]
    fn ordering_is_ts_actor_seq_first() {
        let mk = |ts, actor, seq| Event {
            ts_us: ts,
            actor,
            seq,
            phase: Phase::Round,
            name: "round",
            kind: EventKind::Span,
            dur_us: 0,
            args: [("", 0); MAX_ARGS],
        };
        let mut v = [mk(2, 0, 0), mk(1, 5, 9), mk(1, 0, 1), mk(1, 0, 0)];
        v.sort();
        assert_eq!(
            v.iter()
                .map(|e| (e.ts_us, e.actor, e.seq))
                .collect::<Vec<_>>(),
            vec![(1, 0, 0), (1, 0, 1), (1, 5, 9), (2, 0, 0)]
        );
    }

    #[test]
    fn every_phase_has_a_distinct_name_and_a_group() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
        for p in Phase::ALL {
            let _ = p.group().name();
        }
    }
}
