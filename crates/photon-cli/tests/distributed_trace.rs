//! End-to-end distributed observability: a real 1-coordinator /
//! N-client run over localhost TCP with injected faults, whose
//! per-process trace shards must merge into one chrome://tracing
//! timeline with paired send/recv edges; whose live health endpoint
//! must serve lint-clean Prometheus text mid-run; and whose coordinator,
//! killed by an injected `coordkill`, must leave a parseable flight
//! recorder dump behind.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_photon");

/// Reserves a localhost port (bind, read, release).
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "photon-dtrace-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Waits for a child and returns (success, stdout+stderr).
fn finish(child: Child) -> (bool, String) {
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.success(), format!("{stdout}\n{stderr}"))
}

/// Extracts `"key":<integer>` from a JSONL event line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// One retrying HTTP/1.0 GET against the health endpoint; returns the
/// body once a 200 arrives within the budget.
fn http_get(port: u16, path: &str, budget: Duration) -> String {
    let start = Instant::now();
    loop {
        if let Ok(mut stream) = TcpStream::connect(("127.0.0.1", port)) {
            let _ = stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes());
            let mut response = String::new();
            if stream.read_to_string(&mut response).is_ok() && response.starts_with("HTTP/1.0 200")
            {
                if let Some(at) = response.find("\r\n\r\n") {
                    return response[at + 4..].to_string();
                }
            }
        }
        assert!(
            start.elapsed() < budget,
            "no 200 from 127.0.0.1:{port}{path} within {budget:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Prometheus text-format lint: every non-empty line is a `# HELP`, a
/// `# TYPE`, or a `name[{labels}] value` sample whose value parses.
fn lint_prometheus(text: &str) {
    assert!(!text.trim().is_empty(), "empty metrics body");
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "bad comment line: {line}"
            );
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').expect("sample must have a value");
        let name = name_part.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.'),
            "bad metric name in: {line}"
        );
        if name_part.contains('{') {
            assert!(name_part.ends_with('}'), "unterminated labels: {line}");
        }
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in: {line}"
        );
    }
}

fn spawn_client(addr: &str, trace: &Path, session: &Path) -> Child {
    let mut cmd = Command::new(BIN);
    cmd.args(["client", "--addr", addr, "--max-attempts", "200"])
        .arg("--trace-jsonl")
        .arg(trace)
        .arg("--session-file")
        .arg(session)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd.spawn().unwrap()
}

#[test]
fn traced_run_merges_with_paired_edges_and_live_health() {
    let dir = scratch_dir("merge");
    let port = free_port();
    let health_port = free_port();
    let addr = format!("127.0.0.1:{port}");

    let mut serve = Command::new(BIN);
    serve
        .args([
            "serve",
            "--addr",
            &addr,
            "--clients",
            "3",
            "--rounds",
            "4",
            "--local-steps",
            "4",
            "--tokens-per-client",
            "2000",
            // A long warmup guarantees a scrape window while the health
            // endpoint is provably live and the run has not finished.
            "--warmup-ms",
            "1500",
            "--cooldown-ms",
            "100",
            "--round-timeout-ms",
            "8000",
            "--health-port",
            &health_port.to_string(),
            "--faults",
            "netcrash@r1c0",
        ])
        .arg("--trace-jsonl")
        .arg(dir.join("serve.jsonl"))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let serve = serve.spawn().unwrap();

    let clients: Vec<Child> = (0..3)
        .map(|i| {
            spawn_client(
                &addr,
                &dir.join(format!("client{i}.jsonl")),
                &dir.join(format!("session-{i}")),
            )
        })
        .collect();

    // Mid-run health scrape: Prometheus text must lint clean and the
    // JSON snapshot must parse as far as our field scanner needs.
    let metrics = http_get(health_port, "/metrics", Duration::from_secs(30));
    lint_prometheus(&metrics);
    assert!(
        metrics.contains("photon_coord_round"),
        "coordinator gauges missing:\n{metrics}"
    );
    let health = http_get(health_port, "/health", Duration::from_secs(10));
    assert!(
        health.trim_start().starts_with('{') && health.trim_end().ends_with('}'),
        "health JSON malformed:\n{health}"
    );

    let (ok, serve_out) = finish(serve);
    assert!(ok, "serve failed:\n{serve_out}");
    for c in clients {
        let (ok, out) = finish(c);
        assert!(ok && out.contains("clean shutdown: true"), "{out}");
    }

    // Merge the shards through the CLI and validate the timeline.
    let merged_path = dir.join("merged.jsonl");
    let merge = Command::new(BIN)
        .args(["trace", "merge"])
        .arg("--dir")
        .arg(&dir)
        .arg("--out")
        .arg(&merged_path)
        .output()
        .unwrap();
    assert!(
        merge.status.success(),
        "trace merge failed: {}",
        String::from_utf8_lossy(&merge.stderr)
    );
    let merged = std::fs::read_to_string(&merged_path).unwrap();

    // Every line is a JSON object with the chrome://tracing fields, and
    // timestamps are sorted.
    let mut last_ts = -1i64;
    let mut metas = 0usize;
    for line in merged.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object: {line}"
        );
        for key in ["\"name\":", "\"ph\":", "\"ts\":", "\"pid\":"] {
            assert!(line.contains(key), "missing {key} in: {line}");
        }
        if line.contains("\"name\":\"process_meta\"") {
            metas += 1;
            continue;
        }
        let ts = field_u64(line, "ts").expect("event ts") as i64;
        assert!(ts >= last_ts, "timestamps not sorted: {ts} after {last_ts}");
        last_ts = ts;
    }
    assert_eq!(
        metas, 4,
        "one process_meta per process (1 serve + 3 clients)"
    );

    // >= 95% of send edges must have found their recv endpoint.
    let mut sends = Vec::new();
    let mut recvs = Vec::new();
    for line in merged.lines() {
        let key = (field_u64(line, "origin"), field_u64(line, "seq"));
        if line.contains("\"name\":\"net_send\"") {
            sends.push(key);
        } else if line.contains("\"name\":\"net_recv\"") {
            recvs.push(key);
        }
    }
    assert!(
        !sends.is_empty(),
        "no net_send edges in the merged timeline"
    );
    let matched = sends.iter().filter(|k| recvs.contains(k)).count();
    assert!(
        matched * 100 >= sends.len() * 95,
        "only {matched}/{} send edges paired",
        sends.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coordkill_leaves_a_parseable_flight_dump() {
    let dir = scratch_dir("flight");
    let port = free_port();
    let addr = format!("127.0.0.1:{port}");
    let flights = dir.join("flights");

    let mut serve = Command::new(BIN);
    serve
        .args([
            "serve",
            "--addr",
            &addr,
            "--clients",
            "2",
            "--rounds",
            "4",
            "--local-steps",
            "4",
            "--tokens-per-client",
            "2000",
            "--warmup-ms",
            "100",
            "--cooldown-ms",
            "100",
            "--round-timeout-ms",
            "8000",
            "--faults",
            "coordkill@r1",
        ])
        .arg("--trace-jsonl")
        .arg(dir.join("serve.jsonl"))
        .arg("--flight-dir")
        .arg(&flights)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut serve = serve.spawn().unwrap();

    let mut clients: Vec<Child> = (0..2)
        .map(|i| {
            spawn_client(
                &addr,
                &dir.join(format!("client{i}.jsonl")),
                &dir.join(format!("session-{i}")),
            )
        })
        .collect();

    let status = serve.wait().unwrap();
    assert_eq!(
        status.code(),
        Some(41),
        "coordkill must exit with the designated code"
    );
    for c in &mut clients {
        c.kill().ok();
        c.wait().ok();
    }

    // Exactly one flight dump, named for the dead coordinator's pid,
    // opening with its process metadata and holding the final round's
    // spans (the kill fires right after the round-1 commit).
    let dumps: Vec<PathBuf> = std::fs::read_dir(&flights)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    assert_eq!(dumps.len(), 1, "expected one flight dump: {dumps:?}");
    let name = dumps[0].file_name().unwrap().to_str().unwrap();
    assert!(
        name.starts_with("flight-") && name.ends_with(".jsonl"),
        "bad dump name {name}"
    );
    let dump = std::fs::read_to_string(&dumps[0]).unwrap();
    let mut lines = dump.lines();
    let first = lines.next().expect("dump must not be empty");
    assert!(
        first.contains("\"name\":\"process_meta\"") && field_u64(first, "trace_id").is_some(),
        "dump must open with process metadata: {first}"
    );
    let mut net_sends = 0usize;
    let mut transitions = 0usize;
    for line in dump.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object: {line}"
        );
        net_sends += usize::from(line.contains("\"name\":\"net_send\""));
        transitions += usize::from(line.contains("\"name\":\"coord_transition\""));
    }
    assert!(
        net_sends > 0 && transitions > 0,
        "flight dump must hold the final round's spans \
         ({net_sends} sends, {transitions} transitions)"
    );

    std::fs::remove_dir_all(&dir).ok();
}
