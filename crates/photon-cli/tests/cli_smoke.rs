//! End-to-end smoke tests for every `photon` subcommand, driven through
//! the library surface with miniature settings.

use photon_cli::args::Args;
use photon_cli::commands;

fn args(s: &str) -> Args {
    Args::parse(s.split_whitespace().map(String::from)).expect("valid args")
}

fn ckpt_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("photon-cli-smoke").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_train_args(dir: &std::path::Path, extra: &str) -> Args {
    args(&format!(
        "train --clients 2 --rounds 2 --local-steps 2 --batch 2 \
         --tokens-per-client 2000 --eval-every 2 --checkpoint-dir {} {extra}",
        dir.display()
    ))
}

#[test]
fn train_then_resume_generate_downstream() {
    let dir = ckpt_dir("full-cycle");
    commands::train(&tiny_train_args(&dir, ""), false).expect("train failed");
    assert!(dir.join("manifest.json").exists());
    assert!(dir.join("params.bin").exists());

    // Resume continues from the saved round.
    let resume = args(&format!(
        "resume --rounds 1 --tokens-per-client 2000 --eval-every 0 --checkpoint-dir {}",
        dir.display()
    ));
    commands::train(&resume, true).expect("resume failed");

    // Generation produces output without error.
    let gen = args(&format!(
        "generate --checkpoint-dir {} --prompt ab --tokens 8",
        dir.display()
    ));
    commands::generate(&gen).expect("generate failed");

    // Downstream suite scores the model.
    let ds = args(&format!("downstream --checkpoint-dir {}", dir.display()));
    commands::downstream(&ds).expect("downstream failed");
}

#[test]
fn train_variants() {
    // Pile-style data, DiLoCo server opt, compression, partial tolerance.
    let dir = ckpt_dir("variants");
    let a = tiny_train_args(
        &dir,
        "--data pile --clients 4 --server-opt diloco --compress --partial-ok",
    );
    commands::train(&a, false).expect("variant train failed");
}

#[test]
fn plan_runs_for_every_size() {
    for size in ["125M", "1B", "3B", "7B"] {
        commands::plan(&args(&format!("plan --size {size}"))).expect(size);
    }
    assert!(commands::plan(&args("plan --size 13B")).is_err());
}

#[test]
fn helpful_errors() {
    assert!(commands::generate(&args("generate")).is_err()); // no checkpoint
    assert!(commands::train(&args("train --server-opt bogus"), false).is_err());
    assert!(commands::train(&args("train --model bogus"), false).is_err());
    assert!(commands::train(&args("train --data bogus"), false).is_err());
    assert!(commands::train(&args("resume"), true).is_err()); // missing dir
}

#[test]
fn help_paths_do_not_error() {
    commands::train(&args("train --help"), false).unwrap();
    commands::plan(&args("plan --help")).unwrap();
    commands::generate(&args("generate --help")).unwrap();
    commands::downstream(&args("downstream --help")).unwrap();
}
