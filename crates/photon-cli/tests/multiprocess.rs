//! End-to-end crash tolerance with real OS processes: `photon serve`
//! and `photon client` binaries over localhost TCP, with SIGKILL — not
//! a polite shutdown — aimed at a client and then at the coordinator
//! mid-run. The run must finish, every session must resume (never
//! re-admit), no result may double-apply, and the final loss must stay
//! within 10% of a fault-free run.

use std::io::Read;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_photon");

/// Reserves a localhost port (bind, read, release).
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    format!("127.0.0.1:{}", listener.local_addr().unwrap().port())
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "photon-mp-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Shared model/round shape for every run in this file: tiny model,
/// short rounds, partial results allowed.
fn serve_cmd(addr: &str, rounds: u64) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "serve",
        "--addr",
        addr,
        "--clients",
        "3",
        "--rounds",
        &rounds.to_string(),
        "--local-steps",
        "4",
        "--tokens-per-client",
        "2000",
        "--warmup-ms",
        "100",
        "--cooldown-ms",
        "100",
        "--round-timeout-ms",
        "8000",
    ])
    .stdout(Stdio::piped())
    .stderr(Stdio::piped());
    cmd
}

fn spawn_client(addr: &str, session_file: Option<&Path>) -> Child {
    let mut cmd = Command::new(BIN);
    cmd.args(["client", "--addr", addr, "--max-attempts", "200"]);
    if let Some(path) = session_file {
        cmd.arg("--session-file").arg(path);
    }
    cmd.stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap()
}

/// Waits for a child and returns (success, stdout).
fn finish(child: Child) -> (bool, String) {
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.success(), format!("{stdout}\n{stderr}"))
}

/// Pulls the mean client loss of the last committed round out of a
/// serve process's stdout.
fn final_loss(serve_stdout: &str) -> f64 {
    serve_stdout
        .lines()
        .filter_map(|l| l.rsplit("mean client loss ").next()?.trim().parse().ok())
        .next_back()
        .expect("serve printed no round losses")
}

/// Extracts `"key": <integer>` from the metrics JSON snapshot.
fn metric_u64(metrics: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = metrics.find(&needle)? + needle.len();
    let rest = &metrics[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Polls the serve metrics file until `rounds_committed >= target` (the
/// snapshot is written after the checkpoint, so observing it also
/// proves the checkpoint for that round is durable).
fn wait_for_commits(metrics_path: &Path, target: u64, budget: Duration) -> String {
    let start = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(metrics_path) {
            if metric_u64(&text, "rounds_committed").is_some_and(|n| n >= target) {
                return text;
            }
        }
        assert!(
            start.elapsed() < budget,
            "no {target} commits within {budget:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigkill_client_and_coordinator_and_run_recovers() {
    // --- fault-free baseline (same binaries, same shape) --------------
    let addr = free_addr();
    let serve = serve_cmd(&addr, 4).spawn().unwrap();
    let clients: Vec<Child> = (0..3).map(|_| spawn_client(&addr, None)).collect();
    let (ok, serve_out) = finish(serve);
    assert!(ok, "baseline serve failed:\n{serve_out}");
    for c in clients {
        let (ok, out) = finish(c);
        assert!(ok && out.contains("clean shutdown: true"), "{out}");
    }
    let baseline_loss = final_loss(&serve_out);

    // --- faulted run: SIGKILL a client, then the coordinator ----------
    let addr = free_addr();
    let dir = scratch_dir("kill");
    let metrics = dir.join("metrics.json");
    let ckpt = dir.join("ckpt");
    let session: Vec<PathBuf> = (0..3).map(|i| dir.join(format!("session-{i}"))).collect();

    let mut serve1 = serve_cmd(&addr, 4);
    serve1
        .arg("--metrics-json")
        .arg(&metrics)
        .arg("--checkpoint-dir")
        .arg(&ckpt);
    let mut serve1 = serve1.spawn().unwrap();
    let mut clients: Vec<Child> = session
        .iter()
        .map(|s| spawn_client(&addr, Some(s)))
        .collect();

    // Round 0 committed: SIGKILL client 0 outright and restart it with
    // the same session file. It must resume its session, not re-join —
    // with --clients 3 there is no spare admission slot, so a re-join
    // would wedge the run.
    wait_for_commits(&metrics, 1, Duration::from_secs(60));
    let mut victim = clients.remove(0);
    victim.kill().unwrap();
    victim.wait().unwrap();
    clients.insert(0, spawn_client(&addr, Some(&session[0])));

    // Round 1 checkpointed: SIGKILL the coordinator and restart it with
    // --resume on the same address. The clients ride the outage on
    // their reconnect backoff and resume by session token.
    wait_for_commits(&metrics, 2, Duration::from_secs(60));
    serve1.kill().unwrap();
    let mut drain = String::new();
    serve1
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut drain)
        .ok();
    serve1.wait().unwrap();

    let mut serve2 = serve_cmd(&addr, 4);
    serve2
        .arg("--resume")
        .arg("--metrics-json")
        .arg(&metrics)
        .arg("--checkpoint-dir")
        .arg(&ckpt);
    let serve2 = serve2.spawn().unwrap();

    let (ok, serve2_out) = finish(serve2);
    assert!(ok, "restarted serve failed:\n{serve2_out}");
    assert!(
        serve2_out.contains("resumed from checkpointed round 2"),
        "restart must restore the round-2 checkpoint:\n{serve2_out}"
    );
    for c in clients {
        let (ok, out) = finish(c);
        assert!(ok && out.contains("clean shutdown: true"), "{out}");
    }

    // The restarted coordinator's final snapshot: all three sessions
    // resumed (no fresh re-admissions), restart counted, and every
    // committed round applied at most `cohort` results — re-deliveries
    // were acked, never re-applied.
    let snapshot = std::fs::read_to_string(&metrics).unwrap();
    assert_eq!(metric_u64(&snapshot, "rounds_committed"), Some(2));
    assert_eq!(metric_u64(&snapshot, "coordinator_restarts"), Some(1));
    assert_eq!(metric_u64(&snapshot, "sessions"), Some(3));
    assert!(
        metric_u64(&snapshot, "session_resumes").is_some_and(|n| n >= 3),
        "all clients must resume into the restarted coordinator:\n{snapshot}"
    );
    for window in snapshot.split("\"recent_rounds\"").nth(1).iter() {
        for entry in window.split('{').skip(1) {
            let received = metric_u64(entry, "received").unwrap_or(0);
            let cohort = metric_u64(entry, "cohort").unwrap_or(0);
            assert!(
                received <= cohort,
                "round applied more results than its cohort (double-apply): {entry}"
            );
        }
    }

    // Convergence: the doubly-crashed run lands within 10% of baseline.
    let faulted_loss = final_loss(&serve2_out);
    assert!(
        (faulted_loss - baseline_loss).abs() <= 0.10 * baseline_loss.abs(),
        "faulted loss {faulted_loss} vs baseline {baseline_loss}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
