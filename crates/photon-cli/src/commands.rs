//! Implementations of the `photon` subcommands.

use crate::args::Args;
use photon_core::experiments::{
    build_heterogeneous_federation, build_iid_federation, downstream_report, RunOptions,
};
use photon_core::{
    load_checkpoint, run_training, AdaptiveDeadlineConfig, CohortSpec, CoreError, FaultInjector,
    FaultSpec, Federation, FederationConfig, HierarchyConfig, LinkProfile, MembershipConfig,
    NetworkConfig, TrainingOptions,
};
use photon_fedopt::{AggregationKind, BufferConfig, GuardConfig, ServerOptKind};
use photon_nn::{generate as sample_tokens, Gpt, ModelConfig, SampleConfig};
use photon_optim::LrSchedule;
use photon_tensor::SeedStream;
use photon_tokenizer::{ByteTokenizer, Tokenizer};
use std::path::{Path, PathBuf};

const TRAIN_HELP: &str = "photon train / resume — federated pre-training

OPTIONS:
    --model tiny|small|medium|large   proxy architecture      [tiny]
    --positions alibi|learned         positional scheme       [alibi]
    --data web|pile                   IID web or Pile-style    [web]
    --clients N                       population size          [4]
    --sample K                        clients per round (partial participation)
    --rounds N                        federated rounds         [12]
    --local-steps N                   tau, steps per round     [16]
    --batch N                         local batch size B_l     [8]
    --lr X                            peak learning rate       [0.006]
    --server-opt fedavg|fedmom|fedadam|diloco                  [fedavg]
    --tokens-per-client N             corpus tokens per client [20000]
    --seed N                          root seed                [42]
    --eval-every N                    eval cadence in rounds   [1]
    --threads N                       kernel worker threads (0 = serial) [auto]
    --backend scalar|simd             compute backend (also PHOTON_BACKEND;
                                      simd falls back to scalar when the CPU
                                      lacks AVX2/FMA)            [auto]
    --dtype f32|bf16                  storage precision for checkpoints and
                                      wire payloads; compute stays f32 [f32]
    --checkpoint-dir DIR              save (and resume) here
    --checkpoint-every N              checkpoint cadence in rounds [5]
    --recovery-budget N               max crash recoveries     [3]
    --deadline-ms N                   round deadline; late results dropped
                                      into the partial-update path
    --retransmit-budget N             link retries for corrupt frames [3]
    --link-jitter-pct P               jitter each retransmit backoff by up
                                      to P percent (seeded, deterministic)
    --link-timeout-ms N               per-delivery timeout; a link that
                                      exceeds it counts as a dropout
    --faults SPEC                     seeded fault injection, e.g.
                                      crash=0.05,straggle=0.1,straggle-ms=500,
                                      corrupt=0.05,agg=0.02,seed=9
                                      (pair with --partial-ok); Byzantine
                                      rates nan=,sign-flip=,scale=,
                                      scale-factor=; churn rates join=,leave=;
                                      targeted entries kind@rNcM, e.g.
                                      sign-flip@r3c1, plus join@rN and
                                      leave@rNcM; network chaos: lossy=RATE
                                      per-cell transmission loss,
                                      slowlink@rNcM pins a link slow, and
                                      partition@rN[-rM]:a.b|c.d severs the
                                      right side from the left (`~` instead
                                      of `|` hears broadcasts but loses
                                      results; `*` = everyone else);
                                      shard faults: shardcrash=RATE,
                                      shardhang=RATE, shards=N (defaults
                                      to --shards), plus pinned
                                      shardcrash@rNsM / shardhang@rNsM
    --net-latency-ms N                simulated network: per-link base
                                      latency (any --net-* flag enables
                                      the deterministic link model)  [0]
    --net-jitter-ms N                 per-delivery latency jitter      [0]
    --net-bw-kbps N                   link bandwidth; payload size adds
                                      transfer time (0 = infinite)    [0]
    --net-loss X                      per-attempt loss probability     [0]
    --net-dup X                       duplicate-delivery probability   [0]
    --net-reorder-ms N                reorder window for late duplicate
                                      arrivals                        [0]
    --net-quorum X                    reachable fraction below which a
                                      round runs degraded (deadline
                                      lifted, server opt skipped)   [0.5]
    --net-slow-factor N               latency multiplier applied by
                                      slowlink@ faults                [10]
    --adaptive-deadline               derive the round deadline from a
                                      percentile of observed delivery
                                      latencies (replaces --deadline-ms)
    --deadline-percentile X           adaptive deadline percentile  [0.95]
    --deadline-floor-ms N             adaptive deadline floor        [100]
    --deadline-ceiling-ms N           adaptive deadline ceiling    [10000]
    --aggregation RULE                mean|ties[:density]|trimmed-mean[:r]|
                                      median|norm-clipped[:mult]   [mean]
    --guard                           screen updates before merging
                                      (finiteness, norm clip, outlier
                                      rejection, quarantine)
    --loss-spike-mult X               roll back when mean loss exceeds
                                      X * its EMA (watchdog; X > 1)
    --compress                        lossless Link compression
    --secure                          secure aggregation
    --partial-ok                      tolerate client dropouts
    --membership                      elastic membership: lease-based
                                      liveness, warm joins, permanent leaves
    --lease-ms N                      liveness lease duration [3000]
                                      (implies --membership)
    --round-ms N                      simulated round duration  [1000]
    --buffer-quorum M                 buffered semi-sync aggregation:
                                      commit once M updates are pending
                                      (implies --membership)
    --shards N                        hierarchical aggregation: route the
                                      cohort through N crash-tolerant
                                      sub-aggregator shards (the K-ary
                                      tree's fan-in at the root)
    --shard-quorum-frac X             fraction of a shard's slice that
                                      must arrive before the shard commits
                                      upward (implies --shards)    [0.5]
    --max-resident N                  residency bound of each shard's
                                      streaming merge: at most N full
                                      update vectors held at once
                                      (implies --shards)            [64]
    --staleness-decay X               down-weight an update s rounds stale
                                      by (1+s)^-X          [0.5]
    --metrics-json PATH               live metrics JSON (history, fault and
                                      churn counters, committed rounds,
                                      compute threads, participation skew),
                                      rewritten atomically every round
    --trace-jsonl PATH                structured trace events as JSON lines
                                      (chrome://tracing compatible); replays
                                      byte-identically for a fixed seed
    --metrics-text PATH               Prometheus-style text snapshot,
                                      rewritten atomically every round
    --trace-kernels                   also emit per-kernel spans (GEMM,
                                      attention, layernorm) as trace events;
                                      kernels always feed the phase profile";

/// `photon train` / `photon resume`.
pub fn train(args: &Args, resume: bool) -> Result<(), String> {
    if args.flag("help") {
        println!("{TRAIN_HELP}");
        return Ok(());
    }
    // Resolve the kernel worker budget before any compute runs. Absent
    // means auto (PHOTON_THREADS env, else the machine's parallelism);
    // an explicit 0 forces the serial paths.
    if let Some(t) = args.get_opt_parsed::<usize>("threads")? {
        photon_tensor::ops::pool::set_max_threads(if t == 0 { 1 } else { t });
    }
    let threads = photon_tensor::ops::pool::max_threads();
    // Pin the compute backend before any kernel runs. An explicit request
    // for simd on a host without AVX2/FMA falls back to scalar (reported
    // by the effective name below); absent means PHOTON_BACKEND env, else
    // CPU detection.
    if let Some(name) = args.get("backend") {
        let kind = photon_tensor::backend::BackendKind::parse(name)
            .ok_or_else(|| format!("unknown --backend {name:?} (scalar|simd)"))?;
        photon_tensor::backend::set_backend(kind);
    }
    let backend = photon_tensor::backend::active_name();

    let ckpt_dir = args.get("checkpoint-dir").map(PathBuf::from);
    let rounds: u64 = args.get_parsed("rounds", 12)?;
    let eval_every: u64 = args.get_parsed("eval-every", 1)?;

    // Observability sinks: any of them turns the recorder on; otherwise
    // the hot paths pay one relaxed atomic load and nothing else.
    let trace_jsonl = args.get("trace-jsonl").map(PathBuf::from);
    let metrics_text = args.get("metrics-text").map(PathBuf::from);
    let tracing_on = trace_jsonl.is_some() || metrics_text.is_some();
    if tracing_on {
        photon_trace::init(photon_trace::TraceConfig {
            jsonl: trace_jsonl.clone(),
            prometheus: metrics_text.clone(),
            kernel_events: args.flag("trace-kernels"),
            clock: photon_trace::ClockMode::Sim,
        })
        .map_err(|e| format!("cannot initialize tracing: {e}"))?;
    }

    let cfg = if resume {
        let dir = ckpt_dir
            .as_deref()
            .ok_or("resume requires --checkpoint-dir")?;
        let (manifest, _) =
            load_checkpoint(dir).map_err(|e| format!("cannot load checkpoint: {e}"))?;
        println!(
            "resuming from {} at round {}",
            dir.display(),
            manifest.round
        );
        manifest.config
    } else {
        config_from_args(args)?
    };

    let injector = match args.get("faults") {
        Some(spec) => {
            let mut spec = FaultSpec::parse(spec).map_err(|e| format!("--faults: {e}"))?;
            // The probabilistic shard columns need a shard count; default
            // it from the aggregation tree unless the spec pinned one.
            if spec.shards == 0 {
                if let Some(h) = &cfg.hierarchy {
                    spec.shards = h.shards;
                }
            }
            Some(FaultInjector::from_spec(&spec, cfg.population, rounds))
        }
        None => None,
    };

    println!(
        "training {} | {} clients | tau = {} | B_l = {} | B_g = {} | {} | \
         {} worker thread(s) | {} backend | {} storage",
        cfg.model,
        cfg.population,
        cfg.local_steps,
        cfg.local_batch,
        cfg.global_batch(),
        match cfg.server_opt {
            ServerOptKind::FedAvg { .. } => "fedavg",
            ServerOptKind::FedMom { .. } => "fedmom",
            ServerOptKind::FedAdam { .. } => "fedadam",
            ServerOptKind::DiLoCo { .. } => "diloco",
        },
        threads,
        backend,
        cfg.dtype.as_str()
    );
    if let Some(inj) = &injector {
        println!(
            "fault plan: {} client fault(s), {} aggregator crash(es), {} join(s), \
             {} leave(s) over {rounds} round(s)",
            inj.plan().client_fault_count(),
            inj.plan().agg_crash_count(),
            inj.plan().join_count(),
            inj.plan().leave_count()
        );
        let chaos = inj.plan().partition_count()
            + inj.plan().slowlink_count()
            + inj.plan().link_loss_count();
        if chaos > 0 {
            println!(
                "network chaos: {} partition window(s), {} slow link(s), \
                 {} lossy cell(s)",
                inj.plan().partition_count(),
                inj.plan().slowlink_count(),
                inj.plan().link_loss_count()
            );
        }
    }
    if let Some(membership) = cfg.membership {
        let buffered = match cfg.buffer {
            Some(b) => format!(
                " | buffered commit: quorum {}, staleness decay {}",
                b.quorum, b.staleness_decay
            ),
            None => String::new(),
        };
        println!(
            "elastic membership: lease {} ms, round {} ms{buffered}",
            membership.lease_ms, membership.round_ms
        );
    }
    if let Some(h) = &cfg.hierarchy {
        println!(
            "hierarchical aggregation: {} shard(s), shard quorum {:.0}%, \
             max {} resident update(s) per shard",
            h.shards,
            h.shard_quorum_frac * 100.0,
            h.max_resident
        );
    }

    let opts = TrainingOptions {
        run: RunOptions {
            rounds,
            eval_every,
            eval_windows: 48,
            stop_below: None,
        },
        checkpoint_dir: ckpt_dir.clone(),
        checkpoint_every: args.get_parsed("checkpoint-every", 5)?,
        recovery_budget: args.get_parsed("recovery-budget", 3)?,
        resume,
        metrics_json: args.get("metrics-json").map(PathBuf::from),
    };
    let outcome = run_training(
        || {
            let (fed, val) = build_data(&cfg, args).map_err(CoreError::InvalidConfig)?;
            fed.aggregator.telemetry().record_compute_threads(threads);
            Ok((fed, val))
        },
        &opts,
        injector.as_ref(),
    )
    .map_err(|e| e.to_string())?;

    for r in &outcome.history.rounds {
        let mut turbulence = if r.dropouts + r.stragglers > 0 || r.retransmits > 0 {
            format!(
                " | drop {} strag {} rtx {}",
                r.dropouts, r.stragglers, r.retransmits
            )
        } else {
            String::new()
        };
        if r.joined + r.departed + r.lease_expired + r.rejoined > 0 {
            turbulence.push_str(&format!(
                " | join {} leave {} expire {} rejoin {}",
                r.joined, r.departed, r.lease_expired, r.rejoined
            ));
        }
        if r.commit_deferred {
            turbulence.push_str(&format!(" | buffering ({} pending)", r.buffered));
        } else if r.buffered > 0 {
            turbulence.push_str(&format!(" | buffer {}", r.buffered));
        }
        if r.shard_crashes + r.shard_hangs + r.shard_degraded > 0 {
            turbulence.push_str(&format!(
                " | shards: {} crash {} hang {} degraded",
                r.shard_crashes, r.shard_hangs, r.shard_degraded
            ));
        }
        if r.reparented > 0 {
            turbulence.push_str(&format!(" | reparented {}", r.reparented));
        }
        if r.degraded {
            turbulence.push_str(&format!(" | DEGRADED ({} unreachable)", r.unreachable));
        } else if r.unreachable > 0 {
            turbulence.push_str(&format!(" | unreachable {}", r.unreachable));
        }
        match r.eval_ppl {
            Some(p) => println!(
                "round {:>4} | loss {:.4} | val ppl {:>8.2} | wire {:>7.1} KB{turbulence}",
                r.round,
                r.mean_client_loss,
                p,
                r.wire_bytes as f64 / 1024.0
            ),
            None => println!(
                "round {:>4} | loss {:.4}{turbulence}",
                r.round, r.mean_client_loss
            ),
        }
    }
    if let Some(best) = outcome.history.best_ppl() {
        println!("best validation perplexity: {best:.2}");
    }
    let faults = outcome.federation.aggregator.telemetry().fault_counters();
    if outcome.recoveries > 0 || faults != photon_core::FaultCounters::default() {
        println!(
            "faults absorbed: {} crash(es), {} straggler(s), {} retransmit(s), \
             {} link dropout(s), {} recovery(ies)",
            faults.crashes,
            faults.stragglers,
            faults.retransmits,
            faults.link_dropouts,
            outcome.recoveries
        );
    }
    let guarded = faults.rejected_nonfinite
        + faults.rejected_outliers
        + faults.norm_clipped
        + faults.quarantine_skips;
    if guarded > 0 || outcome.rollbacks > 0 {
        println!(
            "guard: {} non-finite rejection(s), {} outlier rejection(s), \
             {} norm clip(s), {} quarantine skip(s), {} rollback(s)",
            faults.rejected_nonfinite,
            faults.rejected_outliers,
            faults.norm_clipped,
            faults.quarantine_skips,
            outcome.rollbacks
        );
    }
    if faults.joins + faults.leaves + faults.lease_expiries + faults.rejoins > 0 {
        println!(
            "churn: {} join(s), {} leave(s), {} lease expiry(ies), {} rejoin(s)",
            faults.joins, faults.leaves, faults.lease_expiries, faults.rejoins
        );
    }
    if faults.buffered_commits > 0 {
        println!(
            "buffered aggregation: {} commit(s), {} stale update(s) down-weighted",
            faults.buffered_commits, faults.stale_commits
        );
    }
    if faults.shard_crashes + faults.shard_hangs + faults.shard_degraded + faults.reparented > 0 {
        println!(
            "shard faults: {} crash(es), {} hang(s), {} degraded commit(s), \
             {} orphan(s) re-parented",
            faults.shard_crashes, faults.shard_hangs, faults.shard_degraded, faults.reparented
        );
    }
    let telemetry = outcome.federation.aggregator.telemetry();
    if let (Some(p50), Some(p99)) = (
        telemetry.link_latency_quantile(0.5),
        telemetry.link_latency_quantile(0.99),
    ) {
        println!(
            "network: {} delivery(ies), latency p50 {p50} ms / p99 {p99} ms, \
             {} loss(es), {} duplicate(s) dropped, {} partition drop(s)",
            telemetry.link_latency_count(),
            faults.link_losses,
            faults.dup_drops,
            faults.partition_drops
        );
    }
    if faults.degraded_rounds > 0 {
        println!(
            "degraded mode: {} round(s) below quorum, {} recovery(ies)",
            faults.degraded_rounds, faults.degraded_recoveries
        );
    }
    if let Some(path) = args.get("metrics-json") {
        // The recovery driver rewrites the file atomically after every
        // round (and once more after the final round), so it is already
        // current here.
        println!("live metrics written to {path}");
    }
    if tracing_on {
        // Final drain: everything the last round recorded lands in the
        // sinks, and the merged summary feeds the phase-profile report.
        match photon_trace::flush() {
            Ok(summary) => print_phase_report(&summary, rounds),
            Err(e) => eprintln!("warning: final trace flush failed: {e}"),
        }
        if let Some(path) = &trace_jsonl {
            println!("trace written to {}", path.display());
        }
        if let Some(path) = &metrics_text {
            println!("metrics snapshot written to {}", path.display());
        }
    }
    if let Some(dir) = ckpt_dir {
        println!("checkpoint saved to {}", dir.display());
    }
    Ok(())
}

/// The end-of-run observability summary: per-phase wall-time shares with
/// per-phase p50/p95 latencies, plus round-level latency and wire-byte
/// distributions from the recorder's histograms.
fn print_phase_report(summary: &photon_trace::FlushSummary, rounds: u64) {
    if summary.profile.is_empty() {
        return;
    }
    println!();
    print!("{}", summary.profile.render_report());
    if let Some(stat) = summary.profile.get(photon_trace::Phase::Round) {
        let h = &stat.hist;
        println!(
            "round wall time: p50 {:.1} ms, p95 {:.1} ms over {} span(s)",
            h.quantile(0.5) as f64 / 1e6,
            h.quantile(0.95) as f64 / 1e6,
            h.count()
        );
    }
    if let Some(h) = summary.hists.get("round.wire_bytes") {
        println!(
            "bytes on wire per round: p50 {:.1} KB, p95 {:.1} KB, total {:.1} KB",
            h.quantile(0.5) as f64 / 1024.0,
            h.quantile(0.95) as f64 / 1024.0,
            h.sum() as f64 / 1024.0
        );
    }
    if summary.events_dropped > 0 {
        eprintln!(
            "warning: {} trace event(s) dropped to ring-buffer overflow \
             ({} written over {rounds} round(s))",
            summary.events_dropped, summary.events_written
        );
    }
}

fn config_from_args(args: &Args) -> Result<FederationConfig, String> {
    let model = parse_model(args.get_or("model", "tiny"))?;
    let clients: usize = args.get_parsed("clients", 4)?;
    let mut cfg = FederationConfig::quick_demo(model, clients);
    cfg.positions = match args.get_or("positions", "alibi") {
        "alibi" => photon_nn::PosEncoding::Alibi,
        "learned" => photon_nn::PosEncoding::Learned,
        other => return Err(format!("unknown --positions {other:?} (alibi|learned)")),
    };
    cfg.local_steps = args.get_parsed("local-steps", 16)?;
    cfg.local_batch = args.get_parsed("batch", 8)?;
    cfg.seed = args.get_parsed("seed", 42)?;
    cfg.compress_link = args.flag("compress");
    cfg.secure_agg = args.flag("secure");
    if let Some(name) = args.get("dtype") {
        cfg.dtype = photon_tensor::Dtype::parse(name)
            .ok_or_else(|| format!("unknown --dtype {name:?} (f32|bf16)"))?;
    }
    cfg.allow_partial_results = args.flag("partial-ok");
    if let Some(rule) = args.get("aggregation") {
        cfg.aggregation =
            AggregationKind::parse(rule).map_err(|e| format!("--aggregation: {e}"))?;
    }
    if args.flag("guard") {
        cfg.guard = GuardConfig::on();
    }
    if let Some(mult) = args.get_opt_parsed::<f64>("loss-spike-mult")? {
        cfg.loss_spike_mult = Some(mult);
    }
    cfg.round_deadline_ms = args.get_opt_parsed::<u64>("deadline-ms")?;
    if let Some(retries) = args.get_opt_parsed::<u32>("retransmit-budget")? {
        cfg.retransmit.max_retries = retries;
    }
    if let Some(pct) = args.get_opt_parsed::<u32>("link-jitter-pct")? {
        cfg.retransmit.jitter_pct = pct;
    }
    if let Some(ms) = args.get_opt_parsed::<u64>("link-timeout-ms")? {
        cfg.retransmit.timeout_ms = ms;
    }
    // Simulated network: any --net-* flag switches the link model on;
    // unset knobs keep their defaults.
    let net_latency = args.get_opt_parsed::<u64>("net-latency-ms")?;
    let net_jitter = args.get_opt_parsed::<u64>("net-jitter-ms")?;
    let net_bw = args.get_opt_parsed::<u64>("net-bw-kbps")?;
    let net_loss = args.get_opt_parsed::<f64>("net-loss")?;
    let net_dup = args.get_opt_parsed::<f64>("net-dup")?;
    let net_reorder = args.get_opt_parsed::<u64>("net-reorder-ms")?;
    let net_quorum = args.get_opt_parsed::<f64>("net-quorum")?;
    let net_slow = args.get_opt_parsed::<u64>("net-slow-factor")?;
    if net_latency.is_some()
        || net_jitter.is_some()
        || net_bw.is_some()
        || net_loss.is_some()
        || net_dup.is_some()
        || net_reorder.is_some()
        || net_quorum.is_some()
        || net_slow.is_some()
    {
        let defaults = NetworkConfig::default();
        cfg.network = Some(NetworkConfig {
            profile: LinkProfile {
                base_latency_ms: net_latency.unwrap_or(0),
                jitter_ms: net_jitter.unwrap_or(0),
                bandwidth_kbps: net_bw.unwrap_or(0),
                loss_rate: net_loss.unwrap_or(0.0),
                dup_rate: net_dup.unwrap_or(0.0),
                reorder_window_ms: net_reorder.unwrap_or(0),
            },
            min_quorum_frac: net_quorum.unwrap_or(defaults.min_quorum_frac),
            slow_factor: net_slow.unwrap_or(defaults.slow_factor),
        });
    }
    // Adaptive deadline: the flag or any of its knobs enables it; config
    // validation rejects combining it with a fixed --deadline-ms.
    let dl_pct = args.get_opt_parsed::<f64>("deadline-percentile")?;
    let dl_floor = args.get_opt_parsed::<u64>("deadline-floor-ms")?;
    let dl_ceiling = args.get_opt_parsed::<u64>("deadline-ceiling-ms")?;
    if args.flag("adaptive-deadline")
        || dl_pct.is_some()
        || dl_floor.is_some()
        || dl_ceiling.is_some()
    {
        let d = AdaptiveDeadlineConfig::default();
        cfg.adaptive_deadline = Some(AdaptiveDeadlineConfig {
            percentile: dl_pct.unwrap_or(d.percentile),
            floor_ms: dl_floor.unwrap_or(d.floor_ms),
            ceiling_ms: dl_ceiling.unwrap_or(d.ceiling_ms),
            window: d.window,
        });
    }
    // Elastic membership: --lease-ms and --buffer-quorum imply it, since
    // both are meaningless without the lease state machine.
    let lease_ms = args.get_opt_parsed::<u64>("lease-ms")?;
    let round_ms = args.get_opt_parsed::<u64>("round-ms")?;
    let quorum = args.get_opt_parsed::<usize>("buffer-quorum")?;
    if args.flag("membership") || lease_ms.is_some() || quorum.is_some() {
        let mut membership = MembershipConfig::default();
        if let Some(ms) = lease_ms {
            membership.lease_ms = ms;
        }
        if let Some(ms) = round_ms {
            membership.round_ms = ms;
        }
        cfg.membership = Some(membership);
    }
    if let Some(quorum) = quorum {
        let mut buffer = BufferConfig {
            quorum,
            ..BufferConfig::default()
        };
        if let Some(decay) = args.get_opt_parsed::<f64>("staleness-decay")? {
            buffer.staleness_decay = decay;
        }
        cfg.buffer = Some(buffer);
    }
    // Hierarchical aggregation: --shards enables the sub-aggregator tree;
    // its two knobs imply it.
    let shards = args.get_opt_parsed::<usize>("shards")?;
    let shard_quorum = args.get_opt_parsed::<f64>("shard-quorum-frac")?;
    let max_resident = args.get_opt_parsed::<usize>("max-resident")?;
    if shards.is_some() || shard_quorum.is_some() || max_resident.is_some() {
        let mut hierarchy = HierarchyConfig::default();
        if let Some(n) = shards {
            hierarchy.shards = n;
        }
        if let Some(frac) = shard_quorum {
            hierarchy.shard_quorum_frac = frac;
        }
        if let Some(n) = max_resident {
            hierarchy.max_resident = n;
        }
        cfg.hierarchy = Some(hierarchy);
    }
    if let Some(k) = args.get("sample") {
        cfg.cohort = CohortSpec::Sample {
            k: k.parse().map_err(|_| format!("invalid --sample {k:?}"))?,
        };
    }
    let lr: f32 = args.get_parsed("lr", 6e-3)?;
    let rounds: u64 = args.get_parsed("rounds", 12)?;
    cfg.schedule = LrSchedule::paper_cosine(lr, 10, (rounds * cfg.local_steps).max(20));
    cfg.server_opt = match args.get_or("server-opt", "fedavg") {
        "fedavg" => ServerOptKind::photon_default(),
        "fedmom" => ServerOptKind::FedMom {
            lr: 1.0,
            momentum: 0.9,
        },
        "fedadam" => ServerOptKind::FedAdam { lr: 0.01 },
        "diloco" => ServerOptKind::diloco_default(),
        other => return Err(format!("unknown --server-opt {other:?}")),
    };
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn build_data(
    cfg: &FederationConfig,
    args: &Args,
) -> Result<(Federation, photon_data::TokenCorpus), String> {
    let tokens: usize = args.get_parsed("tokens-per-client", 20_000)?;
    match args.get_or("data", "web") {
        "web" => build_iid_federation(cfg, tokens).map_err(|e| e.to_string()),
        "pile" => build_heterogeneous_federation(cfg, tokens * 4).map_err(|e| e.to_string()),
        other => Err(format!("unknown --data {other:?} (web|pile)")),
    }
}

fn parse_model(name: &str) -> Result<ModelConfig, String> {
    Ok(match name {
        "tiny" => ModelConfig::proxy_tiny(),
        "small" => ModelConfig::proxy_small(),
        "medium" => ModelConfig::proxy_medium(),
        "large" => ModelConfig::proxy_large(),
        other => {
            return Err(format!(
                "unknown --model {other:?} (tiny|small|medium|large)"
            ))
        }
    })
}

/// `photon plan`.
pub fn plan(args: &Args) -> Result<(), String> {
    if args.flag("help") {
        println!("photon plan — hardware planning\n\nOPTIONS:\n    --size 125M|1B|3B|7B   Table 1 deployment row [7B]");
        return Ok(());
    }
    use photon_cluster::{autotune_batch, paper_silos, select_strategy, Region, RegionGraph};
    use photon_comms::{Topology, WallTimeModel};

    let size = args.get_or("size", "7B");
    let model = match size {
        "125M" => ModelConfig::paper_125m(),
        "1B" => ModelConfig::paper_1_3b(),
        "3B" => ModelConfig::paper_3b(),
        "7B" => ModelConfig::paper_7b(),
        other => return Err(format!("unknown --size {other:?}")),
    };
    let silos = paper_silos(size);
    println!("plan for {size}: {} silos", silos.len());
    println!(
        "{:<16} {:>5} {:>18} {:>11} {:>9}",
        "silo", "gpus", "strategy", "batch/gpu", "act-ckpt"
    );
    for silo in &silos {
        let strategy = select_strategy(&model, silo);
        let tune = autotune_batch(&model, silo.gpu(), strategy, 64);
        println!(
            "{:<16} {:>5} {:>18} {:>11} {:>9}",
            silo.name,
            silo.total_gpus(),
            strategy.to_string(),
            tune.per_gpu_batch,
            tune.activation_ckpt
        );
    }
    let graph = RegionGraph::paper();
    let regions: Vec<Region> = silos.iter().map(|s| s.region).collect();
    let s_mb = model.param_bytes(2) as f64 / 1e6;
    println!(
        "\naggregation over the Fig. 2 bandwidths ({:.0} MB payload):",
        s_mb
    );
    for topology in Topology::all() {
        let gbps = match topology {
            Topology::ParameterServer => graph.slowest_star_link(Region::England, &regions),
            _ => graph.slowest_ring_link(&regions),
        };
        let wt = WallTimeModel::new(0.1, 500, s_mb, gbps * 125.0, topology);
        let round = wt.round_time(silos.len());
        println!(
            "  {:<4} bottleneck {:>5.1} Gbps -> {:>8.1} s/round ({:.2}% of round)",
            topology.to_string(),
            gbps,
            round.comm_s,
            100.0 * round.comm_fraction()
        );
    }
    Ok(())
}

/// `photon generate`.
pub fn generate(args: &Args) -> Result<(), String> {
    if args.flag("help") {
        println!("photon generate — sample text from a checkpoint\n\nOPTIONS:\n    --checkpoint-dir DIR   (required)\n    --prompt TEXT          [\"The \"]\n    --tokens N             [120]\n    --temperature X        [0.8]\n    --top-k N              [20]\n    --seed N               [0]");
        return Ok(());
    }
    let model = load_model(args)?;
    let tokenizer = ByteTokenizer::new();
    let prompt = args.get_or("prompt", "The ");
    let n: usize = args.get_parsed("tokens", 120)?;
    let cfg = SampleConfig {
        temperature: args.get_parsed("temperature", 0.8f32)?,
        top_k: args.get_parsed("top-k", 20usize)?,
    };
    let mut rng = SeedStream::new(args.get_parsed("seed", 0u64)?);
    let ids = tokenizer.encode(prompt);
    if ids.is_empty() {
        return Err("--prompt must be non-empty".into());
    }
    let out = sample_tokens(&model, &ids, n, &cfg, &mut rng);
    println!("{prompt}{}", tokenizer.decode(&out));
    Ok(())
}

/// `photon downstream`.
pub fn downstream(args: &Args) -> Result<(), String> {
    if args.flag("help") {
        println!("photon downstream — synthetic in-context evaluation\n\nOPTIONS:\n    --checkpoint-dir DIR   (required)\n    --seed N               [7]");
        return Ok(());
    }
    let model = load_model(args)?;
    let seed: u64 = args.get_parsed("seed", 7)?;
    println!("{:<16} {:>10} {:>10}", "benchmark", "accuracy", "instances");
    for score in downstream_report(&model, seed) {
        println!(
            "{:<16} {:>10.3} {:>10}",
            score.benchmark, score.accuracy, score.instances
        );
    }
    Ok(())
}

fn load_model(args: &Args) -> Result<Gpt, String> {
    let dir = args
        .get("checkpoint-dir")
        .map(Path::new)
        .ok_or("missing --checkpoint-dir")?;
    let (manifest, params) =
        load_checkpoint(dir).map_err(|e| format!("cannot load checkpoint: {e}"))?;
    Ok(Gpt::from_params(manifest.config.model, params))
}

const SERVE_HELP: &str = "photon serve — multi-process coordinator

Listens for `photon client` processes, runs the federated rounds, and
survives kills: every commit is checkpointed, and `--resume` restores
the state machine from the checkpoint while live clients re-sync.

OPTIONS:
    --addr HOST:PORT           listen address        [127.0.0.1:7700]
    --rounds N                 federated rounds      [12]
    --min-clients N            connections required before rounds start
                               [--clients]
    --checkpoint-dir DIR       checkpoint every commit here; required
                               for crash-restart
    --resume                   restore from --checkpoint-dir if a
                               checkpoint exists
    --warmup-ms N              settle delay before round 0   [200]
    --cooldown-ms N            grace window after the last round [200]
    --round-timeout-ms N       per-round result deadline     [30000]
    --heartbeat-timeout-ms N   quiet-connection miss window  [500]
    --metrics-json PATH        metrics snapshot after every commit
    --health-port N            serve GET /metrics (Prometheus text) and
                               GET /health (JSON) on 127.0.0.1:N for the
                               lifetime of the run (0 = ephemeral port)
    --trace-jsonl PATH         this process's trace shard as JSON lines;
                               frames to/from clients carry span contexts
                               so `photon trace merge` can join the
                               per-process shards into one timeline
    --metrics-text PATH        Prometheus text snapshot per commit
    --flight-dir DIR           crash flight recorder: on panic or an
                               injected coordkill, dump the last spans
                               to DIR/flight-<pid>.jsonl
    --faults SPEC              process faults: netcrash@rNcM (client
                               severs its socket mid-round),
                               nethang@rNcM (client goes silent),
                               coordkill@rN (coordinator exits after
                               committing round N)
    plus the model/optimizer options of `photon train` (--model,
    --clients, --local-steps, --batch, --seed, --tokens-per-client, ...)";

/// Switches the recorder on for a multi-process entry point (real
/// monotonic clock — shards from different processes are aligned later
/// by `photon trace merge` via the handshake offset estimate) and arms
/// the crash flight recorder when `--flight-dir` asks for one.
fn init_process_observability(args: &Args) -> Result<bool, String> {
    let trace_jsonl = args.get("trace-jsonl").map(PathBuf::from);
    let metrics_text = args.get("metrics-text").map(PathBuf::from);
    let tracing_on = trace_jsonl.is_some() || metrics_text.is_some();
    if tracing_on {
        photon_trace::init(photon_trace::TraceConfig {
            jsonl: trace_jsonl,
            prometheus: metrics_text,
            kernel_events: args.flag("trace-kernels"),
            clock: photon_trace::ClockMode::Monotonic,
        })
        .map_err(|e| format!("cannot initialize tracing: {e}"))?;
    }
    if let Some(dir) = args.get("flight-dir") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create --flight-dir {}: {e}", dir.display()))?;
        let path = dir.join(format!("flight-{}.jsonl", std::process::id()));
        photon_trace::flight_init(&path);
        photon_trace::flight_install_panic_hook();
    }
    Ok(tracing_on)
}

/// `photon serve`.
pub fn serve(args: &Args) -> Result<(), String> {
    if args.flag("help") {
        println!("{SERVE_HELP}");
        return Ok(());
    }
    let tracing_on = init_process_observability(args)?;
    // Flush the shard even when serve() errors or an injected fault cuts
    // the run short mid-round.
    let _flush = tracing_on.then(photon_trace::flush_guard);
    let mut cfg = config_from_args(args)?;
    // Multi-process rounds always tolerate partial cohorts: a client can
    // die mid-round and the deadline path must still commit.
    cfg.allow_partial_results = true;
    cfg.validate().map_err(|e| e.to_string())?;
    let rounds: u64 = args.get_parsed("rounds", 12)?;
    let faults = match args.get("faults") {
        Some(spec) => Some(FaultSpec::parse(spec)?),
        None => None,
    };
    let min_clients = args.get_parsed("min-clients", cfg.population)?;
    let plan = photon_net::RunPlan {
        tokens_per_client: args.get_parsed("tokens-per-client", 20_000)?,
        rounds,
        faults,
        cfg,
    };
    let opts = photon_net::ServeOptions {
        addr: args.get_or("addr", "127.0.0.1:7700").to_string(),
        plan,
        min_clients,
        checkpoint_dir: args.get("checkpoint-dir").map(PathBuf::from),
        resume: args.flag("resume"),
        warmup_ms: args.get_parsed("warmup-ms", 200)?,
        cooldown_ms: args.get_parsed("cooldown-ms", 200)?,
        round_timeout_ms: args.get_parsed("round-timeout-ms", 30_000)?,
        heartbeat_timeout_ms: args.get_parsed("heartbeat-timeout-ms", 500)?,
        metrics_json: args.get("metrics-json").map(PathBuf::from),
        stop_after_rounds: None,
        health_port: args.get_opt_parsed("health-port")?,
    };
    let report = photon_net::serve(&opts).map_err(|e| e.to_string())?;
    if let Some(from) = report.resumed_from {
        println!("resumed from checkpointed round {from}");
    }
    for (i, loss) in report.round_losses.iter().enumerate() {
        println!(
            "round {:>3}  mean client loss {loss:.4}",
            report.final_round as usize - report.round_losses.len() + i
        );
    }
    println!(
        "serve done: {} rounds committed (final round {}), {} session resumes",
        report.rounds_run, report.final_round, report.session_resumes
    );
    Ok(())
}

const CLIENT_HELP: &str = "photon client — one training participant

Connects to a `photon serve` coordinator, receives the run plan, and
trains every broadcast round. Rides out crashes on either side: it
reconnects with capped-exponential backoff, resumes its session by
token, and re-delivers un-acked results (the coordinator deduplicates).

OPTIONS:
    --addr HOST:PORT        coordinator address    [127.0.0.1:7700]
    --heartbeat-ms N        heartbeat cadence      [100]
    --reconnect-base-ms N   backoff base delay     [50]
    --reconnect-cap-ms N    backoff cap            [2000]
    --max-attempts N        reconnect budget       [120]
    --hang-ms N             nethang silence length [1500]
    --session-file PATH     persist the session identity so a killed
                            and restarted client process resumes its
                            session instead of re-joining
    --trace-jsonl PATH      this process's trace shard as JSON lines,
                            mergeable with the coordinator's shard via
                            `photon trace merge`
    --metrics-text PATH     Prometheus text snapshot on flush
    --flight-dir DIR        dump the last spans to
                            DIR/flight-<pid>.jsonl on panic";

/// `photon client`.
pub fn client(args: &Args) -> Result<(), String> {
    if args.flag("help") {
        println!("{CLIENT_HELP}");
        return Ok(());
    }
    let tracing_on = init_process_observability(args)?;
    let _flush = tracing_on.then(photon_trace::flush_guard);
    let opts = photon_net::ClientOptions {
        addr: args.get_or("addr", "127.0.0.1:7700").to_string(),
        heartbeat_interval_ms: args.get_parsed("heartbeat-ms", 100)?,
        reconnect_base_ms: args.get_parsed("reconnect-base-ms", 50)?,
        reconnect_cap_ms: args.get_parsed("reconnect-cap-ms", 2_000)?,
        max_connect_attempts: args.get_parsed("max-attempts", 120)?,
        hang_ms: args.get_parsed("hang-ms", 1_500)?,
        session_file: args.get("session-file").map(PathBuf::from),
    };
    let report = photon_net::run_client(&opts).map_err(|e| e.to_string())?;
    println!(
        "client {} done: {} rounds trained, {} reconnects ({} resumed), clean shutdown: {}",
        report.client_id,
        report.rounds_trained,
        report.reconnects,
        report.resumed_sessions,
        report.clean_shutdown
    );
    Ok(())
}

const TRACE_HELP: &str = "photon trace — distributed-trace tooling

ACTIONS:
    merge    join per-process trace shards into one timeline

`photon trace merge` aligns every shard onto the coordinator's clock
(each shard's process_meta line carries the offset its process estimated
during the session handshake), interleaves the events into one
chrome://tracing-compatible JSONL stream, and reports how many
cross-process send/recv edges found both endpoints.

OPTIONS:
    --inputs A,B,...   comma-separated shard paths
    --dir DIR          also merge every *.jsonl in DIR
                       (flight-*.jsonl crash dumps are skipped)
    --out PATH         write the merged timeline here [stdout]";

/// `photon trace <action>`.
pub fn trace(args: &Args, action: Option<&str>) -> Result<(), String> {
    if args.flag("help") || action.is_none() {
        println!("{TRACE_HELP}");
        return match action {
            None if !args.flag("help") => Err("missing trace action (try `merge`)".into()),
            _ => Ok(()),
        };
    }
    match action.unwrap() {
        "merge" => trace_merge(args),
        other => Err(format!("unknown trace action {other:?}\n\n{TRACE_HELP}")),
    }
}

/// `photon trace merge`.
fn trace_merge(args: &Args) -> Result<(), String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    if let Some(list) = args.get("inputs") {
        paths.extend(list.split(',').filter(|p| !p.is_empty()).map(PathBuf::from));
    }
    if let Some(dir) = args.get("dir") {
        let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read --dir {dir}: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                name.ends_with(".jsonl") && !name.starts_with("flight-")
            })
            .collect();
        found.sort();
        paths.extend(found);
    }
    if paths.is_empty() {
        return Err("no shards: pass --inputs and/or --dir".into());
    }
    let mut shards = Vec::with_capacity(paths.len());
    for path in &paths {
        shards.push(
            std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read shard {}: {e}", path.display()))?,
        );
    }
    let merged =
        photon_trace::merge_shards(&shards).map_err(|e| format!("cannot merge shards: {e}"))?;
    let stats = photon_trace::net_edge_stats(&merged);
    match args.get("out") {
        Some(out) => {
            photon_trace::atomic_write(Path::new(out), &merged)
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!(
                "merged {} shard(s), {} event(s) -> {out}",
                shards.len(),
                merged.lines().count()
            );
        }
        None => print!("{merged}"),
    }
    eprintln!(
        "net edges: {} send(s), {} recv(s), {} matched ({:.1}%)",
        stats.sends,
        stats.recvs,
        stats.matched,
        stats.matched_frac() * 100.0
    );
    Ok(())
}
