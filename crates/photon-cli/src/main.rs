//! `photon` — the Photon-RS command-line interface.
//!
//! Subcommands:
//! * `train`      — run a federated pre-training job (IID or Pile-style data)
//! * `resume`     — continue training from a checkpoint directory
//! * `serve`      — multi-process coordinator over TCP
//! * `client`     — one training participant connecting to `serve`
//! * `plan`       — hardware planning for the paper's deployments
//! * `generate`   — sample text from a checkpointed model
//! * `downstream` — run the synthetic in-context evaluation suite
//! * `trace`      — distributed-trace tooling (`trace merge` joins
//!   per-process JSONL shards into one chrome://tracing timeline)
//!
//! Run `photon --help` or `photon <command> --help` for options.

use photon_cli::args::Args;
use photon_cli::commands;
use std::process::ExitCode;

const USAGE: &str = "photon — federated LLM pre-training (Photon-RS)

USAGE:
    photon <command> [options]

COMMANDS:
    train       run a federated pre-training job
    resume      continue training from --checkpoint-dir
    serve       multi-process coordinator: listen for `photon client`s
    client      one training participant, connects to a `serve`
    plan        hardware planning for a paper model size
    generate    sample text from a checkpointed model
    downstream  score a checkpointed model on the synthetic eval suite
    trace       distributed-trace tooling (`photon trace merge`)

Run `photon <command> --help` for command options.";

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    // `photon trace <action> [options]`: peel the action positional off
    // before the option parser (which only accepts `--key` tokens after
    // the subcommand).
    let mut action = None;
    if raw[0] == "trace" && raw.len() > 1 && !raw[1].starts_with("--") {
        action = Some(raw.remove(1));
    }
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "train" => commands::train(&args, false),
        "resume" => commands::train(&args, true),
        "serve" => commands::serve(&args),
        "client" => commands::client(&args),
        "plan" => commands::plan(&args),
        "generate" => commands::generate(&args),
        "downstream" => commands::downstream(&args),
        "trace" => commands::trace(&args, action.as_deref()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
