//! Library surface of the `photon` CLI, exposed so integration tests can
//! drive the command implementations directly.

#![deny(unsafe_code)]

pub mod args;
pub mod commands;
