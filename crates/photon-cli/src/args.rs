//! Minimal dependency-free argument parsing for the `photon` CLI.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// Grammar: `photon <command> [--key value | --flag]...`. An option is
    /// a `--key` followed by a non-`--` token; a bare `--key` at the end or
    /// before another `--` token is a boolean flag.
    ///
    /// # Errors
    /// Returns a message if no subcommand is present or a positional
    /// argument appears after options.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut iter = raw.into_iter().peekable();
        let command = iter.next().ok_or("missing subcommand")?;
        if command.starts_with("--") && command != "--help" {
            return Err(format!("expected a subcommand, got option {command}"));
        }
        let mut args = Args {
            command,
            ..Args::default()
        };
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {tok:?}"));
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    args.options.insert(key.to_string(), value);
                }
                _ => args.flags.push(key.to_string()),
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric/typed option with default.
    ///
    /// # Errors
    /// Returns a message naming the option on parse failure.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v:?}")),
        }
    }

    /// Parsed optional option: `Ok(None)` when the option is absent, so
    /// callers can distinguish "not given" from an explicit value.
    ///
    /// # Errors
    /// Returns a message naming the option on parse failure.
    pub fn get_opt_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{key}: {v:?}")),
        }
    }

    /// Whether a boolean flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("train --clients 4 --compress --rounds 10").unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("clients"), Some("4"));
        assert_eq!(a.get_parsed("rounds", 0u64).unwrap(), 10);
        assert!(a.flag("compress"));
        assert!(!a.flag("secure"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("train").unwrap();
        assert_eq!(a.get_or("model", "tiny"), "tiny");
        assert_eq!(a.get_parsed("clients", 4usize).unwrap(), 4);
    }

    #[test]
    fn optional_parsed_distinguishes_absent() {
        let a = parse("train --threads 0").unwrap();
        assert_eq!(a.get_opt_parsed::<usize>("threads").unwrap(), Some(0));
        assert_eq!(a.get_opt_parsed::<usize>("rounds").unwrap(), None);
        let bad = parse("train --threads many").unwrap();
        assert!(bad.get_opt_parsed::<usize>("threads").is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse("train --secure").unwrap();
        assert!(a.flag("secure"));
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("").is_err());
        assert!(parse("train --rounds abc")
            .unwrap()
            .get_parsed("rounds", 0u64)
            .is_err());
        assert!(parse("train oops").is_err());
    }
}
