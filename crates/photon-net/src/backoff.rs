//! Capped exponential reconnect backoff with deterministic jitter.

use std::time::Duration;

/// Reconnect pacing for a client whose coordinator link dropped: the
/// delay doubles per consecutive failure up to a cap, with a
/// deterministic jitter (derived from the attempt counter, not a clock)
/// so simulated runs stay bit-identical while still de-synchronizing a
/// thundering herd of reconnecting clients.
#[derive(Debug, Clone)]
pub struct ReconnectBackoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
}

impl ReconnectBackoff {
    /// A policy starting at `base_ms` and never exceeding `cap_ms` per
    /// attempt (both clamped to at least 1 ms).
    pub fn new(base_ms: u64, cap_ms: u64) -> ReconnectBackoff {
        let base_ms = base_ms.max(1);
        ReconnectBackoff {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            attempt: 0,
        }
    }

    /// Delay before the next connection attempt, advancing the attempt
    /// counter. The jitter subtracts up to a quarter of the nominal
    /// delay so retries spread out instead of aligning.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(16);
        self.attempt = self.attempt.saturating_add(1);
        let nominal = self
            .base_ms
            .saturating_mul(1u64 << exp)
            .min(self.cap_ms)
            .max(1);
        let jitter_span = (nominal / 4).max(1);
        let jitter = splitmix(u64::from(self.attempt)) % jitter_span;
        Duration::from_millis(nominal - jitter)
    }

    /// Attempts made since the last [`ReconnectBackoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets after a successful connection: the next failure starts
    /// again from the base delay.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// SplitMix64 finalizer — the same cheap avalanche the session tokens
/// use; good enough to decorrelate consecutive attempt counters.
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let mut b = ReconnectBackoff::new(100, 1_000);
        let delays: Vec<u64> = (0..8).map(|_| b.next_delay().as_millis() as u64).collect();
        // Nominal sequence 100, 200, 400, 800, 1000, 1000... with up to
        // 25% shaved off by jitter.
        for (i, &d) in delays.iter().enumerate() {
            let nominal = (100u64 << i).min(1_000);
            assert!(d <= nominal, "attempt {i}: {d} > {nominal}");
            assert!(d > nominal - nominal / 4 - 1, "attempt {i}: {d} too small");
        }
        assert!(delays[4] >= 751 && delays[4] <= 1_000);
    }

    #[test]
    fn reset_restarts_from_base() {
        let mut b = ReconnectBackoff::new(50, 400);
        for _ in 0..5 {
            b.next_delay();
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay().as_millis() as u64 <= 50);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = ReconnectBackoff::new(100, 5_000);
        let mut b = ReconnectBackoff::new(100, 5_000);
        for _ in 0..10 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let mut b = ReconnectBackoff::new(u64::MAX / 2, u64::MAX);
        for _ in 0..80 {
            let d = b.next_delay();
            assert!(d.as_millis() > 0);
        }
    }
}
