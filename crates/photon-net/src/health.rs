//! Live coordinator health registry and the minimal HTTP/1.0 endpoint
//! that serves it.
//!
//! The coordinator tracks per-client SLO statistics — round
//! participation, result latency (p50/p99), heartbeat misses, reconnects
//! and straggler rounds — in a [`HealthRegistry`] shared with the serve
//! loop, and [`spawn_health_server`] exposes them over plain HTTP GET:
//!
//! * `GET /metrics` — Prometheus text exposition: the full recorder
//!   state (counters, gauges, histograms, per-phase self time — including
//!   the hierarchy/shard gauges the aggregation layer publishes) plus the
//!   per-client `photon_client_*` families. Lint-clean per
//!   [`photon_trace::lint_prometheus`].
//! * `GET /health` — a JSON snapshot of the same per-client stats plus
//!   the coordinator round/state, for programmatic probes.
//!
//! Scrape-by-endpooint replaces scrape-by-file: the registry renders on
//! demand, mid-round, with no flush requirement. The handler speaks just
//! enough HTTP/1.0 (request line + `Connection: close`) for `curl` and
//! Prometheus scrapers on the existing TCP stack.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use photon_trace::LogHistogram;

/// Per-client SLO statistics tracked by the coordinator.
#[derive(Debug, Default, Clone)]
pub struct ClientSlo {
    /// Rounds this client was included in a broadcast cohort.
    pub rounds_participated: u64,
    /// Results received (including redelivered duplicates).
    pub results: u64,
    /// Result latency samples in milliseconds (broadcast to result).
    pub latency_ms: LogHistogram,
    /// Heartbeat strikes observed (each one is a missed liveness window).
    pub heartbeat_misses: u64,
    /// Session resumes after a disconnect.
    pub reconnects: u64,
    /// Rounds where this client's result arrived after the deadline (or
    /// never) while the round still committed.
    pub straggler_rounds: u64,
    /// Whether a live connection is currently registered.
    pub connected: bool,
    /// Last round with any activity from this client.
    pub last_round: u64,
}

#[derive(Debug, Default)]
struct HealthInner {
    clients: BTreeMap<u32, ClientSlo>,
    round: u64,
    state: u8,
    rounds_committed: u64,
}

/// Shared registry of live coordinator health (cheaply cloneable handle).
#[derive(Debug, Clone, Default)]
pub struct HealthRegistry {
    inner: Arc<Mutex<HealthInner>>,
}

impl HealthRegistry {
    /// An empty registry.
    pub fn new() -> HealthRegistry {
        HealthRegistry::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut HealthInner) -> R) -> R {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut inner)
    }

    /// Records that `client` was included in the broadcast cohort of
    /// `round`.
    pub fn note_participation(&self, client: u32, round: u64) {
        self.with(|h| {
            let slo = h.clients.entry(client).or_default();
            slo.rounds_participated += 1;
            slo.last_round = round;
        });
    }

    /// Records a received result and its broadcast-to-result latency.
    pub fn note_result(&self, client: u32, round: u64, latency_ms: u64) {
        self.with(|h| {
            let slo = h.clients.entry(client).or_default();
            slo.results += 1;
            slo.latency_ms.record(latency_ms);
            slo.last_round = slo.last_round.max(round);
        });
    }

    /// Records a heartbeat strike (one missed liveness window).
    pub fn note_heartbeat_miss(&self, client: u32) {
        self.with(|h| h.clients.entry(client).or_default().heartbeat_misses += 1);
    }

    /// Records a session resume after a disconnect.
    pub fn note_reconnect(&self, client: u32) {
        self.with(|h| h.clients.entry(client).or_default().reconnects += 1);
    }

    /// Records a round that closed without (or past) this client's result.
    pub fn note_straggler(&self, client: u32) {
        self.with(|h| h.clients.entry(client).or_default().straggler_rounds += 1);
    }

    /// Updates a client's live-connection status.
    pub fn set_connected(&self, client: u32, connected: bool) {
        self.with(|h| h.clients.entry(client).or_default().connected = connected);
    }

    /// Publishes the coordinator's current round, state discriminant and
    /// committed-round count.
    pub fn set_coordinator(&self, round: u64, state: u8, rounds_committed: u64) {
        self.with(|h| {
            h.round = round;
            h.state = state;
            h.rounds_committed = rounds_committed;
        });
    }

    /// Renders the full Prometheus exposition: recorder state first, then
    /// the per-client families. Lint-clean per
    /// [`photon_trace::lint_prometheus`].
    pub fn render_prometheus(&self) -> String {
        let summary = photon_trace::drain_now();
        let mut out = photon_trace::render_prometheus(
            &summary.counters,
            &summary.gauges,
            &summary.hists,
            &summary.profile,
        );
        self.with(|h| {
            out.push_str("# HELP photon_coord_round Current coordinator round.\n");
            out.push_str("# TYPE photon_coord_round gauge\n");
            out.push_str(&format!("photon_coord_round {}\n", h.round));
            out.push_str("# HELP photon_coord_state Coordinator state machine discriminant.\n");
            out.push_str("# TYPE photon_coord_state gauge\n");
            out.push_str(&format!("photon_coord_state {}\n", h.state));
            out.push_str("# HELP photon_coord_rounds_committed_total Rounds committed so far.\n");
            out.push_str("# TYPE photon_coord_rounds_committed_total counter\n");
            out.push_str(&format!(
                "photon_coord_rounds_committed_total {}\n",
                h.rounds_committed
            ));
            if h.clients.is_empty() {
                return;
            }
            type Family = (&'static str, &'static str, &'static str, fn(&ClientSlo) -> u64);
            let families: [Family; 6] = [
                (
                    "photon_client_rounds_total",
                    "counter",
                    "Rounds the client was broadcast to.",
                    |s| s.rounds_participated,
                ),
                (
                    "photon_client_results_total",
                    "counter",
                    "Results received from the client.",
                    |s| s.results,
                ),
                (
                    "photon_client_heartbeat_misses_total",
                    "counter",
                    "Heartbeat strikes observed for the client.",
                    |s| s.heartbeat_misses,
                ),
                (
                    "photon_client_reconnects_total",
                    "counter",
                    "Session resumes after a disconnect.",
                    |s| s.reconnects,
                ),
                (
                    "photon_client_straggler_rounds_total",
                    "counter",
                    "Rounds closed without or past the client's result.",
                    |s| s.straggler_rounds,
                ),
                (
                    "photon_client_connected",
                    "gauge",
                    "1 when a live connection is registered.",
                    |s| u64::from(s.connected),
                ),
            ];
            for (name, kind, help, get) in families {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
                for (id, slo) in &h.clients {
                    out.push_str(&format!("{name}{{client=\"{id}\"}} {}\n", get(slo)));
                }
            }
            out.push_str(
                "# HELP photon_client_result_latency_ms Broadcast-to-result latency quantiles.\n\
                 # TYPE photon_client_result_latency_ms gauge\n",
            );
            for (id, slo) in &h.clients {
                if slo.latency_ms.is_empty() {
                    continue;
                }
                for (label, q) in [("0.5", 0.5), ("0.99", 0.99)] {
                    let v = slo.latency_ms.quantile(q);
                    out.push_str(&format!(
                        "photon_client_result_latency_ms{{client=\"{id}\",quantile=\"{label}\"}} {v}\n"
                    ));
                }
            }
        });
        out
    }

    /// Renders the JSON health snapshot served at `/health`.
    pub fn render_json(&self) -> String {
        self.with(|h| {
            let mut out = String::from("{\n");
            out.push_str(&format!("  \"round\": {},\n", h.round));
            out.push_str(&format!("  \"state\": {},\n", h.state));
            out.push_str(&format!(
                "  \"rounds_committed\": {},\n",
                h.rounds_committed
            ));
            out.push_str("  \"clients\": {\n");
            let n = h.clients.len();
            for (i, (id, slo)) in h.clients.iter().enumerate() {
                let (p50, p99) = if slo.latency_ms.is_empty() {
                    ("null".to_string(), "null".to_string())
                } else {
                    (
                        slo.latency_ms.quantile(0.5).to_string(),
                        slo.latency_ms.quantile(0.99).to_string(),
                    )
                };
                out.push_str(&format!(
                    "    \"{id}\": {{\"rounds\": {}, \"results\": {}, \
                     \"latency_ms_p50\": {p50}, \"latency_ms_p99\": {p99}, \
                     \"heartbeat_misses\": {}, \"reconnects\": {}, \
                     \"straggler_rounds\": {}, \"connected\": {}, \"last_round\": {}}}{}\n",
                    slo.rounds_participated,
                    slo.results,
                    slo.heartbeat_misses,
                    slo.reconnects,
                    slo.straggler_rounds,
                    slo.connected,
                    slo.last_round,
                    if i + 1 < n { "," } else { "" },
                ));
            }
            out.push_str("  }\n}\n");
            out
        })
    }
}

/// Handle to a running health endpoint; dropping it (or calling
/// [`HealthServer::shutdown`]) stops the accept loop.
pub struct HealthServer {
    stop: Arc<AtomicBool>,
    /// Port the endpoint actually bound (useful with port 0).
    pub port: u16,
}

impl HealthServer {
    /// Signals the accept loop to exit (it notices within its poll tick).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for HealthServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `127.0.0.1:port` and serves `GET /metrics` and `GET /health`
/// from a background thread until the returned handle is dropped.
///
/// # Errors
/// Propagates the bind failure.
pub fn spawn_health_server(port: u16, registry: HealthRegistry) -> std::io::Result<HealthServer> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let port = listener.local_addr()?.port();
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    std::thread::Builder::new()
        .name("photon-health".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = serve_one(stream, &registry);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })
        .map(|_| ())
        .unwrap_or(());
    Ok(HealthServer { stop, port })
}

fn serve_one(mut stream: TcpStream, registry: &HealthRegistry) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read up to the end of the request line; ignore headers (HTTP/1.0
    // GETs carry no body).
    let mut buf = [0u8; 1024];
    let mut req = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(2).any(|w| w == b"\r\n") || req.len() >= buf.len() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let line = String::from_utf8_lossy(&req);
    let path = line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            registry.render_prometheus(),
        ),
        "/health" => ("200 OK", "application/json", registry.render_json()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_registry() -> HealthRegistry {
        let reg = HealthRegistry::new();
        reg.set_coordinator(3, 2, 2);
        for c in 0..3u32 {
            reg.set_connected(c, true);
            for r in 0..3u64 {
                reg.note_participation(c, r);
                reg.note_result(c, r, 40 + u64::from(c) * 10 + r);
            }
        }
        reg.note_heartbeat_miss(1);
        reg.note_reconnect(1);
        reg.note_straggler(2);
        reg.set_connected(2, false);
        reg
    }

    #[test]
    fn prometheus_output_is_lint_clean() {
        let reg = seeded_registry();
        let text = reg.render_prometheus();
        photon_trace::lint_prometheus(&text).expect("lint");
        assert!(text.contains("photon_client_rounds_total{client=\"0\"} 3"));
        assert!(text.contains("photon_client_reconnects_total{client=\"1\"} 1"));
        assert!(text.contains("photon_client_straggler_rounds_total{client=\"2\"} 1"));
        assert!(text.contains("photon_client_connected{client=\"2\"} 0"));
        assert!(text.contains("photon_client_result_latency_ms{client=\"0\",quantile=\"0.5\"}"));
        assert!(text.contains("photon_coord_round 3"));
    }

    #[test]
    fn json_snapshot_has_every_client() {
        let reg = seeded_registry();
        let json = reg.render_json();
        for c in 0..3 {
            assert!(
                json.contains(&format!("\"{c}\": {{\"rounds\": 3")),
                "{json}"
            );
        }
        assert!(json.contains("\"round\": 3"));
        // Shape check: braces balance.
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
    }

    #[test]
    fn http_endpoint_serves_metrics_health_and_404() {
        let reg = seeded_registry();
        let server = spawn_health_server(0, reg).expect("bind");
        let get = |path: &str| -> String {
            let mut s = TcpStream::connect(("127.0.0.1", server.port)).expect("connect");
            s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
                .expect("request");
            let mut out = String::new();
            s.read_to_string(&mut out).expect("response");
            out
        };
        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK\r\n"), "{metrics}");
        let body = metrics.split("\r\n\r\n").nth(1).expect("body");
        photon_trace::lint_prometheus(body).expect("lint over http");
        let health = get("/health");
        assert!(health.contains("\"rounds_committed\": 2"));
        assert!(get("/nope").starts_with("HTTP/1.0 404"));
        server.shutdown();
    }
}
