//! The socket-backed [`Link`]: framed messages over TCP.

use crate::frame_io::{read_frame, write_frame};
use bytes::Bytes;
use photon_comms::{Link, LinkError};
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A [`Link`] over one TCP connection.
///
/// Send and receive sides hold independently-locked clones of the
/// stream, so a reader thread blocked in [`Link::recv_frame`] never
/// stalls a writer thread in [`Link::send_frame`] — the same discipline
/// the in-process `ChannelLink` gets from its two queues. Any hard
/// send/receive failure latches the link disconnected; a latched link
/// stays dead until the owner reconnects and builds a new one.
pub struct TcpLink {
    reader: Mutex<TcpStream>,
    writer: Mutex<BufWriter<TcpStream>>,
    ctl: TcpStream,
    peer: SocketAddr,
    connected: AtomicBool,
}

impl TcpLink {
    /// Wraps an accepted or connected stream. Disables Nagle so small
    /// control-plane frames (heartbeats, acks) are not batched behind
    /// model broadcasts.
    ///
    /// # Errors
    /// Propagates stream clone / peer-address failures.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<TcpLink> {
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr()?;
        let reader = stream.try_clone()?;
        let ctl = stream.try_clone()?;
        Ok(TcpLink {
            reader: Mutex::new(reader),
            writer: Mutex::new(BufWriter::new(stream)),
            ctl,
            peer,
            connected: AtomicBool::new(true),
        })
    }

    /// Connects to `addr` and wraps the stream.
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> std::io::Result<TcpLink> {
        TcpLink::from_stream(TcpStream::connect(addr)?)
    }

    /// The peer's socket address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Severs the connection: both directions are shut down and the link
    /// latches disconnected. Used for teardown and to inject
    /// `netcrash` process faults at the transport layer.
    pub fn sever(&self) {
        self.connected.store(false, Ordering::SeqCst);
        self.ctl.shutdown(Shutdown::Both).ok();
    }

    fn latch_dead(&self) {
        self.connected.store(false, Ordering::SeqCst);
    }
}

impl Drop for TcpLink {
    fn drop(&mut self) {
        self.sever();
    }
}

impl Link for TcpLink {
    fn send_frame(&self, frame: Bytes) -> Result<(), LinkError> {
        if !self.is_connected() {
            return Err(LinkError::Closed);
        }
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let res = write_frame(&mut *writer, &frame);
        if matches!(res, Err(LinkError::Closed) | Err(LinkError::Io(_))) {
            self.latch_dead();
        }
        res
    }

    fn recv_frame(&self, timeout: Duration) -> Result<Bytes, LinkError> {
        if !self.is_connected() {
            return Err(LinkError::Closed);
        }
        let mut reader = self.reader.lock().unwrap_or_else(|e| e.into_inner());
        // A zero timeout would mean "no timeout" to the socket API;
        // clamp to the smallest real poll interval instead.
        let timeout = timeout.max(Duration::from_millis(1));
        reader.set_read_timeout(Some(timeout)).map_err(|e| {
            self.latch_dead();
            LinkError::Io(e)
        })?;
        let res = read_frame(&mut *reader);
        match &res {
            Err(LinkError::Closed) | Err(LinkError::Io(_)) => self.latch_dead(),
            _ => {}
        }
        res
    }

    fn is_connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_comms::{Message, WireOpts};
    use std::net::TcpListener;

    fn opts() -> WireOpts {
        WireOpts {
            compress: false,
            dtype: Default::default(),
        }
    }

    fn loopback_pair() -> (TcpLink, TcpLink) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server_stream, _) = listener.accept().unwrap();
        let server = TcpLink::from_stream(server_stream).unwrap();
        let client = TcpLink::from_stream(client.join().unwrap()).unwrap();
        (server, client)
    }

    #[test]
    fn messages_roundtrip_over_loopback() {
        let (server, client) = loopback_pair();
        let msg = Message::ModelBroadcast {
            round: 7,
            params: vec![1.0, -2.5, 3.25],
        };
        client.send_message(&msg, opts()).unwrap();
        let got = server.recv_message(Duration::from_secs(2)).unwrap();
        assert_eq!(got, msg);
        // And the other direction.
        server.send_message(&Message::Shutdown, opts()).unwrap();
        assert_eq!(
            client.recv_message(Duration::from_secs(2)).unwrap(),
            Message::Shutdown
        );
    }

    #[test]
    fn recv_times_out_on_a_quiet_link() {
        let (server, _client) = loopback_pair();
        let err = server.recv_frame(Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, LinkError::TimedOut));
        assert!(server.is_connected(), "timeout must not kill the link");
    }

    #[test]
    fn peer_hangup_surfaces_as_closed_and_latches() {
        let (server, client) = loopback_pair();
        drop(client);
        let err = server.recv_frame(Duration::from_secs(2)).unwrap_err();
        assert!(matches!(err, LinkError::Closed | LinkError::Io(_)));
        assert!(!server.is_connected());
        assert!(matches!(
            server.send_frame(Bytes::from(&b"x"[..])).unwrap_err(),
            LinkError::Closed
        ));
    }

    #[test]
    fn sever_models_a_netcrash() {
        let (server, client) = loopback_pair();
        client.sever();
        assert!(!client.is_connected());
        let err = server.recv_frame(Duration::from_secs(2)).unwrap_err();
        assert!(matches!(err, LinkError::Closed | LinkError::Io(_)));
    }

    #[test]
    fn concurrent_send_and_recv_do_not_deadlock() {
        let (server, client) = loopback_pair();
        let server = std::sync::Arc::new(server);
        let client = std::sync::Arc::new(client);
        let s2 = std::sync::Arc::clone(&server);
        // Server echoes 50 heartbeats while the client pumps them.
        let echo = std::thread::spawn(move || {
            for _ in 0..50 {
                let msg = s2.recv_message(Duration::from_secs(5)).unwrap();
                s2.send_message(&msg, opts()).unwrap();
            }
        });
        for seq in 0..50u64 {
            client
                .send_message(&Message::Heartbeat { client_id: 1, seq }, opts())
                .unwrap();
            let back = client.recv_message(Duration::from_secs(5)).unwrap();
            assert_eq!(back, Message::Heartbeat { client_id: 1, seq });
        }
        echo.join().unwrap();
    }
}
