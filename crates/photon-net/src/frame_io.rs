//! Blocking frame I/O over `std::io` streams.
//!
//! Reads and writes the exact photon-comms wire frames — the
//! magic/version/flags/CRC32/length header plus payload — so a frame
//! read here decodes with [`photon_comms::Message::from_frame`]
//! unchanged. The declared length is validated against
//! [`photon_comms::MAX_FRAME_BYTES`] *before* the payload buffer is
//! allocated, so a hostile length field can never drive allocation.

use bytes::Bytes;
use photon_comms::{FrameHeader, LinkError, FRAME_HEADER_LEN, MAX_FRAME_BYTES};
use std::io::{ErrorKind, Read, Write};

/// How many consecutive read timeouts mid-frame are tolerated before the
/// stream is declared stalled. A peer that sent a header but then goes
/// quiet holds the reader for at most this many timeout periods.
const MID_FRAME_PATIENCE: u32 = 50;

/// Fills `buf` from `r`, retrying `Interrupted` forever and timeouts up
/// to a patience budget. `mid_frame` distinguishes "no frame started"
/// (first timeout surfaces immediately as [`LinkError::TimedOut`], the
/// normal poll-loop case) from "frame in flight" (timeouts are retried —
/// abandoning a half-read frame would desynchronize the stream).
fn read_full<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut [u8],
    mid_frame: bool,
) -> Result<(), LinkError> {
    let mut got = 0usize;
    let mut stalls = 0u32;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Err(LinkError::Closed),
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !mid_frame && got == 0 {
                    return Err(LinkError::TimedOut);
                }
                stalls += 1;
                if stalls > MID_FRAME_PATIENCE {
                    return Err(LinkError::TimedOut);
                }
            }
            Err(e) => return Err(LinkError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one complete wire frame.
///
/// The header is parsed (magic, version, length cap) before the payload
/// buffer is sized, and the payload CRC is verified before the frame is
/// returned — a corrupt frame surfaces as [`LinkError::Wire`] without
/// ever reaching message decoding.
///
/// # Errors
/// [`LinkError::TimedOut`] when no frame starts within the stream's read
/// timeout (or a started frame stalls past the patience budget),
/// [`LinkError::Closed`] on EOF, [`LinkError::Wire`] on integrity
/// failure, [`LinkError::Io`] on any other socket error.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<Bytes, LinkError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_full(r, &mut header, false)?;
    let parsed = FrameHeader::parse(&header, MAX_FRAME_BYTES)?;
    let payload_len = parsed.len as usize;
    let mut frame = vec![0u8; FRAME_HEADER_LEN + payload_len];
    frame[..FRAME_HEADER_LEN].copy_from_slice(&header);
    read_full(r, &mut frame[FRAME_HEADER_LEN..], true)?;
    parsed.check_payload(&frame[FRAME_HEADER_LEN..])?;
    Ok(Bytes::from(frame))
}

/// Writes one complete wire frame and flushes.
///
/// # Errors
/// [`LinkError::Closed`] when the peer hung up mid-write,
/// [`LinkError::Io`] on any other socket error.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, frame: &[u8]) -> Result<(), LinkError> {
    let map = |e: std::io::Error| match e.kind() {
        ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => {
            LinkError::Closed
        }
        _ => LinkError::Io(e),
    };
    w.write_all(frame).map_err(map)?;
    w.flush().map_err(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_comms::Message;
    use std::io::Cursor;

    fn sample_frame() -> Bytes {
        Message::Heartbeat {
            client_id: 3,
            seq: 9,
        }
        .to_frame(false)
    }

    #[test]
    fn roundtrip_through_a_buffer() {
        let frame = sample_frame();
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut cursor = Cursor::new(buf);
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(&back[..], &frame[..]);
        assert_eq!(
            Message::from_frame(back).unwrap(),
            Message::Heartbeat {
                client_id: 3,
                seq: 9
            }
        );
    }

    #[test]
    fn eof_is_closed_not_panic() {
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(LinkError::Closed)));
        let frame = sample_frame();
        // Truncated mid-header and mid-payload both surface as Closed.
        for cut in [4, FRAME_HEADER_LEN + 2] {
            let mut short = Cursor::new(frame[..cut].to_vec());
            assert!(matches!(read_frame(&mut short), Err(LinkError::Closed)));
        }
    }

    #[test]
    fn corrupt_payload_is_a_wire_error() {
        let frame = sample_frame();
        let mut bytes = frame.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor), Err(LinkError::Wire(_))));
    }

    #[test]
    fn hostile_length_rejected_before_allocation() {
        let frame = sample_frame();
        let mut bytes = frame.to_vec();
        // Overwrite the length field (bytes 16..24) with an absurd value.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor) {
            Err(LinkError::Wire(photon_comms::WireError::FrameTooLarge { declared, .. })) => {
                assert_eq!(declared, u64::MAX);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    /// A reader that yields `WouldBlock` between every real byte,
    /// emulating a socket read timeout firing mid-frame.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        block_next: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "timeout"));
            }
            self.block_next = true;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn mid_frame_timeouts_are_retried() {
        let frame = sample_frame();
        let mut trickle = Trickle {
            data: frame.to_vec(),
            pos: 0,
            block_next: true,
        };
        // The very first WouldBlock (no frame started) is a TimedOut.
        assert!(matches!(read_frame(&mut trickle), Err(LinkError::TimedOut)));
        // Retrying resumes the poll loop and the frame assembles despite
        // a timeout between every byte.
        let back = read_frame(&mut trickle).unwrap();
        assert_eq!(&back[..], &frame[..]);
    }
}
