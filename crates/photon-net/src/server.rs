//! `photon serve`: the multi-process coordinator.
//!
//! One listener thread accepts TCP connections and handshakes sessions;
//! one reader thread per connection decodes frames and forwards them to
//! the single-threaded main loop, which owns the [`Aggregator`] and the
//! [`Coordinator`] state machine. Robustness invariants:
//!
//! * **Idempotent re-delivery** — every applied result is keyed by
//!   `(round, client)`; a retried frame for an already-applied or
//!   already-committed round is acknowledged but never re-applied, so a
//!   client that re-sends after a reconnect cannot double-count.
//! * **Ack-after-commit** — `ResultAck` is sent only once the round the
//!   result contributed to has committed (and, when a checkpoint
//!   directory is configured, been checkpointed), so "acked" always
//!   implies "durable" even across a coordinator kill.
//! * **Session resumption** — a reconnecting client re-authenticates by
//!   deterministic token and rejoins its in-flight round; the cohort it
//!   was broadcast into is unchanged and the model is re-sent to it.
//! * **Crash-restart** — with `resume`, the aggregator restores from the
//!   v4 checkpoint, the state machine restarts at the checkpointed round
//!   behind the min-client gate, and every client that reconnects is
//!   re-synchronized via `RunSync`.

use crate::coordinator::{CoordState, Coordinator};
use crate::health::{spawn_health_server, HealthRegistry};
use crate::plan::RunPlan;
use crate::session::SessionTable;
use crate::tcp::TcpLink;
use crate::tracectx::{init_trace_scope, run_trace_id, send_traced};
use crate::{NetError, Result};
use photon_comms::{Link, LinkError, Message, TrainMetrics, WireOpts};
use photon_core::{
    load_checkpoint, load_server_opt_state, save_checkpoint_full, Aggregator, FaultInjector,
    RoundRecord,
};
use std::collections::{BTreeMap, BTreeSet};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Exit code the coordinator process dies with on an injected
/// `coordkill` fault — distinguishable from a real crash in the chaos
/// suite.
pub const COORDKILL_EXIT_CODE: i32 = 41;

/// Consecutive heartbeat-timeout windows before a quiet connection is
/// severed (its session survives for a later resume).
const HEARTBEAT_STRIKES: u32 = 3;

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7700`.
    pub addr: String,
    /// The run plan broadcast to every admitted client.
    pub plan: RunPlan,
    /// Connections required before the first (or a resumed) round starts.
    pub min_clients: usize,
    /// Checkpoint directory; every committed round is checkpointed here
    /// and `resume` restores from it.
    pub checkpoint_dir: Option<PathBuf>,
    /// Restore aggregator and state machine from `checkpoint_dir` when a
    /// checkpoint exists (coordinator crash-restart).
    pub resume: bool,
    /// Settle delay between the member gate opening and the first
    /// broadcast, in milliseconds.
    pub warmup_ms: u64,
    /// Grace window after the last commit before shutdown, in
    /// milliseconds.
    pub cooldown_ms: u64,
    /// Per-round result deadline in milliseconds; at the deadline the
    /// round commits with whatever arrived (partial-results path).
    pub round_timeout_ms: u64,
    /// A connection quiet for longer than this counts a heartbeat miss;
    /// [`HEARTBEAT_STRIKES`] consecutive misses sever it.
    pub heartbeat_timeout_ms: u64,
    /// Write a metrics JSON snapshot here after every commit and at
    /// shutdown.
    pub metrics_json: Option<PathBuf>,
    /// Crash-simulation hook: return (without broadcasting `Shutdown`)
    /// after this many commits in this process, exactly as if the
    /// coordinator died post-checkpoint. `None` runs to completion.
    pub stop_after_rounds: Option<u64>,
    /// Serve the live health endpoint (`GET /metrics` Prometheus text,
    /// `GET /health` JSON) on `127.0.0.1:<port>` for the lifetime of the
    /// run. 0 binds an ephemeral port; `None` disables the endpoint.
    pub health_port: Option<u16>,
}

/// What a completed [`serve`] run did.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Rounds committed by this process.
    pub rounds_run: u64,
    /// The aggregator's round counter at shutdown.
    pub final_round: u64,
    /// Mean client loss per committed round, in order.
    pub round_losses: Vec<f64>,
    /// The checkpointed round this process restored from, if any.
    pub resumed_from: Option<u64>,
    /// Total session resumptions granted.
    pub session_resumes: u64,
}

/// Everything the accept/reader threads share with the main loop.
struct Registry {
    conns: Mutex<BTreeMap<u32, Arc<TcpLink>>>,
    sessions: Mutex<SessionTable>,
    /// Coordinator round/state mirrored for handshake-time `RunSync`.
    round: AtomicU64,
    state: AtomicU8,
    plan_json: Vec<u8>,
    wire: WireOpts,
    events: Sender<Event>,
    health: HealthRegistry,
}

enum Event {
    Frame {
        client: u32,
        msg: Message,
        frame_len: u64,
    },
    Connected {
        client: u32,
        resumed: bool,
    },
    Disconnected {
        client: u32,
        /// The connection that died. A resumed client may already have a
        /// newer link registered under the same id; eviction must only
        /// happen when this exact link is still the registered one.
        link: Arc<TcpLink>,
    },
}

/// Per-client liveness bookkeeping owned by the main loop.
struct Liveness {
    last_seen: Instant,
    strikes: u32,
}

/// Runs the coordinator until the state machine reaches `Finished` (or a
/// `coordkill` fault terminates the process after a commit).
///
/// # Errors
/// Configuration rejections, socket failures, and aggregation errors.
pub fn serve(opts: &ServeOptions) -> Result<ServeReport> {
    let plan = &opts.plan;
    if plan.cfg.secure_agg {
        return Err(NetError::Protocol(
            "multi-process serve does not support secure aggregation".into(),
        ));
    }
    if plan.cfg.membership.is_some() || plan.cfg.buffer.is_some() {
        return Err(NetError::Protocol(
            "multi-process serve manages membership itself; disable membership/buffer".into(),
        ));
    }

    if photon_trace::enabled() {
        // Actor 0 is the coordinator lane; the trace id is a pure
        // function of the seed, so clients derive the same one.
        init_trace_scope(run_trace_id(plan.cfg.seed), 0);
    }

    let mut agg = Aggregator::new(plan.cfg.clone())?;
    let mut resumed_from = None;
    if opts.resume {
        if let Some(dir) = &opts.checkpoint_dir {
            if let Ok((manifest, params)) = load_checkpoint(dir) {
                let opt_state = load_server_opt_state(dir)?;
                agg.restore_with_opt(manifest.round, params, opt_state.as_ref())?;
                agg.telemetry().record_coordinator_restart();
                photon_trace::instant(
                    photon_trace::Phase::CoordRestart,
                    "coord_restart",
                    &[("round", manifest.round)],
                );
                resumed_from = Some(manifest.round);
            }
        }
    }

    let injector = plan
        .faults
        .as_ref()
        .map(|spec| FaultInjector::from_spec(spec, plan.cfg.population, plan.rounds));

    let started = Instant::now();
    let now_ms = || started.elapsed().as_millis() as u64;
    let mut coord = Coordinator::new(
        opts.min_clients,
        plan.rounds,
        opts.warmup_ms,
        opts.cooldown_ms,
    );
    if let Some(round) = resumed_from {
        coord.restore(round, now_ms());
    }

    let (events_tx, events_rx) = channel();
    let registry = Arc::new(Registry {
        conns: Mutex::new(BTreeMap::new()),
        sessions: Mutex::new(if resumed_from.is_some() {
            SessionTable::new_restarted(plan.cfg.seed, plan.cfg.population as u32)
        } else {
            SessionTable::new(plan.cfg.seed, plan.cfg.population as u32)
        }),
        round: AtomicU64::new(agg.round()),
        state: AtomicU8::new(coord.state().discriminant()),
        plan_json: plan.to_json_bytes(),
        wire: plan.cfg.wire_opts(),
        events: events_tx,
        health: HealthRegistry::new(),
    });

    let health_server = match opts.health_port {
        Some(port) => Some(spawn_health_server(port, registry.health.clone())?),
        None => None,
    };

    let listener = bind_with_retry(&opts.addr)?;
    let local_addr = listener.local_addr()?;
    let accepting = Arc::new(std::sync::atomic::AtomicBool::new(true));
    spawn_accept_loop(
        listener,
        Arc::clone(&registry),
        opts.heartbeat_timeout_ms,
        Arc::clone(&accepting),
    );

    let result = main_loop(
        opts,
        &mut agg,
        &mut coord,
        &registry,
        &events_rx,
        injector.as_ref(),
        resumed_from,
        &now_ms,
    );
    // Unblock and retire the accept thread so a restarted coordinator
    // can rebind the port.
    accepting.store(false, Ordering::SeqCst);
    let _ = std::net::TcpStream::connect(local_addr);
    if let Some(server) = health_server {
        server.shutdown();
    }
    let _ = photon_trace::flush();
    result
}

/// Binds the listen address, riding out lingering sockets from a
/// just-killed predecessor (the crash-restart path rebinds the same
/// port the dead coordinator held).
fn bind_with_retry(addr: &str) -> Result<TcpListener> {
    let mut last = None;
    for _ in 0..25 {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Err(NetError::Io(last.expect("retries imply an error")))
}

/// The accept thread: handshakes each connection and spawns its reader.
fn spawn_accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    hb_timeout_ms: u64,
    accepting: Arc<std::sync::atomic::AtomicBool>,
) {
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if !accepting.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { break };
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                if let Ok(link) = TcpLink::from_stream(stream) {
                    handshake(Arc::new(link), &registry, hb_timeout_ms);
                }
            });
        }
    });
}

/// Admits (or resumes) one connection, installs it in the registry, and
/// spawns the per-connection reader thread.
fn handshake(link: Arc<TcpLink>, registry: &Registry, hb_timeout_ms: u64) {
    let hello = match link.recv_message(Duration::from_secs(5)) {
        Ok(Message::SessionHello {
            client_id, token, ..
        }) => (client_id, token),
        _ => return, // not a client of ours; drop the connection
    };
    let admission = match registry.sessions.lock().unwrap().admit(hello.0, hello.1) {
        Ok(admission) => admission,
        Err(_) => return, // bad token or full: refuse silently
    };
    let round = registry.round.load(Ordering::SeqCst);
    let state = registry.state.load(Ordering::SeqCst);
    let grant = Message::SessionGrant {
        client_id: admission.client_id,
        token: admission.token,
        round,
        resumed: admission.resumed,
    };
    let sync = Message::RunSync {
        round,
        state,
        config_json: registry.plan_json.clone(),
    };
    // The grant's trace context doubles as the clock-offset probe: the
    // client halves the hello->grant round trip against our send
    // timestamp to estimate its offset from the coordinator clock.
    if send_traced(link.as_ref(), &grant, registry.wire).is_err()
        || send_traced(link.as_ref(), &sync, registry.wire).is_err()
    {
        return;
    }
    let client = admission.client_id;
    {
        let mut conns = registry.conns.lock().unwrap();
        if let Some(old) = conns.insert(client, Arc::clone(&link)) {
            old.sever(); // a newer connection supersedes the old one
        }
    }
    let _ = registry.events.send(Event::Connected {
        client,
        resumed: admission.resumed,
    });
    spawn_reader(link, client, registry.events.clone(), hb_timeout_ms);
}

/// Per-connection reader: forwards decoded frames to the main loop until
/// the link dies.
fn spawn_reader(link: Arc<TcpLink>, client: u32, events: Sender<Event>, hb_timeout_ms: u64) {
    std::thread::spawn(move || {
        photon_trace::set_actor(0);
        let poll = Duration::from_millis(hb_timeout_ms.max(10));
        loop {
            match link.recv_frame(poll) {
                Ok(frame) => {
                    let frame_len = frame.len() as u64;
                    match Message::from_frame_traced(frame) {
                        Ok((msg, ctx)) => {
                            if let Some(ctx) = ctx {
                                crate::tracectx::note_recv(&ctx, frame_len);
                            }
                            if events
                                .send(Event::Frame {
                                    client,
                                    msg,
                                    frame_len,
                                })
                                .is_err()
                            {
                                return;
                            }
                        }
                        Err(_) => break, // undecodable frame: sever
                    }
                }
                Err(LinkError::TimedOut) => {
                    if !link.is_connected() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        link.sever();
        let _ = events.send(Event::Disconnected { client, link });
    });
}

/// State of the round in flight.
struct InFlight {
    cohort: Vec<u32>,
    pending: Vec<(u32, Vec<f32>, f64, TrainMetrics)>,
    wire_bytes: u64,
    deadline: Instant,
    /// When the round was broadcast — client result latency is measured
    /// from here, so it includes the model download and the local step.
    opened: Instant,
}

#[allow(clippy::too_many_arguments)]
fn main_loop(
    opts: &ServeOptions,
    agg: &mut Aggregator,
    coord: &mut Coordinator,
    registry: &Registry,
    events: &Receiver<Event>,
    injector: Option<&FaultInjector>,
    resumed_from: Option<u64>,
    now_ms: &dyn Fn() -> u64,
) -> Result<ServeReport> {
    let wire = registry.wire;
    let hb_timeout = Duration::from_millis(opts.heartbeat_timeout_ms.max(1));
    let round_timeout = Duration::from_millis(opts.round_timeout_ms.max(1));
    // (round, client) keys of every applied result: the idempotency set
    // that makes re-delivery safe.
    let mut applied: BTreeSet<(u64, u32)> = BTreeSet::new();
    let mut liveness: BTreeMap<u32, Liveness> = BTreeMap::new();
    let mut in_flight: Option<InFlight> = None;
    let mut round_losses = Vec::new();
    let mut graceful = true;

    loop {
        let connected = registry.conns.lock().unwrap().len();
        if let Some((from, to)) = coord.tick(connected, now_ms()) {
            registry
                .state
                .store(coord.state().discriminant(), Ordering::SeqCst);
            registry.health.set_coordinator(
                coord.round(),
                coord.state().discriminant(),
                coord.committed(),
            );
            photon_trace::instant(
                photon_trace::Phase::Round,
                "coord_transition",
                &[
                    ("from", u64::from(from.discriminant())),
                    ("to", u64::from(to.discriminant())),
                ],
            );
            match to {
                CoordState::RoundStart => {
                    in_flight = Some(open_round(agg, registry, round_timeout));
                }
                CoordState::Finished => break,
                _ => {}
            }
        }

        match events.recv_timeout(Duration::from_millis(20)) {
            Ok(Event::Frame {
                client,
                msg,
                frame_len,
            }) => {
                if let Some(live) = liveness.get_mut(&client) {
                    live.last_seen = Instant::now();
                    live.strikes = 0;
                } else {
                    liveness.insert(
                        client,
                        Liveness {
                            last_seen: Instant::now(),
                            strikes: 0,
                        },
                    );
                }
                if let Message::ClientResult {
                    round,
                    client_id,
                    delta,
                    weight,
                    metrics,
                } = msg
                {
                    handle_result(
                        coord,
                        registry,
                        &mut applied,
                        in_flight.as_mut(),
                        client,
                        (round, client_id, delta, weight, metrics),
                        frame_len,
                        wire,
                    );
                }
            }
            Ok(Event::Connected { client, resumed }) => {
                liveness.insert(
                    client,
                    Liveness {
                        last_seen: Instant::now(),
                        strikes: 0,
                    },
                );
                registry.health.set_connected(client, true);
                if resumed {
                    registry.health.note_reconnect(client);
                    agg.telemetry().record_reconnect(client, true);
                    photon_trace::instant(
                        photon_trace::Phase::SessionResume,
                        "session_resume",
                        &[("client", u64::from(client))],
                    );
                    // Rejoin the in-flight round: re-send the model if
                    // this client's result is still outstanding.
                    if let Some(fl) = &in_flight {
                        let outstanding = fl.cohort.contains(&client)
                            && !applied.contains(&(coord.round(), client));
                        if outstanding {
                            send_to(registry, client, &broadcast_msg(agg), wire);
                        }
                    }
                }
            }
            Ok(Event::Disconnected { client, link }) => {
                // A stale goodbye from a superseded connection must not
                // evict the resumed one that replaced it.
                let mut conns = registry.conns.lock().unwrap();
                let current = conns
                    .get(&client)
                    .is_some_and(|cur| Arc::ptr_eq(cur, &link));
                if current {
                    conns.remove(&client);
                    drop(conns);
                    liveness.remove(&client);
                    registry.health.set_connected(client, false);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(NetError::Protocol("event channel closed".into()))
            }
        }

        // Heartbeat-miss accounting: one strike per quiet timeout window;
        // enough strikes sever the connection (the session survives).
        let mut to_sever = Vec::new();
        for (client, live) in liveness.iter_mut() {
            if live.last_seen.elapsed() >= hb_timeout {
                live.last_seen = Instant::now();
                live.strikes += 1;
                agg.telemetry().record_heartbeat_misses(1);
                registry.health.note_heartbeat_miss(*client);
                if live.strikes >= HEARTBEAT_STRIKES {
                    to_sever.push(*client);
                }
            }
        }
        for client in to_sever {
            if let Some(link) = registry.conns.lock().unwrap().get(&client) {
                link.sever();
            }
        }

        // Commit check for the round in flight.
        let should_commit = in_flight.as_ref().is_some_and(|fl| {
            fl.pending.len() >= fl.cohort.len()
                || (Instant::now() >= fl.deadline && !fl.pending.is_empty())
        });
        let stalled = in_flight
            .as_ref()
            .is_some_and(|fl| Instant::now() >= fl.deadline && fl.pending.is_empty());
        if should_commit {
            let fl = in_flight.take().expect("checked above");
            let record = commit_round(opts, agg, coord, registry, fl, now_ms(), resumed_from)?;
            round_losses.push(f64::from(record.mean_client_loss));
            let committed_round = coord.round().saturating_sub(1);
            if injector.is_some_and(|i| i.coordkill_after(committed_round)) {
                // The injected coordinator kill: the checkpoint for this
                // commit is already on disk; die without any goodbye. The
                // flight recorder preserves the final round's spans.
                write_metrics(opts, agg, coord, registry, resumed_from);
                let _ = photon_trace::flush();
                let _ = photon_trace::flight_dump();
                std::process::exit(COORDKILL_EXIT_CODE);
            }
            if opts
                .stop_after_rounds
                .is_some_and(|n| coord.committed() >= n)
            {
                // In-process crash simulation: stop cold, no Shutdown.
                graceful = false;
                break;
            }
        } else if stalled {
            // Deadline passed with nothing collected (every cohort member
            // is mid-reconnect): re-broadcast and rearm rather than
            // committing an empty round.
            if let Some(fl) = in_flight.as_mut() {
                fl.deadline = Instant::now() + round_timeout;
                let msg = broadcast_msg(agg);
                for &client in fl.cohort.clone().iter() {
                    if !applied.contains(&(coord.round(), client)) {
                        send_to(registry, client, &msg, wire);
                    }
                }
            }
        }
    }

    // Finished: tell everyone to shut down and snapshot metrics. A
    // simulated crash skips the goodbye and slams every socket shut,
    // exactly like a real kill.
    let conns: Vec<Arc<TcpLink>> = registry.conns.lock().unwrap().values().cloned().collect();
    for link in conns {
        if graceful {
            let _ = send_traced(link.as_ref(), &Message::Shutdown, wire);
        } else {
            link.sever();
        }
    }
    write_metrics(opts, agg, coord, registry, resumed_from);
    Ok(ServeReport {
        rounds_run: coord.committed(),
        final_round: agg.round(),
        round_losses,
        resumed_from,
        session_resumes: registry.sessions.lock().unwrap().total_resumes(),
    })
}

/// Opens a round: fixes the cohort to the currently-connected clients
/// and broadcasts the model.
fn open_round(agg: &Aggregator, registry: &Registry, round_timeout: Duration) -> InFlight {
    registry.round.store(agg.round(), Ordering::SeqCst);
    let cohort: Vec<u32> = registry.conns.lock().unwrap().keys().copied().collect();
    let msg = broadcast_msg(agg);
    for &client in &cohort {
        registry.health.note_participation(client, agg.round());
        send_to(registry, client, &msg, registry.wire);
    }
    InFlight {
        cohort,
        pending: Vec::new(),
        wire_bytes: 0,
        deadline: Instant::now() + round_timeout,
        opened: Instant::now(),
    }
}

fn broadcast_msg(agg: &Aggregator) -> Message {
    Message::ModelBroadcast {
        round: agg.round(),
        params: agg.params().to_vec(),
    }
}

fn send_to(registry: &Registry, client: u32, msg: &Message, wire: WireOpts) {
    let link = registry.conns.lock().unwrap().get(&client).cloned();
    if let Some(link) = link {
        let _ = send_traced(link.as_ref(), msg, wire);
    }
}

/// Routes one arriving `ClientResult`: apply-once semantics with
/// immediate re-acks for anything already durable.
#[allow(clippy::too_many_arguments)]
fn handle_result(
    coord: &Coordinator,
    registry: &Registry,
    applied: &mut BTreeSet<(u64, u32)>,
    in_flight: Option<&mut InFlight>,
    conn_client: u32,
    result: (u64, u32, Vec<f32>, f64, TrainMetrics),
    frame_len: u64,
    wire: WireOpts,
) {
    let (round, client_id, delta, weight, metrics) = result;
    if client_id != conn_client {
        return; // a result claiming someone else's id is dropped
    }
    let current = coord.round();
    // Anything from an already-committed round is durable (it either
    // contributed or was superseded): re-ack so the client stops
    // re-sending, but never re-apply.
    if round < current || applied.contains(&(round, client_id)) {
        photon_trace::counter_add("transport.redelivery_acks", 1);
        send_to(
            registry,
            client_id,
            &Message::ResultAck { client_id, round },
            wire,
        );
        return;
    }
    let Some(fl) = in_flight else { return };
    if round != current || !fl.cohort.contains(&client_id) {
        return; // a future round or a non-cohort member: ignore
    }
    applied.insert((round, client_id));
    registry
        .health
        .note_result(client_id, round, fl.opened.elapsed().as_millis() as u64);
    if Instant::now() >= fl.deadline {
        registry.health.note_straggler(client_id);
    }
    fl.pending.push((client_id, delta, weight, metrics));
    fl.wire_bytes += frame_len;
}

/// Commits the collected round through the aggregator, checkpoints, and
/// acks every contributor.
#[allow(clippy::too_many_arguments)]
fn commit_round(
    opts: &ServeOptions,
    agg: &mut Aggregator,
    coord: &mut Coordinator,
    registry: &Registry,
    fl: InFlight,
    now_ms: u64,
    resumed_from: Option<u64>,
) -> Result<RoundRecord> {
    let round = coord.round();
    let contributors: Vec<u32> = fl.pending.iter().map(|(id, _, _, _)| *id).collect();
    let received = fl.pending.len() as u32;
    // A cohort member whose result never arrived is this round's straggler
    // (partial-results commit superseded it).
    for &client in &fl.cohort {
        if !contributors.contains(&client) {
            registry.health.note_straggler(client);
        }
    }
    let record = agg.commit_external_round(fl.pending, &fl.cohort, fl.wire_bytes)?;
    coord.on_round_committed(received, fl.cohort.len() as u32, 0, now_ms);
    registry.round.store(agg.round(), Ordering::SeqCst);
    registry
        .state
        .store(coord.state().discriminant(), Ordering::SeqCst);
    registry
        .health
        .set_coordinator(agg.round(), coord.state().discriminant(), coord.committed());
    if let Some(dir) = &opts.checkpoint_dir {
        save_checkpoint_full(
            dir,
            agg.config(),
            agg.round(),
            agg.params(),
            Some(&agg.server_opt_state()),
            None,
            agg.hierarchy_state().as_ref(),
        )?;
    }
    // Ack-after-commit: the results are durable now.
    {
        let mut sessions = registry.sessions.lock().unwrap();
        for &client_id in &contributors {
            sessions.note_acked(client_id, round);
        }
    }
    for client_id in contributors {
        send_to(
            registry,
            client_id,
            &Message::ResultAck { client_id, round },
            registry.wire,
        );
    }
    write_metrics(opts, agg, coord, registry, resumed_from);
    Ok(record)
}

/// Writes the metrics JSON snapshot (same transport section shape as the
/// in-process `--metrics-json`).
fn write_metrics(
    opts: &ServeOptions,
    agg: &Aggregator,
    coord: &Coordinator,
    registry: &Registry,
    resumed_from: Option<u64>,
) {
    let Some(path) = &opts.metrics_json else {
        return;
    };
    let telemetry = agg.telemetry();
    let counters = telemetry.fault_counters();
    let faults = serde_json::to_string_pretty(&counters).unwrap_or_else(|_| "{}".into());
    let reconnects_json = telemetry
        .reconnects_by_client()
        .iter()
        .map(|(id, n)| format!("\"{id}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let ring = coord
        .recent_rounds()
        .iter()
        .map(|s| {
            format!(
                "{{\"round\": {}, \"received\": {}, \"cohort\": {}, \"dup_drops\": {}}}",
                s.round, s.received, s.cohort, s.dup_drops
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n\"round\": {},\n\"state\": \"{}\",\n\"rounds_committed\": {},\n\
         \"resumed_from\": {},\n\"sessions\": {},\n\
         \"transport\": {{\"reconnects\": {}, \"heartbeat_misses\": {}, \
         \"session_resumes\": {}, \"coordinator_restarts\": {}, \
         \"reconnects_by_client\": {{{}}}}},\n\
         \"recent_rounds\": [{}],\n\"fault_counters\": {}\n}}\n",
        agg.round(),
        coord.state().name(),
        coord.committed(),
        resumed_from.map_or("null".to_string(), |r| r.to_string()),
        registry.sessions.lock().unwrap().len(),
        counters.transport_reconnects,
        counters.heartbeat_misses,
        counters.session_resumes,
        counters.coordinator_restarts,
        reconnects_json,
        ring,
        faults,
    );
    let _ = photon_trace::atomic_write(path, &json);
}
