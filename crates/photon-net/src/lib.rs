//! # photon-net
//!
//! Multi-process deployment for Photon-RS: a framed TCP transport behind
//! the [`photon_comms::Link`] abstraction, an explicit coordinator state
//! machine, and crash-tolerant session resumption — so one `photon serve`
//! aggregator and N `photon client` processes run a federated pre-training
//! run as separate OS processes that survive kills on either side.
//!
//! The crate is layered bottom-up:
//!
//! * [`frame_io`]: blocking read/write of the exact photon-comms wire
//!   frames (magic/version/flags/CRC32/length) over any `std::io` stream,
//!   with the hostile-length cap enforced *before* allocation;
//! * [`TcpLink`]: the socket-backed [`photon_comms::Link`] — the
//!   aggregator, guard, membership and checkpoint-recovery paths run
//!   unchanged on either this or the in-process `ChannelLink`;
//! * [`ReconnectBackoff`]: capped exponential backoff with deterministic
//!   jitter for client reconnect loops;
//! * [`session`]: deterministic session tokens and the coordinator-side
//!   session table — tokens are a pure function of `(run seed, client id)`
//!   so a restarted coordinator re-authenticates resuming clients without
//!   having persisted any session state;
//! * [`Coordinator`]: the explicit run state machine
//!   (`WaitingForMembers → Warmup → RoundStart → RoundEnd → Cooldown →
//!   Finished`) with min-client gating and a ring buffer of recent rounds;
//! * [`serve`] / [`run_client`]: the two process entry points, wiring
//!   heartbeats, idempotent result re-delivery, client session resumption
//!   and coordinator crash-restart from the v4 checkpoint.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod backoff;
mod client;
mod coordinator;
pub mod frame_io;
mod health;
mod plan;
mod server;
pub mod session;
mod tcp;
mod tracectx;

pub use backoff::ReconnectBackoff;
pub use client::{run_client, ClientOptions, ClientReport};
pub use coordinator::{CoordState, Coordinator, RoundSlot, ROUND_RING};
pub use health::{spawn_health_server, ClientSlo, HealthRegistry, HealthServer};
pub use plan::RunPlan;
pub use server::{serve, ServeOptions, ServeReport, COORDKILL_EXIT_CODE};
pub use session::{session_token, Admission, SessionError, SessionTable};
pub use tcp::TcpLink;
pub use tracectx::{init_trace_scope, run_trace_id};

/// Errors surfaced by the serve / client entry points.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket or filesystem failure.
    Io(std::io::Error),
    /// The transport delivered a malformed or unexpected frame.
    Protocol(String),
    /// The federation core rejected a configuration or a round.
    Core(photon_core::CoreError),
    /// A client exhausted its reconnect budget.
    Unreachable(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Core(e) => write!(f, "core error: {e}"),
            NetError::Unreachable(m) => write!(f, "peer unreachable: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<photon_core::CoreError> for NetError {
    fn from(e: photon_core::CoreError) -> NetError {
        NetError::Core(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;
