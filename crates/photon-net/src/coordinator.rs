//! The explicit coordinator state machine driving a multi-process run.
//!
//! ```text
//!                    connected >= min_clients
//! WaitingForMembers ────────────────────────► Warmup
//!        ▲                                      │ warmup_ms elapsed
//!        │ connected < min_clients              ▼
//!        └────────────────────────────────── RoundStart ◄──┐
//!                                               │          │ more rounds
//!                                 round commits │          │
//!                                               ▼          │
//!                                            RoundEnd ─────┘
//!                                               │ target reached
//!                                               ▼
//!                                            Cooldown ──► Finished
//! ```
//!
//! The machine is pure — it owns no sockets, no clock and no model — so
//! it unit-tests exhaustively and restores trivially after a coordinator
//! crash: `restore(round)` puts a fresh machine back at the checkpointed
//! round, re-gathering members before training resumes.

/// Slots kept in the recent-round ring buffer.
pub const ROUND_RING: usize = 8;

/// Coordinator run states, in lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CoordState {
    /// Gathering connections until the min-client gate opens.
    WaitingForMembers,
    /// Members gathered; a settling delay before the first broadcast so
    /// near-simultaneous joiners land in round 0's cohort.
    Warmup,
    /// A round is in flight: the model is broadcast and results are
    /// being collected.
    RoundStart,
    /// The in-flight round committed; deciding whether to run another.
    RoundEnd,
    /// All rounds committed; a grace window for final acks to drain.
    Cooldown,
    /// The run is over; clients are told to shut down.
    Finished,
}

impl CoordState {
    /// Stable wire discriminant (the `state` byte of
    /// [`photon_comms::Message::RunSync`]).
    pub fn discriminant(self) -> u8 {
        match self {
            CoordState::WaitingForMembers => 0,
            CoordState::Warmup => 1,
            CoordState::RoundStart => 2,
            CoordState::RoundEnd => 3,
            CoordState::Cooldown => 4,
            CoordState::Finished => 5,
        }
    }

    /// Inverse of [`CoordState::discriminant`].
    pub fn from_discriminant(d: u8) -> Option<CoordState> {
        Some(match d {
            0 => CoordState::WaitingForMembers,
            1 => CoordState::Warmup,
            2 => CoordState::RoundStart,
            3 => CoordState::RoundEnd,
            4 => CoordState::Cooldown,
            5 => CoordState::Finished,
            _ => return None,
        })
    }

    /// Stable snake_case name for logs.
    pub fn name(self) -> &'static str {
        match self {
            CoordState::WaitingForMembers => "waiting_for_members",
            CoordState::Warmup => "warmup",
            CoordState::RoundStart => "round_start",
            CoordState::RoundEnd => "round_end",
            CoordState::Cooldown => "cooldown",
            CoordState::Finished => "finished",
        }
    }
}

/// One committed round in the recent-round ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundSlot {
    /// Round index.
    pub round: u64,
    /// Results that reached the commit.
    pub received: u32,
    /// Cohort size the round was broadcast to.
    pub cohort: u32,
    /// Duplicate deliveries dropped by the idempotency keys.
    pub dup_drops: u32,
}

/// The pure coordinator state machine: min-client gating, round
/// progression and a ring buffer of the last [`ROUND_RING`] committed
/// rounds for post-mortem visibility.
#[derive(Debug)]
pub struct Coordinator {
    state: CoordState,
    round: u64,
    target_rounds: u64,
    min_clients: usize,
    warmup_ms: u64,
    cooldown_ms: u64,
    entered_at_ms: u64,
    ring: [RoundSlot; ROUND_RING],
    committed: u64,
}

impl Coordinator {
    /// A machine that will run rounds `0..target_rounds` once
    /// `min_clients` connections are gathered.
    pub fn new(min_clients: usize, target_rounds: u64, warmup_ms: u64, cooldown_ms: u64) -> Self {
        Coordinator {
            state: CoordState::WaitingForMembers,
            round: 0,
            target_rounds,
            min_clients: min_clients.max(1),
            warmup_ms,
            cooldown_ms,
            entered_at_ms: 0,
            ring: [RoundSlot::default(); ROUND_RING],
            committed: 0,
        }
    }

    /// Rebuilds the machine after a coordinator crash-restart: training
    /// resumes at `round` (the checkpointed next round), but members
    /// must re-gather through the min-client gate first.
    pub fn restore(&mut self, round: u64, now_ms: u64) {
        self.round = round;
        self.state = if round >= self.target_rounds {
            CoordState::Cooldown
        } else {
            CoordState::WaitingForMembers
        };
        self.entered_at_ms = now_ms;
    }

    /// Current state.
    pub fn state(&self) -> CoordState {
        self.state
    }

    /// The round currently in flight (or next to start).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Rounds committed through this machine instance.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The last [`ROUND_RING`] committed rounds, oldest first.
    pub fn recent_rounds(&self) -> Vec<RoundSlot> {
        let n = (self.committed as usize).min(ROUND_RING);
        (0..n)
            .map(|i| {
                let slot = (self.committed as usize - n + i) % ROUND_RING;
                self.ring[slot]
            })
            .collect()
    }

    /// Advances time- and membership-driven transitions. Returns the
    /// transition taken, if any; call repeatedly (idempotent when
    /// nothing changed).
    pub fn tick(&mut self, connected: usize, now_ms: u64) -> Option<(CoordState, CoordState)> {
        let from = self.state;
        let to = match self.state {
            CoordState::WaitingForMembers if connected >= self.min_clients => {
                if self.round >= self.target_rounds {
                    CoordState::Cooldown
                } else {
                    CoordState::Warmup
                }
            }
            CoordState::Warmup if connected < self.min_clients => CoordState::WaitingForMembers,
            CoordState::Warmup if now_ms.saturating_sub(self.entered_at_ms) >= self.warmup_ms => {
                CoordState::RoundStart
            }
            CoordState::RoundEnd => {
                if self.round >= self.target_rounds {
                    CoordState::Cooldown
                } else if connected < self.min_clients {
                    CoordState::WaitingForMembers
                } else {
                    CoordState::RoundStart
                }
            }
            CoordState::Cooldown
                if now_ms.saturating_sub(self.entered_at_ms) >= self.cooldown_ms =>
            {
                CoordState::Finished
            }
            _ => return None,
        };
        if to == from {
            return None;
        }
        self.state = to;
        self.entered_at_ms = now_ms;
        Some((from, to))
    }

    /// Records a committed round: pushes a ring slot, advances the round
    /// counter and moves `RoundStart → RoundEnd`.
    ///
    /// # Panics
    /// If called outside `RoundStart` — committing a round no broadcast
    /// opened is a server-loop bug.
    pub fn on_round_committed(&mut self, received: u32, cohort: u32, dup_drops: u32, now_ms: u64) {
        assert_eq!(
            self.state,
            CoordState::RoundStart,
            "round committed outside RoundStart"
        );
        self.ring[(self.committed as usize) % ROUND_RING] = RoundSlot {
            round: self.round,
            received,
            cohort,
            dup_drops,
        };
        self.committed += 1;
        self.round += 1;
        self.state = CoordState::RoundEnd;
        self.entered_at_ms = now_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_lifecycle_with_fake_clock() {
        let mut c = Coordinator::new(2, 2, 100, 50);
        assert_eq!(c.state(), CoordState::WaitingForMembers);
        // One client is not enough.
        assert!(c.tick(1, 0).is_none());
        // Gate opens at two.
        assert_eq!(
            c.tick(2, 10),
            Some((CoordState::WaitingForMembers, CoordState::Warmup))
        );
        // Warmup holds until its delay elapses.
        assert!(c.tick(2, 50).is_none());
        assert_eq!(
            c.tick(2, 110),
            Some((CoordState::Warmup, CoordState::RoundStart))
        );
        assert_eq!(c.round(), 0);
        c.on_round_committed(2, 2, 0, 120);
        assert_eq!(c.state(), CoordState::RoundEnd);
        assert_eq!(c.round(), 1);
        // More rounds to run: straight back to RoundStart.
        assert_eq!(
            c.tick(2, 121),
            Some((CoordState::RoundEnd, CoordState::RoundStart))
        );
        c.on_round_committed(2, 2, 1, 130);
        // Target reached: Cooldown, then Finished after the grace window.
        assert_eq!(
            c.tick(2, 131),
            Some((CoordState::RoundEnd, CoordState::Cooldown))
        );
        assert!(c.tick(2, 150).is_none());
        assert_eq!(
            c.tick(2, 200),
            Some((CoordState::Cooldown, CoordState::Finished))
        );
        assert_eq!(c.committed(), 2);
    }

    #[test]
    fn losing_quorum_between_rounds_regates() {
        let mut c = Coordinator::new(3, 5, 0, 0);
        c.tick(3, 0);
        c.tick(3, 0);
        assert_eq!(c.state(), CoordState::RoundStart);
        c.on_round_committed(3, 3, 0, 1);
        // A client died between rounds: back through the gate.
        assert_eq!(
            c.tick(2, 2),
            Some((CoordState::RoundEnd, CoordState::WaitingForMembers))
        );
        // It reconnects: warmup again, then the next round starts where
        // the run left off.
        c.tick(3, 3);
        c.tick(3, 3);
        assert_eq!(c.state(), CoordState::RoundStart);
        assert_eq!(c.round(), 1);
    }

    #[test]
    fn ring_keeps_only_the_most_recent_rounds() {
        let mut c = Coordinator::new(1, 100, 0, 0);
        c.tick(1, 0);
        c.tick(1, 0);
        for r in 0..12u64 {
            assert_eq!(c.state(), CoordState::RoundStart);
            c.on_round_committed(1, 1, r as u32, r);
            c.tick(1, r);
        }
        let recent = c.recent_rounds();
        assert_eq!(recent.len(), ROUND_RING);
        assert_eq!(recent.first().unwrap().round, 4);
        assert_eq!(recent.last().unwrap().round, 11);
        assert_eq!(recent.last().unwrap().dup_drops, 11);
    }

    #[test]
    fn restore_regates_members_at_the_checkpointed_round() {
        let mut c = Coordinator::new(2, 10, 0, 0);
        c.restore(6, 1_000);
        assert_eq!(c.state(), CoordState::WaitingForMembers);
        assert_eq!(c.round(), 6);
        c.tick(2, 1_001);
        c.tick(2, 1_001);
        assert_eq!(c.state(), CoordState::RoundStart);
        // Restoring past the target goes straight to wind-down.
        let mut done = Coordinator::new(2, 10, 0, 0);
        done.restore(10, 0);
        assert_eq!(done.state(), CoordState::Cooldown);
        assert_eq!(
            done.tick(0, 5),
            Some((CoordState::Cooldown, CoordState::Finished))
        );
    }

    #[test]
    fn discriminants_roundtrip() {
        for s in [
            CoordState::WaitingForMembers,
            CoordState::Warmup,
            CoordState::RoundStart,
            CoordState::RoundEnd,
            CoordState::Cooldown,
            CoordState::Finished,
        ] {
            assert_eq!(CoordState::from_discriminant(s.discriminant()), Some(s));
            assert!(!s.name().is_empty());
        }
        assert_eq!(CoordState::from_discriminant(9), None);
    }
}
