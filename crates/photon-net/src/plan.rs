//! The run plan shipped from coordinator to clients at admission.

use photon_core::{FaultSpec, FederationConfig};
use serde::{Deserialize, Serialize};

/// Everything a client process needs to participate in a run: the
/// federation configuration (model shape, optimizer, seed — the seed
/// drives deterministic client provisioning and session tokens), its
/// data budget, the round horizon, and the shared fault plan so client
/// and coordinator inject the same process faults at the same rounds.
///
/// Serialized as JSON into [`photon_comms::Message::RunSync`], which
/// treats it as opaque bytes — the wire format does not depend on these
/// types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunPlan {
    /// Federation configuration (identical on every process).
    pub cfg: FederationConfig,
    /// Tokens each client provisions from its data source.
    pub tokens_per_client: usize,
    /// Rounds the run will commit.
    pub rounds: u64,
    /// Process-fault schedule (netcrash/nethang/coordkill), if any.
    #[serde(default)]
    pub faults: Option<FaultSpec>,
}

impl RunPlan {
    /// Serializes for the `RunSync` payload.
    ///
    /// # Panics
    /// Serialization of these plain-data types cannot fail.
    pub fn to_json_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("RunPlan serialization cannot fail")
            .into_bytes()
    }

    /// Parses a `RunSync` payload.
    ///
    /// # Errors
    /// A human-readable message when the bytes are not a valid plan.
    pub fn from_json_bytes(bytes: &[u8]) -> Result<RunPlan, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("plan not utf-8: {e}"))?;
        serde_json::from_str(text).map_err(|e| format!("plan not valid json: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_nn::ModelConfig;

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = RunPlan {
            cfg: FederationConfig::quick_demo(ModelConfig::proxy_tiny(), 3),
            tokens_per_client: 4_096,
            rounds: 5,
            faults: Some(FaultSpec::parse("netcrash@r1c0,coordkill@r2").unwrap()),
        };
        let bytes = plan.to_json_bytes();
        let back = RunPlan::from_json_bytes(&bytes).unwrap();
        assert_eq!(back, plan);
        assert!(RunPlan::from_json_bytes(b"{nope").is_err());
        assert!(RunPlan::from_json_bytes(&[0xff, 0xfe]).is_err());
    }
}
