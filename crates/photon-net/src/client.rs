//! `photon client`: one training participant as its own OS process.
//!
//! The client loop is a reconnect machine around a training loop:
//! connect with capped-exponential backoff, handshake (fresh join or
//! session resume by deterministic token), train every broadcast round,
//! and retain each un-acked result so it is re-sent after every
//! reconnect until the coordinator acknowledges it — the coordinator's
//! `(round, client)` idempotency keys make that re-delivery safe.
//!
//! Process faults from the shared plan are injected at this layer:
//! `netcrash@rNcM` severs the socket right after the result is sent
//! (so the re-delivery after resume races a possibly-delivered first
//! copy — the double-apply hazard the dedup keys exist for), and
//! `nethang@rNcM` goes silent without closing the socket, driving the
//! coordinator's heartbeat-miss detection.

use crate::backoff::ReconnectBackoff;
use crate::plan::RunPlan;
use crate::tcp::TcpLink;
use crate::tracectx::{init_trace_scope, recv_traced, run_trace_id, send_traced};
use crate::{NetError, Result};
use photon_comms::{Link, LinkError, Message, WireOpts};
use photon_core::{build_client, FaultInjector, LlmClient};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for [`run_client`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Coordinator address, e.g. `127.0.0.1:7700`.
    pub addr: String,
    /// Interval between heartbeats while connected, in milliseconds.
    pub heartbeat_interval_ms: u64,
    /// Reconnect backoff base delay, in milliseconds.
    pub reconnect_base_ms: u64,
    /// Reconnect backoff cap, in milliseconds.
    pub reconnect_cap_ms: u64,
    /// Consecutive failed connection attempts before giving up.
    pub max_connect_attempts: u32,
    /// How long a `nethang` fault stays silent, in milliseconds.
    pub hang_ms: u64,
    /// Where to persist the session identity `(client id, token, last
    /// acked round)`. With a session file a client process that is
    /// killed outright and restarted resumes its old session instead of
    /// asking for a new id — the difference between riding out a crash
    /// and stealing a fresh admission slot.
    pub session_file: Option<PathBuf>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            addr: "127.0.0.1:7700".into(),
            heartbeat_interval_ms: 100,
            reconnect_base_ms: 50,
            reconnect_cap_ms: 2_000,
            max_connect_attempts: 60,
            hang_ms: 1_500,
            session_file: None,
        }
    }
}

/// What a completed [`run_client`] did.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// The id the coordinator granted.
    pub client_id: u32,
    /// Rounds this process trained locally.
    pub rounds_trained: u64,
    /// Reconnections after the initial connect.
    pub reconnects: u64,
    /// Reconnections that resumed the existing session.
    pub resumed_sessions: u64,
    /// True when the run ended with a coordinator `Shutdown` (rather
    /// than the reconnect budget running out after the run was over).
    pub clean_shutdown: bool,
}

/// Handshake-time wire options: no float payloads move before the plan
/// is known, so the conservative encoding (no compression, f32) is
/// always safe.
fn handshake_wire() -> WireOpts {
    WireOpts {
        compress: false,
        dtype: Default::default(),
    }
}

/// Session identity carried across reconnects (and, via the session
/// file, across process restarts).
struct Identity {
    client_id: u32,
    token: u64,
    last_acked: Option<u64>,
}

impl Identity {
    /// Serialized form: three whitespace-separated integers, with
    /// `u64::MAX` standing in for "nothing acked yet".
    fn to_line(&self) -> String {
        format!(
            "{} {} {}\n",
            self.client_id,
            self.token,
            self.last_acked.unwrap_or(u64::MAX)
        )
    }

    fn parse(text: &str) -> Option<Identity> {
        let mut parts = text.split_whitespace();
        let client_id: u32 = parts.next()?.parse().ok()?;
        let token: u64 = parts.next()?.parse().ok()?;
        let acked: u64 = parts.next()?.parse().ok()?;
        Some(Identity {
            client_id,
            token,
            last_acked: (acked != u64::MAX).then_some(acked),
        })
    }
}

/// Loads the persisted identity, if a session file is configured and
/// holds one.
fn load_identity(opts: &ClientOptions) -> Option<Identity> {
    let path = opts.session_file.as_ref()?;
    Identity::parse(&std::fs::read_to_string(path).ok()?)
}

/// Persists `identity` if a session file is configured. Best-effort: a
/// failed write costs crash-resumability, not correctness.
fn store_identity(opts: &ClientOptions, identity: &Identity) {
    if let Some(path) = &opts.session_file {
        let _ = photon_trace::atomic_write(path, &identity.to_line());
    }
}

/// Runs the client until the coordinator shuts the run down.
///
/// # Errors
/// [`NetError::Unreachable`] when the reconnect budget is exhausted
/// before any shutdown was seen; protocol and training errors otherwise.
pub fn run_client(opts: &ClientOptions) -> Result<ClientReport> {
    let mut backoff = ReconnectBackoff::new(opts.reconnect_base_ms, opts.reconnect_cap_ms);
    let mut identity: Option<Identity> = load_identity(opts);
    let mut retained: Option<(u64, Message)> = None;
    let mut plan: Option<RunPlan> = None;
    let mut injector: Option<FaultInjector> = None;
    let mut llm: Option<LlmClient> = None;
    let mut report = ClientReport {
        client_id: u32::MAX,
        rounds_trained: 0,
        reconnects: 0,
        resumed_sessions: 0,
        clean_shutdown: false,
    };

    loop {
        // --- connect with backoff -------------------------------------
        let link = loop {
            match TcpLink::connect(&opts.addr) {
                Ok(link) => break Arc::new(link),
                Err(e) => {
                    if backoff.attempts() >= opts.max_connect_attempts {
                        return Err(NetError::Unreachable(format!(
                            "coordinator at {} unreachable after {} attempts: {e}",
                            opts.addr,
                            backoff.attempts()
                        )));
                    }
                    std::thread::sleep(backoff.next_delay());
                }
            }
        };

        // --- handshake: fresh join or resume --------------------------
        let (hello_id, hello_token, hello_acked) = match &identity {
            Some(id) => (id.client_id, id.token, id.last_acked.unwrap_or(u64::MAX)),
            None => (u32::MAX, 0, u64::MAX),
        };
        let wire = plan
            .as_ref()
            .map_or(handshake_wire(), |p| p.cfg.wire_opts());
        let hello = Message::SessionHello {
            client_id: hello_id,
            token: hello_token,
            last_acked_round: hello_acked,
        };
        let hello_sent_us = photon_trace::now_us();
        if link.send_message(&hello, handshake_wire()).is_err() {
            std::thread::sleep(backoff.next_delay());
            continue;
        }
        let grant = match recv_traced(link.as_ref(), Duration::from_secs(5)) {
            Ok((
                Message::SessionGrant {
                    client_id,
                    token,
                    resumed,
                    ..
                },
                grant_ctx,
            )) => {
                if identity.is_some() {
                    report.reconnects += 1;
                    if resumed {
                        report.resumed_sessions += 1;
                    }
                }
                let id = Identity {
                    client_id,
                    token,
                    last_acked: identity.as_ref().and_then(|i| i.last_acked),
                };
                store_identity(opts, &id);
                identity = Some(id);
                report.client_id = client_id;
                backoff.reset();
                if photon_trace::enabled() {
                    photon_trace::set_actor(client_id + 1);
                    if let Some(ctx) = grant_ctx {
                        // The grant carried the coordinator's send
                        // timestamp: halve the hello->grant round trip to
                        // estimate our trace-clock offset from its clock.
                        let grant_recv_us = photon_trace::now_us();
                        let rtt = grant_recv_us.saturating_sub(hello_sent_us);
                        let offset = ctx.ts_us as i64 + (rtt / 2) as i64 - grant_recv_us as i64;
                        init_trace_scope(ctx.trace_id, client_id + 1);
                        photon_trace::set_clock_offset_us(offset);
                    }
                }
                client_id
            }
            _ => {
                // Refused or garbled: back off and retry (the coordinator
                // may still be restarting).
                if backoff.attempts() >= opts.max_connect_attempts {
                    return Err(NetError::Unreachable(format!(
                        "coordinator at {} refused the session handshake",
                        opts.addr
                    )));
                }
                std::thread::sleep(backoff.next_delay());
                continue;
            }
        };
        let me = grant;

        // --- per-connection heartbeat thread --------------------------
        let hb_stop = Arc::new(AtomicBool::new(false));
        let hb_hang = Arc::new(AtomicBool::new(false));
        let hb_handle = spawn_heartbeats(
            Arc::clone(&link),
            me,
            opts.heartbeat_interval_ms,
            Arc::clone(&hb_stop),
            Arc::clone(&hb_hang),
        );

        // Re-deliver the retained (un-acked) result from before the
        // reconnect; the coordinator's dedup keys make this idempotent.
        if let Some((_, msg)) = &retained {
            let _ = send_traced(link.as_ref(), msg, wire);
        }

        // --- training loop for this connection ------------------------
        let outcome = connection_loop(
            &link,
            opts,
            me,
            &mut plan,
            &mut injector,
            &mut llm,
            &mut retained,
            &mut identity,
            &mut report,
            &hb_hang,
        );
        hb_stop.store(true, Ordering::SeqCst);
        link.sever();
        let _ = hb_handle.join();
        match outcome {
            ConnOutcome::Shutdown => {
                report.clean_shutdown = true;
                let _ = photon_trace::flush();
                return Ok(report);
            }
            ConnOutcome::Reconnect => {
                // Loop back around through the backoff + handshake.
            }
        }
    }
}

enum ConnOutcome {
    Shutdown,
    Reconnect,
}

/// Drives one live connection until it drops or the run ends.
#[allow(clippy::too_many_arguments)]
fn connection_loop(
    link: &Arc<TcpLink>,
    opts: &ClientOptions,
    me: u32,
    plan: &mut Option<RunPlan>,
    injector: &mut Option<FaultInjector>,
    llm: &mut Option<LlmClient>,
    retained: &mut Option<(u64, Message)>,
    identity: &mut Option<Identity>,
    report: &mut ClientReport,
    hb_hang: &Arc<AtomicBool>,
) -> ConnOutcome {
    loop {
        let msg = match recv_traced(link.as_ref(), Duration::from_millis(250)) {
            Ok((msg, _)) => msg,
            Err(LinkError::TimedOut) => {
                if link.is_connected() {
                    continue;
                }
                return ConnOutcome::Reconnect;
            }
            Err(_) => return ConnOutcome::Reconnect,
        };
        match msg {
            Message::RunSync { config_json, .. } if plan.is_none() => {
                match RunPlan::from_json_bytes(&config_json) {
                    Ok(p) => {
                        *injector = p
                            .faults
                            .as_ref()
                            .map(|spec| FaultInjector::from_spec(spec, p.cfg.population, p.rounds));
                        // Deterministic provisioning: this rebuilds the
                        // exact founding client for `me`, so a client
                        // process restarted from scratch trains
                        // bit-identically.
                        match build_client(&p.cfg, me, p.tokens_per_client) {
                            Ok(client) => *llm = Some(client),
                            Err(_) => return ConnOutcome::Reconnect,
                        }
                        if photon_trace::enabled() {
                            // Fallback scope for a grant that carried no
                            // trace context: the trace id is a pure
                            // function of the shared seed, so the lanes
                            // still join (first init wins, so this is a
                            // no-op after a handshake-derived scope).
                            init_trace_scope(run_trace_id(p.cfg.seed), me + 1);
                        }
                        *plan = Some(p);
                    }
                    Err(_) => return ConnOutcome::Reconnect,
                }
            }
            Message::ModelBroadcast { round, params } => {
                let (Some(p), Some(client)) = (plan.as_ref(), llm.as_mut()) else {
                    continue; // can't train before RunSync delivers the plan
                };
                let wire = p.cfg.wire_opts();
                // A re-broadcast of a round we already trained: re-send
                // the retained result instead of re-training.
                if let Some((r, msg)) = retained {
                    if *r == round {
                        let _ = send_traced(link.as_ref(), msg, wire);
                        continue;
                    }
                }
                if injector.as_ref().is_some_and(|i| i.nethang_at(round, me)) {
                    // Go silent (heartbeats included) without closing the
                    // socket: the coordinator's miss detection must spot
                    // this and sever us.
                    hb_hang.store(true, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(opts.hang_ms));
                    hb_hang.store(false, Ordering::SeqCst);
                }
                let outcome = match client.run_round(&params, round, &[me], &p.cfg) {
                    Ok(outcome) => outcome,
                    Err(e) => {
                        // Local compute is broken (a sub-federation node
                        // died); reconnecting would only re-fail. Bow out
                        // and let the coordinator's quorum absorb it.
                        eprintln!("client {me}: round {round} failed locally: {e}");
                        return ConnOutcome::Shutdown;
                    }
                };
                report.rounds_trained += 1;
                let result = Message::ClientResult {
                    round,
                    client_id: me,
                    delta: outcome.delta,
                    weight: outcome.weight,
                    metrics: outcome.metrics,
                };
                *retained = Some((round, result.clone()));
                let send_res = send_traced(link.as_ref(), &result, wire);
                if injector.as_ref().is_some_and(|i| i.netcrash_at(round, me)) {
                    // Crash the transport right behind the result: the
                    // first copy may or may not have landed, and the
                    // post-resume re-delivery must not double-apply.
                    link.sever();
                    return ConnOutcome::Reconnect;
                }
                if send_res.is_err() {
                    return ConnOutcome::Reconnect;
                }
            }
            Message::ResultAck { round, .. } => {
                if retained.as_ref().is_some_and(|(r, _)| *r <= round) {
                    *retained = None;
                }
                if let Some(id) = identity.as_mut() {
                    let newer = id.last_acked.is_none_or(|r| round > r);
                    if newer {
                        id.last_acked = Some(round);
                        store_identity(opts, id);
                    }
                }
                // The round is durable on the coordinator; make its spans
                // durable in our shard too, so a kill between rounds loses
                // nothing that mattered.
                let _ = photon_trace::flush();
            }
            Message::Shutdown => return ConnOutcome::Shutdown,
            // Late grants, coordinator heartbeats and anything else on
            // the control plane are informational here.
            _ => {}
        }
    }
}

/// Heartbeat pump for one connection: a fixed cadence, pausable by the
/// `nethang` fault, stopping when the link dies or the loop asks.
fn spawn_heartbeats(
    link: Arc<TcpLink>,
    client_id: u32,
    interval_ms: u64,
    stop: Arc<AtomicBool>,
    hang: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        photon_trace::set_actor(client_id + 1);
        let interval = Duration::from_millis(interval_ms.max(10));
        let mut seq = 0u64;
        while !stop.load(Ordering::SeqCst) && link.is_connected() {
            if !hang.load(Ordering::SeqCst) {
                if send_traced(
                    link.as_ref(),
                    &Message::Heartbeat { client_id, seq },
                    handshake_wire(),
                )
                .is_err()
                {
                    return;
                }
                seq += 1;
            }
            std::thread::sleep(interval);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_line_roundtrips() {
        for acked in [None, Some(0), Some(17)] {
            let id = Identity {
                client_id: 3,
                token: 0xdead_beef_u64,
                last_acked: acked,
            };
            let back = Identity::parse(&id.to_line()).unwrap();
            assert_eq!(back.client_id, 3);
            assert_eq!(back.token, 0xdead_beef_u64);
            assert_eq!(back.last_acked, acked);
        }
        assert!(Identity::parse("").is_none());
        assert!(Identity::parse("1 two 3").is_none());
    }
}
