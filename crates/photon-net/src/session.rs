//! Deterministic session tokens and the coordinator-side session table.
//!
//! A session token is a pure function of `(run seed, client id)` — see
//! [`session_token`]. That one decision buys coordinator crash-tolerance
//! for free: a restarted coordinator holds no session state, yet can
//! still authenticate every resuming client by recomputing the token it
//! would have issued. A reconnecting client presents its id and token and
//! resumes its lease and in-flight round; a client with a wrong token is
//! rejected rather than silently re-admitted under a stale identity.

use crate::backoff::splitmix;
use std::collections::BTreeMap;

/// The deterministic session token for `client_id` under `run_seed`.
/// Never 0 (0 on the wire means "no token yet" in a fresh
/// [`photon_comms::Message::SessionHello`]).
pub fn session_token(run_seed: u64, client_id: u32) -> u64 {
    let mixed = splitmix(run_seed ^ splitmix(0x5e55_1000 ^ u64::from(client_id)));
    if mixed == 0 {
        1
    } else {
        mixed
    }
}

/// Why a handshake was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The presented token does not match the token for that client id.
    BadToken {
        /// Client id the peer claimed.
        client_id: u32,
    },
    /// A fresh-join handshake arrived but the admission budget is
    /// exhausted (every founding id is taken).
    Full,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::BadToken { client_id } => {
                write!(f, "bad session token for client {client_id}")
            }
            SessionError::Full => write!(f, "no client ids left to grant"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Outcome of a successful handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// The client's (new or confirmed) id.
    pub client_id: u32,
    /// The session token the grant must carry.
    pub token: u64,
    /// True when an existing session was resumed rather than a new
    /// member admitted.
    pub resumed: bool,
}

/// Per-session bookkeeping the coordinator keeps while running. None of
/// it needs to survive a restart — tokens are recomputable — but while
/// alive it distinguishes resumes from fresh joins and counts both.
#[derive(Debug, Clone, Default)]
struct SessionEntry {
    resumes: u64,
    last_acked_round: Option<u64>,
}

/// The coordinator's session table: id assignment plus resume
/// authentication.
///
/// Ids `0..capacity` are grantable; after a coordinator restart the
/// table is rebuilt empty with the same seed and capacity, and every
/// returning client re-authenticates purely by token. A restarted table
/// ([`SessionTable::new_restarted`]) cannot know which low ids the
/// previous incarnation granted, so it hands fresh admissions ids from
/// the *top* of the range — a pre-crash client that has not resumed yet
/// keeps its low id free to come back to.
#[derive(Debug)]
pub struct SessionTable {
    seed: u64,
    capacity: u32,
    next_id: u32,
    allocate_high: bool,
    sessions: BTreeMap<u32, SessionEntry>,
}

impl SessionTable {
    /// An empty table for a run with `seed`, granting at most `capacity`
    /// distinct client ids (sequentially from 0).
    pub fn new(seed: u64, capacity: u32) -> SessionTable {
        SessionTable {
            seed,
            capacity,
            next_id: 0,
            allocate_high: false,
            sessions: BTreeMap::new(),
        }
    }

    /// A table for a coordinator that crash-restarted mid-run: resumes
    /// authenticate exactly as in [`SessionTable::new`], but fresh
    /// admissions draw ids from the top of the range so they cannot
    /// collide with a founding client that has not resumed yet.
    pub fn new_restarted(seed: u64, capacity: u32) -> SessionTable {
        SessionTable {
            allocate_high: true,
            ..SessionTable::new(seed, capacity)
        }
    }

    /// Handles a `SessionHello`: a fresh hello (`client_id == u32::MAX`,
    /// `token == 0`) is admitted under the next free id; a resume hello
    /// is authenticated against the deterministic token.
    ///
    /// # Errors
    /// [`SessionError::BadToken`] on a token mismatch,
    /// [`SessionError::Full`] when no ids are left to grant.
    pub fn admit(&mut self, client_id: u32, token: u64) -> Result<Admission, SessionError> {
        if client_id == u32::MAX {
            let id = if self.allocate_high {
                // Restarted coordinator: scan down from the top for an id
                // no resumed session holds.
                (0..self.capacity)
                    .rev()
                    .find(|id| !self.sessions.contains_key(id))
                    .ok_or(SessionError::Full)?
            } else {
                // Fresh run: sequential founding ids, skipping any already
                // taken.
                while self.sessions.contains_key(&self.next_id) {
                    self.next_id += 1;
                }
                if self.next_id >= self.capacity {
                    return Err(SessionError::Full);
                }
                let id = self.next_id;
                self.next_id += 1;
                id
            };
            self.sessions.insert(id, SessionEntry::default());
            return Ok(Admission {
                client_id: id,
                token: session_token(self.seed, id),
                resumed: false,
            });
        }
        let expected = session_token(self.seed, client_id);
        if token != expected {
            return Err(SessionError::BadToken { client_id });
        }
        // A valid token is proof the id was granted — by this table or by
        // a previous incarnation of the coordinator.
        let entry = self.sessions.entry(client_id).or_default();
        entry.resumes += 1;
        Ok(Admission {
            client_id,
            token: expected,
            resumed: true,
        })
    }

    /// Records the highest round whose result the coordinator has
    /// acknowledged for `client_id`.
    pub fn note_acked(&mut self, client_id: u32, round: u64) {
        if let Some(entry) = self.sessions.get_mut(&client_id) {
            let newer = entry.last_acked_round.is_none_or(|r| round > r);
            if newer {
                entry.last_acked_round = Some(round);
            }
        }
    }

    /// Total session resumes across all clients.
    pub fn total_resumes(&self) -> u64 {
        self.sessions.values().map(|e| e.resumes).sum()
    }

    /// Number of distinct sessions ever granted or resumed.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session has been granted yet.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_deterministic_distinct_and_nonzero() {
        for seed in [0u64, 7, u64::MAX] {
            let mut seen = std::collections::BTreeSet::new();
            for id in 0..64u32 {
                let t = session_token(seed, id);
                assert_ne!(t, 0);
                assert_eq!(t, session_token(seed, id));
                assert!(seen.insert(t), "token collision at id {id}");
            }
        }
        assert_ne!(session_token(1, 0), session_token(2, 0));
    }

    #[test]
    fn fresh_joins_get_sequential_ids_and_valid_tokens() {
        let mut table = SessionTable::new(42, 4);
        for expect in 0..4u32 {
            let adm = table.admit(u32::MAX, 0).unwrap();
            assert_eq!(adm.client_id, expect);
            assert_eq!(adm.token, session_token(42, expect));
            assert!(!adm.resumed);
        }
        assert_eq!(table.admit(u32::MAX, 0), Err(SessionError::Full));
    }

    #[test]
    fn reconnect_resumes_with_correct_token_only() {
        let mut table = SessionTable::new(9, 8);
        let adm = table.admit(u32::MAX, 0).unwrap();
        let resumed = table.admit(adm.client_id, adm.token).unwrap();
        assert!(resumed.resumed);
        assert_eq!(resumed.client_id, adm.client_id);
        assert_eq!(
            table.admit(adm.client_id, adm.token ^ 1),
            Err(SessionError::BadToken {
                client_id: adm.client_id
            })
        );
        assert_eq!(table.total_resumes(), 1);
    }

    #[test]
    fn restarted_table_authenticates_old_tokens_without_state() {
        let mut before = SessionTable::new(1234, 8);
        let a = before.admit(u32::MAX, 0).unwrap();
        let b = before.admit(u32::MAX, 0).unwrap();
        // Coordinator "crashes": a brand-new restarted table, same seed.
        let mut after = SessionTable::new_restarted(1234, 8);
        let ra = after.admit(a.client_id, a.token).unwrap();
        assert!(ra.resumed);
        // A fresh join arriving before b resumes must not steal b's id:
        // restarted tables allocate from the top of the range.
        let fresh = after.admit(u32::MAX, 0).unwrap();
        assert_eq!(fresh.client_id, 7);
        let rb = after.admit(b.client_id, b.token).unwrap();
        assert!(rb.resumed);
        assert_eq!(after.len(), 3);
    }

    #[test]
    fn note_acked_keeps_the_maximum() {
        let mut table = SessionTable::new(5, 2);
        let adm = table.admit(u32::MAX, 0).unwrap();
        table.note_acked(adm.client_id, 3);
        table.note_acked(adm.client_id, 1);
        assert_eq!(
            table.sessions[&adm.client_id].last_acked_round,
            Some(3),
            "ack round must be monotone"
        );
    }
}
