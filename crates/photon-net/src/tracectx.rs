//! Per-process distributed-trace scope and traced frame I/O helpers.
//!
//! Every process in a run derives the same [`run_trace_id`] from the run
//! seed — no coordination needed — and registers its scope (trace id +
//! actor lane) once via [`init_trace_scope`]. From then on every frame
//! sent through [`send_traced`] carries a [`TraceCtx`] trailer (origin
//! actor, per-process sequence number, sender trace-clock timestamp)
//! behind the wire trace flag, and every receive decoded with
//! [`recv_traced`] records the matching `net_recv` event — so send/recv
//! pairs across processes become causal edges `photon trace merge` can
//! join. When tracing is disabled (or the scope was never initialized)
//! all of this collapses to the plain untraced path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use photon_comms::{Link, LinkError, Message, TraceCtx, WireOpts};

use crate::backoff::splitmix;

/// The run-wide trace id: a pure function of the run seed, so every
/// process in one run agrees on it without coordination. Never 0 (0
/// means "no trace").
pub fn run_trace_id(run_seed: u64) -> u64 {
    let mixed = splitmix(run_seed ^ 0x7ace_1d00);
    if mixed == 0 {
        1
    } else {
        mixed
    }
}

struct Scope {
    trace_id: u64,
    actor: u32,
}

static SCOPE: OnceLock<Scope> = OnceLock::new();
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Declares this process's trace scope: the run trace id and its actor
/// lane (0 for the coordinator, client id + 1 for clients). Also
/// publishes the process metadata (trace id + OS pid) to the recorder so
/// its JSONL shard self-describes for `photon trace merge`. First call
/// wins; later calls (e.g. a client re-handshaking after reconnect) are
/// no-ops, keeping the per-process frame sequence monotonic.
pub fn init_trace_scope(trace_id: u64, actor: u32) {
    let mut fresh = false;
    SCOPE.get_or_init(|| {
        fresh = true;
        Scope { trace_id, actor }
    });
    if fresh {
        photon_trace::set_process_meta(trace_id, std::process::id());
    }
}

/// The next span context to stamp on an outgoing frame, or `None` when
/// tracing is off or the scope was never initialized.
pub(crate) fn next_ctx() -> Option<TraceCtx> {
    if !photon_trace::enabled() {
        return None;
    }
    let scope = SCOPE.get()?;
    Some(TraceCtx {
        trace_id: scope.trace_id,
        origin: scope.actor,
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        ts_us: photon_trace::now_us(),
    })
}

/// Sends `msg` with a span-context trailer when this process has a trace
/// scope and tracing is enabled; otherwise sends the plain frame. Records
/// a `net_send` instant carrying the `(origin, seq)` edge key.
///
/// # Errors
/// Propagates [`LinkError`] from the underlying send.
pub(crate) fn send_traced<L: Link + ?Sized>(
    link: &L,
    msg: &Message,
    wire: WireOpts,
) -> std::result::Result<(), LinkError> {
    match next_ctx() {
        Some(ctx) => {
            let frame = msg.to_frame_traced(wire, ctx);
            photon_trace::instant(
                photon_trace::Phase::NetSend,
                "net_send",
                &[
                    ("origin", u64::from(ctx.origin)),
                    ("seq", ctx.seq),
                    ("bytes", frame.len() as u64),
                ],
            );
            link.send_frame(frame)
        }
        None => link.send_message(msg, wire),
    }
}

/// Receives one frame and decodes it with its optional span context,
/// recording the matching `net_recv` instant so the sender's edge has its
/// receive endpoint.
///
/// # Errors
/// Propagates [`LinkError`] from the underlying receive; a frame that
/// decodes but fails message parsing is [`LinkError::Wire`].
pub(crate) fn recv_traced<L: Link + ?Sized>(
    link: &L,
    timeout: Duration,
) -> std::result::Result<(Message, Option<TraceCtx>), LinkError> {
    let frame = link.recv_frame(timeout)?;
    let bytes = frame.len() as u64;
    let (msg, ctx) = Message::from_frame_traced(frame).map_err(LinkError::Wire)?;
    if let Some(ctx) = ctx {
        note_recv(&ctx, bytes);
    }
    Ok((msg, ctx))
}

/// Records the receive endpoint of a traced frame.
pub(crate) fn note_recv(ctx: &TraceCtx, bytes: u64) {
    photon_trace::instant(
        photon_trace::Phase::NetRecv,
        "net_recv",
        &[
            ("origin", u64::from(ctx.origin)),
            ("seq", ctx.seq),
            ("bytes", bytes),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_and_nonzero() {
        for seed in [0u64, 7, 42, u64::MAX] {
            let id = run_trace_id(seed);
            assert_ne!(id, 0);
            assert_eq!(id, run_trace_id(seed));
        }
        assert_ne!(run_trace_id(1), run_trace_id(2));
    }
}
