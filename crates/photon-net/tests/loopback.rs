//! End-to-end multi-process-shaped tests over TCP loopback: one serve
//! loop and N client loops on their own threads, real sockets between
//! them. Covers the fault-free path, client netcrash + session resume,
//! and coordinator crash-restart from the checkpoint.

use photon_core::FederationConfig;
use photon_net::{run_client, serve, ClientOptions, RunPlan, ServeOptions};
use photon_nn::ModelConfig;
use std::net::TcpListener;

/// Reserves a localhost port (bind, read, release). The tiny race
/// between release and serve's bind is irrelevant at test scale.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    format!("127.0.0.1:{}", addr.port())
}

fn demo_plan(n_clients: usize, rounds: u64, faults: Option<&str>) -> RunPlan {
    let mut cfg = FederationConfig::quick_demo(ModelConfig::proxy_tiny(), n_clients);
    cfg.local_steps = 4;
    cfg.allow_partial_results = true;
    RunPlan {
        cfg,
        tokens_per_client: 2_000,
        rounds,
        faults: faults.map(|s| photon_core::FaultSpec::parse(s).unwrap()),
    }
}

fn serve_opts(addr: &str, plan: RunPlan, min_clients: usize) -> ServeOptions {
    ServeOptions {
        addr: addr.to_string(),
        plan,
        min_clients,
        checkpoint_dir: None,
        resume: false,
        warmup_ms: 100,
        cooldown_ms: 100,
        round_timeout_ms: 20_000,
        heartbeat_timeout_ms: 500,
        metrics_json: None,
        stop_after_rounds: None,
        health_port: None,
    }
}

fn client_opts(addr: &str) -> ClientOptions {
    ClientOptions {
        addr: addr.to_string(),
        heartbeat_interval_ms: 100,
        reconnect_base_ms: 50,
        reconnect_cap_ms: 500,
        max_connect_attempts: 100,
        hang_ms: 1_200,
        session_file: None,
    }
}

/// Spawns `n` client threads against `addr`.
fn spawn_clients(
    addr: &str,
    n: usize,
) -> Vec<std::thread::JoinHandle<photon_net::Result<photon_net::ClientReport>>> {
    (0..n)
        .map(|_| {
            let opts = client_opts(addr);
            std::thread::spawn(move || run_client(&opts))
        })
        .collect()
}

#[test]
fn fault_free_run_trains_all_rounds() {
    let addr = free_addr();
    let plan = demo_plan(3, 3, None);
    let opts = serve_opts(&addr, plan, 3);
    let server = std::thread::spawn(move || serve(&opts));
    let clients = spawn_clients(&addr, 3);

    let report = server.join().unwrap().unwrap();
    assert_eq!(report.rounds_run, 3);
    assert_eq!(report.final_round, 3);
    assert_eq!(report.round_losses.len(), 3);
    assert!(report.round_losses.iter().all(|l| l.is_finite()));
    assert_eq!(report.session_resumes, 0);
    for handle in clients {
        let c = handle.join().unwrap().unwrap();
        assert!(c.clean_shutdown);
        assert_eq!(c.rounds_trained, 3);
        assert_eq!(c.reconnects, 0);
    }
}

#[test]
fn netcrash_client_resumes_and_run_converges() {
    // Baseline without faults.
    let addr = free_addr();
    let opts = serve_opts(&addr, demo_plan(3, 3, None), 3);
    let server = std::thread::spawn(move || serve(&opts));
    let clients = spawn_clients(&addr, 3);
    let baseline = server.join().unwrap().unwrap();
    for handle in clients {
        handle.join().unwrap().unwrap();
    }

    // Same run shape with a client-1 transport crash in round 1.
    let addr = free_addr();
    let opts = serve_opts(&addr, demo_plan(3, 3, Some("netcrash@r1c1")), 3);
    let server = std::thread::spawn(move || serve(&opts));
    let clients = spawn_clients(&addr, 3);
    let faulted = server.join().unwrap().unwrap();
    let mut resumed_total = 0;
    for handle in clients {
        let c = handle.join().unwrap().unwrap();
        assert!(c.clean_shutdown);
        resumed_total += c.resumed_sessions;
    }

    assert_eq!(faulted.rounds_run, 3);
    assert!(
        faulted.session_resumes >= 1,
        "the crashed client must resume"
    );
    assert!(resumed_total >= 1);
    // The crashed client's retained result is re-delivered after the
    // resume; dedup keys mean the run converges like the baseline (the
    // acceptance bound is 10%).
    let base = baseline.round_losses.last().unwrap();
    let fault = faulted.round_losses.last().unwrap();
    assert!(
        (fault - base).abs() <= 0.10 * base.abs(),
        "faulted final loss {fault} deviates more than 10% from baseline {base}"
    );
}

#[test]
fn coordinator_restart_resumes_from_checkpoint() {
    let addr = free_addr();
    let ckpt = std::env::temp_dir().join(format!(
        "photon-net-restart-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&ckpt).unwrap();

    // Phase 1: the coordinator "crashes" (stops cold, sockets slammed
    // shut, no Shutdown) after committing 2 of 4 rounds.
    let mut opts = serve_opts(&addr, demo_plan(3, 4, None), 3);
    opts.checkpoint_dir = Some(ckpt.clone());
    opts.stop_after_rounds = Some(2);
    let server = std::thread::spawn(move || serve(&opts));
    // Clients have a generous reconnect budget: they must ride out the
    // coordinator's death and resume into its successor.
    let clients = spawn_clients(&addr, 3);
    let first = server.join().unwrap().unwrap();
    assert_eq!(first.rounds_run, 2);
    assert_eq!(first.final_round, 2);

    // Phase 2: a new coordinator process restores from the checkpoint
    // and finishes the run with the surviving clients.
    let mut opts = serve_opts(&addr, demo_plan(3, 4, None), 3);
    opts.checkpoint_dir = Some(ckpt.clone());
    opts.resume = true;
    let server = std::thread::spawn(move || serve(&opts));
    let second = server.join().unwrap().unwrap();

    assert_eq!(second.resumed_from, Some(2));
    assert_eq!(second.rounds_run, 2, "rounds 2 and 3 run after restore");
    assert_eq!(second.final_round, 4);
    assert!(
        second.session_resumes >= 3,
        "all three clients must resume their sessions, got {}",
        second.session_resumes
    );
    for handle in clients {
        let c = handle.join().unwrap().unwrap();
        assert!(c.clean_shutdown);
        assert!(c.reconnects >= 1, "every client rode through the restart");
        assert!(c.resumed_sessions >= 1);
        assert_eq!(c.rounds_trained, 4);
    }
    std::fs::remove_dir_all(&ckpt).ok();
}
